//! Tiered execution: compiling stable subexpressions to flat DFA tables.
//!
//! The copy-on-write τ̂ still rebuilds a tree spine on every step, but most
//! real constraints (mutexes, capacity counters, sequencing templates —
//! everything `ix_baselines` models as regex/matrix scenarios) have small,
//! enumerable state spaces.  This module is the compile half of the tier:
//! a **bounded explorer** that walks a subexpression's reachable τ̂-graph
//! under a configurable state-count/edge budget and emits a
//! [`CompiledTable`] — interned state handles, a dense
//! `state × symbol → state` transition array over the subexpression's
//! (finite) symbol candidates, per-state ϕ/permitted bitsets, and a
//! fingerprint of the source sub-state.  Exploration bails out cleanly on
//! quantifiers, unbounded operands (`#`), abstract alphabets, or budget
//! exhaustion ([`CompileBailout`]); [`compile_all`] then descends into the
//! operands so the *maximal* table-resident subtrees are compiled and the
//! surrounding spine keeps running on the CoW walk.
//!
//! # Why a table answer is exact
//!
//! A compiled subexpression is **closed over a concrete alphabet**: every
//! atom is a concrete action, so for any concrete action outside that atom
//! set the fused τ̂ is `Null` in *every* reachable state (atoms compare by
//! equality, ⊗-coverage is decided by the same concrete alphabets, and all
//! combinators propagate `Null`).  The table may therefore answer `Null`
//! for unknown concrete symbols without consulting the tree.  Abstract
//! (parameterized) actions are *not* decided by the table — the engine
//! rejects them before the transition, and the tier falls back to the tree
//! walk for them defensively.
//!
//! Interned states are canonical `Shared` handles whose *values* are
//! exactly what the fused τ̂ would have computed, so a table-resident
//! subtree stepped via array lookup composes transparently with the CoW
//! spine around it: sorting, deduplication, and state-value equality are
//! unaffected.  ψ needs no bitset: on the optimized path every interned
//! (non-`Null`) state is valid by the "invalid ⇔ `Null`" invariant; the
//! per-state bitsets cover ϕ and the permitted symbol set.

use crate::init::init;
use crate::predicates::is_final;
use crate::state::{Shared, State};
use crate::trans::trans;
use ix_core::{Action, Expr, ExprKind};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Default state-count budget of an engine's tier (0 disables tiering).
pub const DEFAULT_TIER_BUDGET: usize = 512;

/// The dead-state sentinel in a table's transition array: the successor is
/// `Null` (the action is not permitted in that state).
pub const DEAD: u32 = u32::MAX;

/// Why the explorer abandoned a subexpression instead of emitting a table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompileBailout {
    /// The budget is zero — tiering is switched off.
    Disabled,
    /// The subexpression mentions parameters, holes, or abstract atoms, so
    /// its symbol candidates are not a finite concrete set.
    AbstractAlphabet,
    /// The subexpression contains a quantifier (branches materialize per
    /// value at run time — the state space is not enumerable up front).
    Quantifier,
    /// The subexpression contains a parallel iteration (`#`), whose
    /// instance count is unbounded.
    Unbounded,
    /// Exploration exceeded the state-count or edge budget.
    BudgetExceeded,
    /// The subexpression has no initial state (σ rejected it).
    Invalid,
}

impl CompileBailout {
    /// Short human-readable label (used in stats and bench rows).
    pub fn label(self) -> &'static str {
        match self {
            CompileBailout::Disabled => "disabled",
            CompileBailout::AbstractAlphabet => "abstract-alphabet",
            CompileBailout::Quantifier => "quantifier",
            CompileBailout::Unbounded => "unbounded",
            CompileBailout::BudgetExceeded => "budget-exceeded",
            CompileBailout::Invalid => "invalid",
        }
    }
}

/// The exploration budget: a hard cap on interned states and on explored
/// edges (state × symbol probes), so compilation cost is bounded even when
/// the reachable graph is exponentially large.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompileBudget {
    /// Maximum number of interned (live) states per table.
    pub max_states: usize,
    /// Maximum number of explored transitions per table.
    pub max_edges: usize,
}

impl CompileBudget {
    /// A budget of `max_states` states with the default edge allowance
    /// (64 explored edges per allowed state).
    pub fn with_states(max_states: usize) -> CompileBudget {
        CompileBudget { max_states, max_edges: max_states.saturating_mul(64) }
    }
}

/// A flat DFA tile: the reachable τ̂-graph of one finite subexpression,
/// compiled to a dense transition array.
///
/// States are canonical [`Shared`] handles (value-identical to what the
/// fused τ̂ computes), symbols are the subexpression's concrete atoms in
/// sorted order, and the transition array stores `state × symbol → state`
/// ids with [`DEAD`] marking `Null` successors.
#[derive(Clone, Debug)]
pub struct CompiledTable {
    /// Sorted, deduplicated concrete atoms — the symbol axis.
    pub(crate) symbols: Vec<Action>,
    /// Symbol → column index.
    pub(crate) symbol_index: HashMap<Action, u16>,
    /// Interned canonical state handles; index = state id, id 0 = σ.
    pub(crate) states: Vec<Shared<State>>,
    /// Value → state id (used when re-attaching a live engine state).
    // The interior-mutable coverage cache of `ScopedAlphabet` is excluded
    // from `Eq`/`Ord`/`Hash`, so state values are well-behaved map keys.
    #[allow(clippy::mutable_key_type)]
    pub(crate) index: HashMap<Shared<State>, u32>,
    /// Dense `states.len() × symbols.len()` successor array.
    pub(crate) transitions: Vec<u32>,
    /// ϕ bitset over state ids.
    finals: Vec<u64>,
    /// Per-state permitted-symbol bitsets, `words_per_state` words each.
    permitted: Vec<u64>,
    words_per_state: usize,
    /// Hash of the source sub-state σ and the symbol axis.
    fingerprint: u64,
    /// Tier epoch the table was compiled under (stale tiles are dropped on
    /// invalidation; the stamp lets the tier assert freshness structurally).
    pub(crate) epoch: u64,
    /// Wall-clock nanoseconds the exploration took.
    compile_nanos: u64,
}

impl CompiledTable {
    /// The initial state's id (always 0).
    pub fn start(&self) -> u32 {
        0
    }

    /// Number of interned live states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of symbols (concrete atoms) on the transition axis.
    pub fn symbol_count(&self) -> usize {
        self.symbols.len()
    }

    /// The symbol axis, sorted.
    pub fn symbols(&self) -> &[Action] {
        &self.symbols
    }

    /// The canonical state value behind a state id.
    pub fn state(&self, id: u32) -> &State {
        &self.states[id as usize]
    }

    /// One table step: the successor id, or [`DEAD`] if the action is not
    /// permitted (including concrete actions outside the symbol axis —
    /// exact by the closed-alphabet argument in the module docs).  Callers
    /// must not pass abstract actions; the tier falls back to the tree walk
    /// for those before consulting the table.
    pub fn step(&self, state: u32, action: &Action) -> u32 {
        match self.symbol_index.get(action) {
            Some(&sym) => self.transitions[state as usize * self.symbols.len() + sym as usize],
            None => DEAD,
        }
    }

    /// ϕ of a state id.
    pub fn is_final_state(&self, id: u32) -> bool {
        self.finals[id as usize / 64] & (1 << (id as usize % 64)) != 0
    }

    /// Whether `action` is permitted in state `id` (the per-state permitted
    /// bitset — equivalent to `step(id, action) != DEAD`).
    pub fn is_permitted(&self, id: u32, action: &Action) -> bool {
        match self.symbol_index.get(action) {
            Some(&sym) => {
                let w = id as usize * self.words_per_state + sym as usize / 64;
                self.permitted[w] & (1 << (sym as usize % 64)) != 0
            }
            None => false,
        }
    }

    /// Fingerprint of the source sub-state σ and the symbol axis — a cheap
    /// identity check when tables are shared across engines.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Tier epoch the table was compiled under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Wall-clock nanoseconds the bounded exploration took.
    pub fn compile_nanos(&self) -> u64 {
        self.compile_nanos
    }

    /// Runs a word from σ through the table alone.  Returns `None` as soon
    /// as the walk dies, otherwise the final state id.  (The baseline
    /// scenario bridge and the tests use this; the engine tier steps
    /// incrementally instead.)
    pub fn run(&self, word: &[Action]) -> Option<u32> {
        let mut id = self.start();
        for action in word {
            id = self.step(id, action);
            if id == DEAD {
                return None;
            }
        }
        Some(id)
    }

    /// Decomposes the table into its serializable parts.  The derived
    /// lookup maps (`symbol_index`, value→id `index`) and the epoch stamp
    /// are dropped — [`CompiledTable::from_parts`] rebuilds them.
    pub fn to_parts(&self) -> TableParts {
        TableParts {
            symbols: self.symbols.clone(),
            states: self.states.clone(),
            transitions: self.transitions.clone(),
            finals: self.finals.clone(),
            permitted: self.permitted.clone(),
            fingerprint: self.fingerprint,
            compile_nanos: self.compile_nanos,
        }
    }

    /// Reassembles a table from parts (the inverse of
    /// [`CompiledTable::to_parts`]): rebuilds the symbol and state lookup
    /// maps and stamps the table with epoch 0 — the adopting tier re-stamps
    /// it with its own current epoch on install.
    pub fn from_parts(parts: TableParts) -> CompiledTable {
        let symbol_index =
            parts.symbols.iter().enumerate().map(|(i, a)| (a.clone(), i as u16)).collect();
        #[allow(clippy::mutable_key_type)]
        let index: HashMap<Shared<State>, u32> =
            parts.states.iter().enumerate().map(|(i, s)| (s.clone(), i as u32)).collect();
        let words_per_state = parts.symbols.len().div_ceil(64);
        CompiledTable {
            symbols: parts.symbols,
            symbol_index,
            states: parts.states,
            index,
            transitions: parts.transitions,
            finals: parts.finals,
            permitted: parts.permitted,
            words_per_state,
            fingerprint: parts.fingerprint,
            epoch: 0,
            compile_nanos: parts.compile_nanos,
        }
    }
}

/// The serializable decomposition of a [`CompiledTable`]: everything a
/// checkpoint must persist so recovery can re-attach the tile instead of
/// recompiling.  Derived lookup maps are rebuilt on
/// [`CompiledTable::from_parts`].
#[derive(Clone, Debug)]
pub struct TableParts {
    /// Sorted, deduplicated concrete atoms — the symbol axis.
    pub symbols: Vec<Action>,
    /// Interned canonical state handles; index = state id, id 0 = σ.
    pub states: Vec<Shared<State>>,
    /// Dense `states.len() × symbols.len()` successor array.
    pub transitions: Vec<u32>,
    /// ϕ bitset over state ids.
    pub finals: Vec<u64>,
    /// Per-state permitted-symbol bitsets.
    pub permitted: Vec<u64>,
    /// Hash of the source sub-state σ and the symbol axis.
    pub fingerprint: u64,
    /// Wall-clock nanoseconds the original exploration took.
    pub compile_nanos: u64,
}

/// Structural reasons a subexpression can never be table-resident,
/// detected without any exploration.
fn structural_bailout(expr: &Expr) -> Option<CompileBailout> {
    let mut verdict = None;
    expr.visit(&mut |e: &Expr| {
        let found = match e.kind() {
            ExprKind::SomeQ(..) | ExprKind::AllQ(..) | ExprKind::SyncQ(..) | ExprKind::ParQ(..) => {
                Some(CompileBailout::Quantifier)
            }
            ExprKind::ParIter(_) => Some(CompileBailout::Unbounded),
            ExprKind::Hole(_) => Some(CompileBailout::AbstractAlphabet),
            ExprKind::Atom(a) if !a.is_concrete() => Some(CompileBailout::AbstractAlphabet),
            _ => None,
        };
        if verdict.is_none() {
            verdict = found;
        }
    });
    verdict
}

/// Compiles one subexpression to a flat table, or reports why it cannot be.
///
/// The exploration is a breadth-first walk of the reachable τ̂-graph from
/// σ(`expr`) using the production fused transition, interning successor
/// states by *value* so the emitted ids are canonical.
pub fn compile(expr: &Expr, budget: CompileBudget) -> Result<CompiledTable, CompileBailout> {
    let mut edges = budget.max_edges;
    compile_charged(expr, budget, &mut edges)
}

/// [`compile`] drawing explored edges from a shared pool, so a recursive
/// descent over a large expression has bounded total cost.
fn compile_charged(
    expr: &Expr,
    budget: CompileBudget,
    edge_pool: &mut usize,
) -> Result<CompiledTable, CompileBailout> {
    if budget.max_states == 0 {
        return Err(CompileBailout::Disabled);
    }
    if let Some(bail) = structural_bailout(expr) {
        return Err(bail);
    }
    let t0 = Instant::now();
    let mut symbols = expr.atoms();
    symbols.sort();
    symbols.dedup();
    if symbols.is_empty() || symbols.len() > u16::MAX as usize {
        // ε-only expressions gain nothing from a table; absurd alphabets
        // exceed the dense-column encoding.
        return Err(CompileBailout::BudgetExceeded);
    }
    let start = match init(expr) {
        Ok(s) if !s.is_null() => Shared::new(s),
        _ => return Err(CompileBailout::Invalid),
    };

    let mut states: Vec<Shared<State>> = vec![start.clone()];
    #[allow(clippy::mutable_key_type)] // see `CompiledTable::index`
    let mut index: HashMap<Shared<State>, u32> = HashMap::new();
    index.insert(start, 0);
    let mut transitions: Vec<u32> = Vec::new();
    let mut frontier = 0usize;
    while frontier < states.len() {
        let state = states[frontier].clone();
        frontier += 1;
        for symbol in &symbols {
            if *edge_pool == 0 {
                return Err(CompileBailout::BudgetExceeded);
            }
            *edge_pool -= 1;
            let next = trans(&state, symbol);
            let id = if next.is_null() {
                DEAD
            } else {
                let handle = Shared::new(next);
                match index.get(&handle) {
                    Some(&id) => id,
                    None => {
                        if states.len() >= budget.max_states {
                            return Err(CompileBailout::BudgetExceeded);
                        }
                        let id = states.len() as u32;
                        index.insert(handle.clone(), id);
                        states.push(handle);
                        id
                    }
                }
            };
            transitions.push(id);
        }
    }

    let nsyms = symbols.len();
    let words_per_state = nsyms.div_ceil(64);
    let mut finals = vec![0u64; states.len().div_ceil(64)];
    let mut permitted = vec![0u64; states.len() * words_per_state];
    for (id, state) in states.iter().enumerate() {
        if is_final(state) {
            finals[id / 64] |= 1 << (id % 64);
        }
        for sym in 0..nsyms {
            if transitions[id * nsyms + sym] != DEAD {
                permitted[id * words_per_state + sym / 64] |= 1 << (sym % 64);
            }
        }
    }
    let mut hasher = DefaultHasher::new();
    states[0].hash(&mut hasher);
    symbols.hash(&mut hasher);
    let symbol_index =
        symbols.iter().enumerate().map(|(i, a)| (a.clone(), i as u16)).collect::<HashMap<_, _>>();
    Ok(CompiledTable {
        symbols,
        symbol_index,
        states,
        index,
        transitions,
        finals,
        permitted,
        words_per_state,
        fingerprint: hasher.finish(),
        epoch: 0,
        compile_nanos: t0.elapsed().as_nanos() as u64,
    })
}

/// The result of a recursive compilation pass over a whole expression.
#[derive(Clone, Debug, Default)]
pub struct CompileOutcome {
    /// Tables for the maximal table-resident subtrees, outermost first.
    pub tables: Vec<CompiledTable>,
    /// Number of subtrees that bailed out (per bailed node, before
    /// descending into its operands).
    pub bailouts: u64,
}

/// Compiles the *maximal* table-resident subtrees of an expression: tries
/// the root; on a bailout, descends into the operands and tries again.
/// Explored edges are charged to one shared pool (4× the per-table edge
/// budget) so the pass stays cheap even on huge expressions.
pub fn compile_all(expr: &Expr, budget: CompileBudget) -> CompileOutcome {
    let mut outcome = CompileOutcome::default();
    if budget.max_states == 0 {
        return outcome;
    }
    let mut edge_pool = budget.max_edges.saturating_mul(4);
    descend(expr, budget, &mut edge_pool, &mut outcome);
    outcome
}

fn descend(expr: &Expr, budget: CompileBudget, edge_pool: &mut usize, out: &mut CompileOutcome) {
    if *edge_pool == 0 {
        out.bailouts += 1;
        return;
    }
    if expr.size() < 3 {
        // An atom or ε: the tree walk is already O(1); a tile would only
        // pollute the attach map.
        return;
    }
    match compile_charged(expr, budget, edge_pool) {
        Ok(table) => out.tables.push(table),
        Err(CompileBailout::Disabled) => {}
        Err(_) => {
            out.bailouts += 1;
            for child in expr.children() {
                descend(child, budget, edge_pool, out);
            }
        }
    }
}

/// Counter surface of an engine's tier, mirroring the memo stats: table
/// inventory, hit/fallback counts, compile effort, and the invalidation
/// epoch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Number of installed tables.
    pub tables: usize,
    /// Total interned states across installed tables.
    pub states: usize,
    /// Transitions answered by a table (root or sub-state).
    pub hits: u64,
    /// Transitions computed by the tree walk while tables were installed.
    pub fallbacks: u64,
    /// Tables compiled over the engine's lifetime.
    pub compiles: u64,
    /// Subtrees that bailed out during compilation passes.
    pub bailouts: u64,
    /// Times the tier was invalidated (topology migrations, budget changes).
    pub invalidations: u64,
    /// Wall-clock nanoseconds spent compiling.
    pub compile_nanos: u64,
    /// Current tier epoch (bumped on every invalidation; installed tables
    /// are stamped with the epoch they were compiled under).
    pub epoch: u64,
}

/// Visits every `Shared<State>` node of a state tree, including the
/// precomputed σ templates (`right_init`/`body_init`) and quantifier
/// templates, so spawn sites re-attach to tables too.
pub(crate) fn visit_shared(state: &Shared<State>, f: &mut impl FnMut(&Shared<State>)) {
    f(state);
    let mut go = |s: &Shared<State>| visit_shared(s, f);
    match &**state {
        State::Null | State::Epsilon | State::AtomDone | State::AtomFresh { .. } => {}
        State::Option { body, .. } => go(body),
        State::Seq { left, rights, right_init } => {
            go(left);
            rights.iter().for_each(&mut go);
            go(right_init);
        }
        State::SeqIter { runs, body_init, .. } => {
            runs.iter().for_each(&mut go);
            go(body_init);
        }
        State::Par { alts } => alts.iter().for_each(|(l, r)| {
            go(l);
            go(r);
        }),
        State::ParIter { alts, body_init } => {
            alts.iter().flatten().for_each(&mut go);
            go(body_init);
        }
        State::Or { left, right } | State::And { left, right } => {
            go(left);
            go(right);
        }
        State::Sync { left, right, .. } => {
            go(left);
            go(right);
        }
        State::SomeQ(q) | State::AllQ(q) | State::SyncQ(q) => {
            go(&q.template);
            q.branches.values().for_each(&mut go);
        }
        State::ParQ { alts, body_init, .. } => {
            alts.iter().flat_map(|b| b.values()).for_each(&mut go);
            go(body_init);
        }
        State::Mult { alts, body_init, .. } => {
            alts.iter().flatten().for_each(&mut go);
            go(body_init);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::word_problem;
    use crate::engine::WordStatus;
    use ix_core::parse;

    fn budget(n: usize) -> CompileBudget {
        CompileBudget::with_states(n)
    }

    fn a(name: &str) -> Action {
        Action::nullary(name)
    }

    #[test]
    fn mutex_compiles_to_a_three_state_table() {
        let e = parse("((r0 - r1) + (w0 - w1))*").unwrap();
        let t = compile(&e, budget(64)).unwrap();
        // Value interning is not semantic minimization: the post-release
        // "idle" states are structurally distinct from σ (the iteration has
        // been unrolled once), so the 3-state mutex automaton surfaces as 5
        // interned states — σ, reading, writing, and one restarted idle per
        // branch.  The rows of the restarted idles duplicate σ's.
        assert_eq!(t.state_count(), 5);
        assert_eq!(t.symbol_count(), 4);
        assert!(t.is_final_state(t.start()));
        let reading = t.step(t.start(), &a("r0"));
        assert_ne!(reading, DEAD);
        assert!(!t.is_final_state(reading));
        assert_eq!(t.step(reading, &a("w0")), DEAD, "mutex holds");
        let idle = t.step(reading, &a("r1"));
        assert_ne!(idle, DEAD);
        assert!(t.is_final_state(idle), "release returns to an idle state");
        assert_eq!(t.step(idle, &a("r0")), reading, "the cycle closes");
        assert!(t.is_permitted(t.start(), &a("r0")));
        assert!(!t.is_permitted(reading, &a("w0")));
        assert!(!t.is_permitted(reading, &a("zzz")), "unknown symbols are dead");
    }

    #[test]
    fn table_walk_agrees_with_the_word_problem() {
        for src in [
            "((r0 - r1) + (w0 - w1))*",
            "a - b - c",
            "mult 2 { (a - b)* }",
            "(a | b) - c",
            "(a - b)* @ (b - c)*",
        ] {
            let e = parse(src).unwrap();
            let t = compile(&e, budget(256)).unwrap();
            let alphabet: Vec<Action> = t.symbols().to_vec();
            // Every word over the alphabet up to length 4.
            let mut words: Vec<Vec<Action>> = vec![vec![]];
            for _ in 0..4 {
                let mut grown = Vec::new();
                for w in &words {
                    for sym in &alphabet {
                        let mut next = w.clone();
                        next.push(sym.clone());
                        grown.push(next);
                    }
                }
                words.extend(grown);
            }
            for word in &words {
                let expected = word_problem(&e, word).unwrap();
                let got = match t.run(word) {
                    None => WordStatus::Illegal,
                    Some(id) if t.is_final_state(id) => WordStatus::Complete,
                    Some(_) => WordStatus::Partial,
                };
                assert_eq!(got, expected, "table diverges on {src} for {word:?}");
            }
        }
    }

    #[test]
    fn bailouts_are_reported_structurally() {
        let quant = parse("all p { (call(p) - perform(p))* }").unwrap();
        assert_eq!(compile(&quant, budget(64)).unwrap_err(), CompileBailout::Quantifier);
        let unbounded = parse("(a - b)#").unwrap();
        assert_eq!(compile(&unbounded, budget(64)).unwrap_err(), CompileBailout::Unbounded);
        let e = parse("(a - b)*").unwrap();
        assert_eq!(compile(&e, budget(0)).unwrap_err(), CompileBailout::Disabled);
    }

    #[test]
    fn budget_exhaustion_bails_cleanly() {
        // 2^8 product states exceed a budget of 16.
        let mut e = parse("(a0 - b0)*").unwrap();
        for k in 1..8 {
            e = Expr::par(e, parse(&format!("(a{k} - b{k})*")).unwrap());
        }
        assert_eq!(compile(&e, budget(16)).unwrap_err(), CompileBailout::BudgetExceeded);
        // A budget of one state cannot even intern a successor.
        assert_eq!(
            compile(&parse("a - b").unwrap(), budget(1)).unwrap_err(),
            CompileBailout::BudgetExceeded
        );
    }

    #[test]
    fn compile_all_extracts_maximal_resident_subtrees() {
        // A quantified spine over two finite operands: the root bails, the
        // operands compile.
        let e = parse("((a - b)* @ (c - d)*) @ all p { e(p)# }").unwrap();
        let outcome = compile_all(&e, budget(64));
        assert!(outcome.bailouts >= 1, "the quantified spine must bail");
        assert_eq!(outcome.tables.len(), 1, "the ⊗ of the two finite loops is one tile");
        assert_eq!(outcome.tables[0].state_count(), 9);
        // Fully finite root: exactly one table, no bailouts.
        let fin = parse("(a - b)* @ (c - d)*").unwrap();
        let outcome = compile_all(&fin, budget(64));
        assert_eq!((outcome.tables.len(), outcome.bailouts), (1, 0));
    }

    #[test]
    fn fingerprints_distinguish_sources() {
        let t1 = compile(&parse("(a - b)*").unwrap(), budget(64)).unwrap();
        let t2 = compile(&parse("(a - c)*").unwrap(), budget(64)).unwrap();
        let t1_again = compile(&parse("(a - b)*").unwrap(), budget(64)).unwrap();
        assert_ne!(t1.fingerprint(), t2.fingerprint());
        assert_eq!(t1.fingerprint(), t1_again.fingerprint());
    }

    #[test]
    fn sequential_protocol_tables_are_rings() {
        let e = parse("(s0 - s1 - s2 - s3)*").unwrap();
        let t = compile(&e, budget(64)).unwrap();
        // 4 protocol positions plus the restarted idle (see the mutex test).
        assert_eq!(t.state_count(), 5);
        let mut id = t.start();
        for step in ["s0", "s1", "s2", "s3"] {
            assert!(!t.is_permitted(id, &a("s9")));
            id = t.step(id, &a(step));
            assert_ne!(id, DEAD, "protocol step {step} permitted");
        }
        assert!(t.is_final_state(id), "the full round is complete");
        assert_eq!(t.step(id, &a("s0")), t.step(t.start(), &a("s0")), "the ring closes");
    }
}

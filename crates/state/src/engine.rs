//! The word and action problems (Fig. 9 of the paper).
//!
//! * The **word problem** classifies a finite action sequence as a complete,
//!   partial or illegal word of an expression ([`word_problem`]).
//! * The **action problem** is the on-line variant that drives real systems:
//!   actions arrive one at a time and each must be accepted or rejected
//!   immediately ([`Engine::try_execute`]).  Acceptance is decided by a
//!   *tentative* state transition: if the successor state is valid the
//!   transition is committed, otherwise the current state is kept — exactly
//!   the `action()` loop of Fig. 9.
//!
//! The [`Engine`] is the component the interaction manager of `ix-manager`
//! wraps; it also records the per-transition state metrics used by the
//! complexity experiments.

use crate::error::StateResult;
use crate::init::init;
use crate::predicates::{is_final, is_valid};
use crate::state::{State, StateMetrics};
use crate::trans::{trans_with, TransitionOptions};
use ix_core::{Action, Expr};

/// Classification of a word, mirroring the integer result of the paper's
/// `word()` function (0 = illegal, 1 = partial, 2 = complete).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WordStatus {
    /// The word is not a partial word of the expression.
    Illegal,
    /// The word is a partial but not a complete word.
    Partial,
    /// The word is a complete word.
    Complete,
}

impl WordStatus {
    /// The paper's integer encoding.
    pub fn code(self) -> i32 {
        match self {
            WordStatus::Illegal => 0,
            WordStatus::Partial => 1,
            WordStatus::Complete => 2,
        }
    }
}

/// Solves the word problem for a closed expression using the operational
/// state model (the efficient counterpart of
/// `ix_semantics::classify_word`).
pub fn word_problem(expr: &Expr, word: &[Action]) -> StateResult<WordStatus> {
    let mut state = init(expr)?;
    for action in word {
        state = trans_with(&state, action, TransitionOptions::default());
        if state.is_null() {
            return Ok(WordStatus::Illegal);
        }
    }
    Ok(if is_final(&state) {
        WordStatus::Complete
    } else if is_valid(&state) {
        WordStatus::Partial
    } else {
        WordStatus::Illegal
    })
}

/// An incremental evaluator of one interaction expression: the component
/// that answers "is this action currently permitted?" and tracks the state
/// across committed executions.
#[derive(Clone, Debug)]
pub struct Engine {
    expr: Expr,
    state: State,
    options: TransitionOptions,
    accepted: u64,
    rejected: u64,
}

impl Engine {
    /// Creates an engine with the default (optimizing) transition options.
    pub fn new(expr: &Expr) -> StateResult<Engine> {
        Engine::with_options(expr, TransitionOptions::default())
    }

    /// Creates an engine with explicit transition options.
    pub fn with_options(expr: &Expr, options: TransitionOptions) -> StateResult<Engine> {
        Ok(Engine { expr: expr.clone(), state: init(expr)?, options, accepted: 0, rejected: 0 })
    }

    /// The expression this engine enforces.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The current state.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// Metrics of the current state (size, alternatives).
    pub fn metrics(&self) -> StateMetrics {
        StateMetrics::of(&self.state)
    }

    /// True if the action sequence committed so far is a partial word.
    /// (Always true unless the engine was constructed from an unsatisfiable
    /// state or fed through [`Engine::force_execute`].)
    pub fn is_valid(&self) -> bool {
        is_valid(&self.state)
    }

    /// True if the action sequence committed so far is a complete word.
    pub fn is_final(&self) -> bool {
        is_final(&self.state)
    }

    /// Number of accepted (committed) actions.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of rejected action attempts.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Tentatively checks whether the action would currently be accepted,
    /// without changing the state (step 1/2 of the coordination protocol:
    /// "ask" / "reply").
    pub fn is_permitted(&self, action: &Action) -> bool {
        if !action.is_concrete() {
            return false;
        }
        let next = trans_with(&self.state, action, self.options);
        is_valid(&next)
    }

    /// Filters the permitted actions out of a candidate list (used to keep
    /// worklists up to date).
    pub fn permitted<'a>(&self, candidates: &'a [Action]) -> Vec<&'a Action> {
        candidates.iter().filter(|a| self.is_permitted(a)).collect()
    }

    /// Reservation-aware permissibility probe: simulates the `reserved`
    /// actions first (in order, skipping any that are no longer executable)
    /// and then checks whether `action` is permitted in the resulting state.
    /// This is the probe a scheduler runs before granting a new reservation:
    /// a granted-but-unconfirmed action must stay executable, so the new
    /// grant is only given if the expression permits it *after* every
    /// outstanding reservation as well.
    ///
    /// The engine itself is untouched — only a speculative state walk is
    /// performed, without cloning the engine or charging its accept/reject
    /// counters.  Single-owner shard workers call this on their exclusively
    /// owned engine with no interior locking at all.
    pub fn permitted_after<'a, I>(&self, reserved: I, action: &Action) -> bool
    where
        I: IntoIterator<Item = &'a Action>,
    {
        // Lazily cloned: the common case of an empty reservation table costs
        // exactly one transition, like `is_permitted`.
        let mut speculative: Option<State> = None;
        for r in reserved {
            if !r.is_concrete() {
                continue;
            }
            let base = speculative.as_ref().unwrap_or(&self.state);
            let next = trans_with(base, r, self.options);
            if is_valid(&next) {
                speculative = Some(next);
            }
        }
        if !action.is_concrete() {
            return false;
        }
        let base = speculative.as_ref().unwrap_or(&self.state);
        is_valid(&trans_with(base, action, self.options))
    }

    /// The tentative half of a two-phase action step: computes the successor
    /// state without installing it, returning `Some` iff the action is
    /// currently permitted.  The caller either installs the successor with
    /// [`Engine::commit_prepared`] or aborts by dropping it — the engine's
    /// state is untouched either way.  This is the per-shard *prepare* vote
    /// of the cross-shard two-phase commit: a multi-owner action is prepared
    /// on every owning engine and committed only if all of them voted yes.
    pub fn prepare(&self, action: &Action) -> Option<State> {
        if !action.is_concrete() {
            return None;
        }
        let next = trans_with(&self.state, action, self.options);
        if is_valid(&next) {
            Some(next)
        } else {
            None
        }
    }

    /// The commit half of a two-phase action step: installs a successor
    /// state produced by [`Engine::prepare`] and counts the accepted action.
    /// Must only be called with a state prepared from the engine's *current*
    /// state (the caller serializes prepare and commit, e.g. under the
    /// shard's lock).
    pub fn commit_prepared(&mut self, next: State) {
        self.state = next;
        self.accepted += 1;
    }

    /// Performs the accept/reject step of the action problem: the action is
    /// committed iff its tentative successor state is valid.  Returns true
    /// if the action was accepted.  Equivalent to [`Engine::prepare`]
    /// followed by [`Engine::commit_prepared`] (or a recorded rejection).
    pub fn try_execute(&mut self, action: &Action) -> bool {
        match self.prepare(action) {
            Some(next) => {
                self.commit_prepared(next);
                true
            }
            None => {
                self.rejected += 1;
                false
            }
        }
    }

    /// Commits the action unconditionally, even if it invalidates the state.
    /// Used by failure-injection tests to model clients that bypass the
    /// coordination protocol.
    pub fn force_execute(&mut self, action: &Action) {
        self.state = trans_with(&self.state, action, self.options);
        self.accepted += 1;
    }

    /// Feeds a whole word, stopping at the first rejected action.  Returns
    /// the number of accepted actions.
    pub fn feed(&mut self, word: &[Action]) -> usize {
        let mut n = 0;
        for action in word {
            if self.try_execute(action) {
                n += 1;
            } else {
                break;
            }
        }
        n
    }

    /// Resets the engine to the initial state of its expression.
    pub fn reset(&mut self) {
        self.state = init(&self.expr).expect("expression validated at construction");
        self.accepted = 0;
        self.rejected = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_core::{parse, Value};

    fn a(name: &str) -> Action {
        Action::nullary(name)
    }

    #[test]
    fn word_problem_matches_fig9_codes() {
        let e = parse("a - b").unwrap();
        assert_eq!(word_problem(&e, &[]).unwrap(), WordStatus::Partial);
        assert_eq!(word_problem(&e, &[a("a")]).unwrap(), WordStatus::Partial);
        assert_eq!(word_problem(&e, &[a("a"), a("b")]).unwrap(), WordStatus::Complete);
        assert_eq!(word_problem(&e, &[a("b")]).unwrap(), WordStatus::Illegal);
        assert_eq!(WordStatus::Complete.code(), 2);
    }

    #[test]
    fn action_problem_accepts_and_rejects() {
        let e = parse("(x + y)*").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        assert!(eng.try_execute(&a("x")));
        assert!(eng.try_execute(&a("y")));
        assert!(!eng.try_execute(&a("z")));
        assert_eq!(eng.accepted(), 2);
        assert_eq!(eng.rejected(), 1);
        assert!(eng.is_final());
    }

    #[test]
    fn tentative_checks_do_not_change_state() {
        let e = parse("a - b").unwrap();
        let eng = Engine::new(&e).unwrap();
        assert!(eng.is_permitted(&a("a")));
        assert!(!eng.is_permitted(&a("b")));
        // Still at the initial state.
        assert!(eng.is_permitted(&a("a")));
        assert_eq!(eng.accepted(), 0);
    }

    #[test]
    fn reservation_aware_probe_replays_reserved_actions() {
        // Capacity one: with a reservation for `call(1)` outstanding, a
        // second call must probe as impermissible even though the engine's
        // committed state still allows it.
        let e = parse("mult 1 { (some p { call(p) - perform(p) })* }").unwrap();
        let eng = Engine::new(&e).unwrap();
        let call = |p: i64| Action::concrete("call", [Value::int(p)]);
        assert!(eng.is_permitted(&call(2)));
        let reserved = [call(1)];
        assert!(!eng.permitted_after(reserved.iter(), &call(2)), "slot is reserved");
        assert!(eng.permitted_after([].iter(), &call(2)), "no reservations, plain probe");
        // A reservation that is itself no longer executable is skipped, and
        // the engine is untouched either way.
        let stale = [a("nonsense")];
        assert!(eng.permitted_after(stale.iter(), &call(2)));
        assert_eq!(eng.accepted(), 0);
        assert_eq!(eng.rejected(), 0);
    }

    #[test]
    fn permitted_filters_candidates() {
        let e = parse("(call(1, sono) - perform(1, sono)) @ (call(1, endo) - perform(1, endo))")
            .unwrap();
        let eng = Engine::new(&e).unwrap();
        let candidates = vec![
            Action::concrete("call", [Value::int(1), Value::sym("sono")]),
            Action::concrete("perform", [Value::int(1), Value::sym("sono")]),
            Action::concrete("call", [Value::int(1), Value::sym("endo")]),
        ];
        let permitted = eng.permitted(&candidates);
        assert_eq!(permitted.len(), 2, "both calls allowed, perform not yet");
    }

    #[test]
    fn mutual_exclusion_scenario_from_the_introduction() {
        // Once the patient is called to one examination, the other call is
        // disabled until the first examination is performed.
        let e = parse(
            "(call(1, sono) - perform(1, sono)) + (call(1, endo) - perform(1, endo)) \
             + (call(1, sono) - perform(1, sono) - call(1, endo) - perform(1, endo)) \
             + (call(1, endo) - perform(1, endo) - call(1, sono) - perform(1, sono))",
        )
        .unwrap();
        let call = |x: &str| Action::concrete("call", [Value::int(1), Value::sym(x)]);
        let perform = |x: &str| Action::concrete("perform", [Value::int(1), Value::sym(x)]);
        let mut eng = Engine::new(&e).unwrap();
        assert!(eng.is_permitted(&call("sono")));
        assert!(eng.is_permitted(&call("endo")));
        assert!(eng.try_execute(&call("sono")));
        assert!(!eng.is_permitted(&call("endo")), "temporarily disabled");
        assert!(eng.try_execute(&perform("sono")));
        assert!(eng.is_permitted(&call("endo")), "re-enabled after completion");
    }

    #[test]
    fn feed_and_reset() {
        let e = parse("a - b - c").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        assert_eq!(eng.feed(&[a("a"), a("b"), a("z"), a("c")]), 2);
        assert!(!eng.is_final());
        eng.reset();
        assert_eq!(eng.accepted(), 0);
        assert_eq!(eng.feed(&[a("a"), a("b"), a("c")]), 3);
        assert!(eng.is_final());
    }

    #[test]
    fn force_execute_can_invalidate_the_state() {
        let e = parse("a").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        eng.force_execute(&a("z"));
        assert!(!eng.is_valid());
        assert!(!eng.try_execute(&a("a")), "nothing is permitted in the null state");
    }

    #[test]
    fn non_concrete_actions_are_rejected() {
        let e = parse("a").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        let abstract_action = Action::new("a", [ix_core::Term::Param(ix_core::Param::new("p"))]);
        assert!(!eng.is_permitted(&abstract_action));
        assert!(!eng.try_execute(&abstract_action));
    }

    #[test]
    fn engine_metrics_reflect_state_growth() {
        let e = parse("(a - b)#").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        let m0 = eng.metrics();
        eng.try_execute(&a("a"));
        eng.try_execute(&a("a"));
        let m2 = eng.metrics();
        assert!(m2.size >= m0.size);
        assert!(!m2.is_null);
    }
}

//! In-tree stand-in for the `criterion` crate.
//!
//! Provides the benchmark-definition surface this workspace uses
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`) with a simple
//! mean-of-N timer instead of criterion's statistical machinery.  Results
//! are printed as `group/function/param ... <mean> ns/iter`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_nanos: f64,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring until the sample
    /// budget or the measurement time is exhausted.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..3 {
            black_box(routine());
        }
        let started = Instant::now();
        let mut iters = 0u64;
        while iters < self.sample_size as u64 && started.elapsed() < self.measurement_time {
            black_box(routine());
            iters += 1;
        }
        let total = started.elapsed();
        self.last_nanos = if iters == 0 { 0.0 } else { total.as_nanos() as f64 / iters as f64 };
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of measured iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up time (accepted for API compatibility; warm-up is a
    /// fixed small number of iterations here).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Bounds the wall-clock time spent measuring one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            last_nanos: 0.0,
        };
        f(&mut bencher, input);
        println!(
            "{}/{}/{} ... {:.0} ns/iter",
            self.name, id.function, id.parameter, bencher.last_nanos
        );
        self
    }

    /// Runs an unparameterized benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            last_nanos: 0.0,
        };
        f(&mut bencher);
        println!("{}/{} ... {:.0} ns/iter", self.name, name.into(), bencher.last_nanos);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            sample_size: 100,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Runs a standalone benchmark function.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_record_timings() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5).measurement_time(Duration::from_millis(50));
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &n| b.iter(|| n * n));
        group.finish();
    }

    #[test]
    fn bench_function_works_standalone() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }
}

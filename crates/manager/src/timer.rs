//! A hierarchical timer wheel over the manager's logical clock.
//!
//! Lease expiry used to be a full scan of the reservation index on every
//! `advance_time` call.  The runtime instead schedules one timer per leased
//! grant in this wheel: four levels of 64 slots each, where level `l` covers
//! `64^l` logical-time units per slot, give O(1) schedule/cancel and an
//! advance cost proportional to the slots actually crossed plus the timers
//! actually due — never to the number of outstanding leases.  Deadlines
//! beyond the wheel's horizon (`64^4` ticks) park in an ordered overflow map
//! and are refiled when the horizon reaches them.
//!
//! The wheel is driven explicitly (`advance`), which is what makes the
//! runtime's *virtual clock* mode deterministic: tests advance logical time
//! and observe exactly the expirations that became due, in deadline order.
//! The wall-clock mode of the runtime simply calls `advance` from a ticker
//! thread — the wheel itself never reads a real clock.
//!
//! The payload is opaque to the wheel.  The runtime files two kinds of
//! entries: per-lease expiries, whose release tasks are enqueued to the
//! owning shard's queue and served by whichever *pool worker* the placement
//! table currently assigns that shard (the ticker targets workers, not
//! shards — there is no per-shard thread to interrupt), and the periodic
//! checkpoint entry ([`crate::RuntimeOptions::checkpoint_every`]), which
//! re-arms itself each time it fires.

use std::collections::BTreeMap;

/// Slots per level.
const SLOTS: u64 = 64;
/// Number of hierarchical levels.
const LEVELS: usize = 4;
/// First deadline distance that no level can hold (the overflow horizon).
const HORIZON: u64 = SLOTS * SLOTS * SLOTS * SLOTS;

/// Identifier of a scheduled timer (for cancellation).
pub type TimerId = u64;

#[derive(Clone, Debug)]
struct TimerEntry<T> {
    id: TimerId,
    deadline: u64,
    payload: T,
}

/// A hierarchical timer wheel firing payloads at logical-time deadlines.
#[derive(Clone, Debug)]
pub struct TimerWheel<T> {
    /// `levels[l][s]` holds entries whose deadline falls into slot `s` of
    /// level `l` relative to the wheel's current time.
    levels: Vec<Vec<Vec<TimerEntry<T>>>>,
    /// Deadlines at or beyond `now + HORIZON`.
    overflow: BTreeMap<u64, Vec<TimerEntry<T>>>,
    now: u64,
    next_id: TimerId,
    pending: usize,
}

impl<T> TimerWheel<T> {
    /// An empty wheel starting at logical time `now`.
    pub fn new(now: u64) -> TimerWheel<T> {
        TimerWheel {
            levels: (0..LEVELS).map(|_| (0..SLOTS).map(|_| Vec::new()).collect()).collect(),
            overflow: BTreeMap::new(),
            now,
            next_id: 1,
            pending: 0,
        }
    }

    /// The wheel's current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of scheduled, not yet fired or cancelled timers.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Schedules `payload` to fire when the wheel advances to `deadline`
    /// (a deadline at or before the current time fires on the next advance).
    pub fn schedule(&mut self, deadline: u64, payload: T) -> TimerId {
        let id = self.next_id;
        self.next_id += 1;
        self.pending += 1;
        self.file(TimerEntry { id, deadline, payload });
        id
    }

    /// Cancels a scheduled timer.  Returns the payload if the timer was
    /// still pending.  Cost: a scan of the one slot the timer lives in.
    pub fn cancel(&mut self, id: TimerId) -> Option<T> {
        for level in self.levels.iter_mut() {
            for slot in level.iter_mut() {
                if let Some(at) = slot.iter().position(|e| e.id == id) {
                    self.pending -= 1;
                    return Some(slot.swap_remove(at).payload);
                }
            }
        }
        let mut hit = None;
        for (deadline, entries) in self.overflow.iter_mut() {
            if let Some(at) = entries.iter().position(|e| e.id == id) {
                let entry = entries.swap_remove(at);
                if entries.is_empty() {
                    hit = Some((*deadline, entry));
                } else {
                    self.pending -= 1;
                    return Some(entry.payload);
                }
                break;
            }
        }
        if let Some((deadline, entry)) = hit {
            self.overflow.remove(&deadline);
            self.pending -= 1;
            return Some(entry.payload);
        }
        None
    }

    /// Files an entry into the coarsest level whose slot span contains its
    /// deadline distance, or into the overflow map beyond the horizon.
    fn file(&mut self, entry: TimerEntry<T>) {
        // Overdue deadlines are filed as if due at the next tick, so the
        // next advance is guaranteed to cross their slot.
        let effective = entry.deadline.max(self.now + 1);
        let distance = effective - self.now;
        if distance >= HORIZON {
            self.overflow.entry(entry.deadline).or_default().push(entry);
            return;
        }
        let mut span = 1u64;
        for level in 0..LEVELS {
            if distance < span * SLOTS {
                let slot = ((effective / span) % SLOTS) as usize;
                self.levels[level][slot].push(entry);
                return;
            }
            span *= SLOTS;
        }
        unreachable!("distance below HORIZON fits some level");
    }

    /// Advances the wheel to logical time `to`, returning every payload whose
    /// deadline passed, ordered by (deadline, schedule order).  Entries in
    /// crossed slots whose deadline lies beyond `to` cascade back into finer
    /// slots; the cost is bounded by the slots crossed (at most 64 per
    /// level), not by the number of pending timers.
    pub fn advance(&mut self, to: u64) -> Vec<T> {
        if to <= self.now {
            return Vec::new();
        }
        let from = self.now;
        let mut harvested: Vec<TimerEntry<T>> = Vec::new();
        let mut span = 1u64;
        for level in 0..LEVELS {
            // Slots of this level whose time range intersects (from, to].
            let first = from / span;
            let last = to / span;
            let crossed = (last - first).min(SLOTS) + 1;
            for i in 0..crossed {
                let slot = ((first + i) % SLOTS) as usize;
                harvested.append(&mut self.levels[level][slot]);
            }
            span *= SLOTS;
        }
        self.now = to;
        // Overflow entries now inside the horizon come back to the wheel.
        let still_far = self.overflow.split_off(&(to.saturating_add(HORIZON)));
        let near = std::mem::replace(&mut self.overflow, still_far);
        harvested.extend(near.into_values().flatten());
        let mut due = Vec::new();
        for entry in harvested {
            if entry.deadline <= to {
                due.push(entry);
            } else {
                // Not due yet: refile relative to the new `now` (cascade).
                self.file(entry);
            }
        }
        due.sort_by_key(|e| (e.deadline, e.id));
        self.pending -= due.len();
        due.into_iter().map(|e| e.payload).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order() {
        let mut wheel = TimerWheel::new(0);
        wheel.schedule(5, "b");
        wheel.schedule(3, "a");
        wheel.schedule(9, "c");
        assert_eq!(wheel.pending(), 3);
        assert_eq!(wheel.advance(4), vec!["a"]);
        assert_eq!(wheel.advance(9), vec!["b", "c"]);
        assert_eq!(wheel.pending(), 0);
        assert!(wheel.advance(100).is_empty());
    }

    #[test]
    fn coarse_levels_cascade_into_fine_ones() {
        let mut wheel = TimerWheel::new(0);
        // Level-1 territory (distance in [64, 4096)): the deadline must not
        // fire when its coarse slot is crossed early.
        wheel.schedule(100, "far");
        assert!(wheel.advance(99).is_empty(), "cascades, does not fire");
        assert_eq!(wheel.advance(100), vec!["far"]);
        // Level-2 and level-3 distances.
        wheel.schedule(5_000, "l2");
        wheel.schedule(300_000, "l3");
        assert!(wheel.advance(4_999).is_empty());
        assert_eq!(wheel.advance(5_000), vec!["l2"]);
        assert_eq!(wheel.advance(300_000), vec!["l3"]);
    }

    #[test]
    fn overflow_beyond_the_horizon_is_refiled() {
        let mut wheel = TimerWheel::new(0);
        let far = HORIZON * 2 + 17;
        wheel.schedule(far, "beyond");
        assert!(wheel.advance(HORIZON).is_empty());
        assert_eq!(wheel.pending(), 1);
        assert_eq!(wheel.advance(far), vec!["beyond"]);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut wheel = TimerWheel::new(0);
        let a = wheel.schedule(10, "a");
        let b = wheel.schedule(10_000, "b");
        let c = wheel.schedule(HORIZON + 5, "c");
        assert_eq!(wheel.cancel(a), Some("a"));
        assert_eq!(wheel.cancel(b), Some("b"));
        assert_eq!(wheel.cancel(c), Some("c"));
        assert_eq!(wheel.cancel(a), None, "already cancelled");
        assert_eq!(wheel.pending(), 0);
        assert!(wheel.advance(HORIZON * 2).is_empty());
    }

    #[test]
    fn overflow_map_holds_many_deadlines_beyond_the_horizon() {
        // Leases landing beyond the 4×64-slot horizon park in the ordered
        // overflow map; they must neither fire early nor lose their
        // deadline order, including entries sharing one deadline.
        let mut wheel = TimerWheel::new(0);
        wheel.schedule(HORIZON + 10, "b1");
        wheel.schedule(HORIZON + 10, "b2");
        wheel.schedule(HORIZON * 3, "far");
        wheel.schedule(HORIZON + 1, "a");
        assert_eq!(wheel.pending(), 4);
        assert!(wheel.advance(HORIZON).is_empty(), "nothing due inside the horizon");
        assert_eq!(wheel.pending(), 4, "refiled, not dropped");
        assert_eq!(wheel.advance(HORIZON + 10), vec!["a", "b1", "b2"]);
        assert_eq!(wheel.advance(HORIZON * 4), vec!["far"]);
        assert_eq!(wheel.pending(), 0);
    }

    #[test]
    fn cancel_from_the_overflow_map_keeps_same_deadline_siblings() {
        let mut wheel = TimerWheel::new(0);
        let a = wheel.schedule(HORIZON + 7, "a");
        let b = wheel.schedule(HORIZON + 7, "b");
        assert_eq!(wheel.cancel(a), Some("a"));
        assert_eq!(wheel.pending(), 1);
        // The sibling with the same overflow deadline still fires.
        assert_eq!(wheel.advance(HORIZON + 7), vec!["b"]);
        assert_eq!(wheel.cancel(b), None, "already fired");
    }

    #[test]
    fn overflow_entries_remain_cancellable_after_refiling_into_the_wheel() {
        let mut wheel = TimerWheel::new(0);
        let id = wheel.schedule(HORIZON + 100, "lease");
        // Advance far enough that the entry left the overflow map and was
        // refiled into a wheel level.
        assert!(wheel.advance(200).is_empty());
        assert_eq!(wheel.pending(), 1);
        assert_eq!(wheel.cancel(id), Some("lease"));
        assert!(wheel.advance(HORIZON * 2).is_empty());
        assert_eq!(wheel.pending(), 0);
    }

    #[test]
    fn past_deadlines_fire_on_the_next_advance() {
        let mut wheel = TimerWheel::new(50);
        wheel.schedule(10, "overdue");
        assert_eq!(wheel.advance(51), vec!["overdue"]);
    }

    #[test]
    fn large_jumps_do_not_lose_timers() {
        let mut wheel = TimerWheel::new(0);
        let deadlines: Vec<u64> = vec![1, 63, 64, 65, 4095, 4096, 4097, 262143, 262144, 262145];
        for &d in &deadlines {
            wheel.schedule(d, d);
        }
        let fired = wheel.advance(500_000);
        assert_eq!(fired, {
            let mut sorted = deadlines.clone();
            sorted.sort_unstable();
            sorted
        });
    }
}

//! The state objects of the operational semantics (Sec. 4).
//!
//! Every interaction expression x is assigned an initial state σ(x); a state
//! transition function τ maps a state and an action to a successor state;
//! the predicates ψ ("valid") and ϕ ("final") correspond to the partial- and
//! complete-word sets of the formal semantics; and the optimization function
//! ρ replaces states by equivalent but smaller ones.  The construction of
//! σ, τ, ψ, ϕ and ρ lives in the sibling modules `init`, `trans`,
//! `predicates` and `optimize`; this module defines the state *data* and the
//! generic helpers they share (size metrics and parameter substitution, which
//! is what turns a quantifier's template state into the state of a concrete
//! branch).
//!
//! States are hierarchically structured values mirroring the expression tree,
//! with sets of *alternatives* wherever the walker metaphor of the paper
//! allows several positions at once (sequences, iterations, parallel
//! compositions, quantifiers).

use ix_core::{Action, Alphabet, Expr, Param, Value};
use std::collections::{BTreeMap, BTreeSet};

/// An alphabet together with the set of parameters that are bound by
/// quantifiers *outside* the expression the alphabet belongs to.
///
/// The synchronization operator and quantifier route an action to an operand
/// only if the operand's alphabet covers it.  Parameters bound by quantifiers
/// *inside* the operand act as wildcards (the operand's own quantifier will
/// dispatch on the value), whereas parameters bound *outside* stand for a
/// specific-but-not-yet-observed value ("fresh") and therefore never match a
/// concrete action; they become concrete when the enclosing quantifier
/// instantiates the state by substitution.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ScopedAlphabet {
    /// The abstract actions of the operand.
    pub alphabet: Alphabet,
    /// Parameters treated as "fresh, never matching" (bound outside).
    pub blocked: BTreeSet<Param>,
}

impl ScopedAlphabet {
    /// Builds the scoped alphabet of an operand expression: its alphabet plus
    /// its free parameters as blocked parameters.
    pub fn of(operand: &Expr) -> ScopedAlphabet {
        ScopedAlphabet { alphabet: operand.alphabet(), blocked: operand.free_params() }
    }

    /// True if the concrete action is covered by the alphabet, treating
    /// blocked parameters as never matching and all other parameters as
    /// wildcards.
    pub fn covers(&self, concrete: &Action) -> bool {
        self.covers_blocking(concrete, &[])
    }

    /// Like [`ScopedAlphabet::covers`] but with additional temporarily
    /// blocked parameters (used for quantifier templates, where the
    /// quantifier's own parameter is also fresh).
    pub fn covers_blocking(&self, concrete: &Action, extra_blocked: &[Param]) -> bool {
        self.alphabet.actions().any(|a| {
            let mentions_blocked =
                a.params().iter().any(|p| self.blocked.contains(p) || extra_blocked.contains(p));
            if mentions_blocked {
                // An atom mentioning a fresh parameter can only match actions
                // containing that (unobserved) value — i.e. never.
                false
            } else {
                a.matches_concrete(concrete)
            }
        })
    }

    /// Coverage for a specific instantiation of a parameter (used for
    /// quantifier branches): the parameter is substituted before matching.
    pub fn covers_with(&self, concrete: &Action, param: Param, value: Value) -> bool {
        self.alphabet.actions().any(|a| {
            let inst = a.substitute(param, value);
            let mentions_blocked = inst.params().iter().any(|p| self.blocked.contains(p));
            if mentions_blocked {
                false
            } else {
                inst.matches_concrete(concrete)
            }
        })
    }

    /// Substitutes a value for a parameter (when an enclosing quantifier
    /// instantiates a branch); the parameter stops being blocked.
    pub fn substitute(&self, param: Param, value: Value) -> ScopedAlphabet {
        let mut blocked = self.blocked.clone();
        blocked.remove(&param);
        ScopedAlphabet {
            alphabet: self.alphabet.actions().map(|a| a.substitute(param, value)).collect(),
            blocked,
        }
    }
}

/// A state of the operational semantics.
///
/// `State` values are immutable; transitions build new states (sharing is by
/// value, which keeps the tentative-transition pattern of the action problem
/// allocation-friendly: the old state simply stays around if the transition
/// is rejected).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum State {
    /// The null (invalid) state: no walker position is consistent with the
    /// actions processed so far.
    Null,
    /// State of the empty expression ε: valid and final until any action is
    /// processed.
    Epsilon,
    /// State of an atomic expression whose action has not been traversed yet.
    AtomFresh {
        /// The expected action (may be non-concrete, in which case it can
        /// never be traversed).
        action: Action,
    },
    /// State of an atomic expression whose action has been traversed.
    AtomDone,
    /// State of an option.
    Option {
        /// True while no action has been processed (ε is still a complete
        /// word of the option).
        at_start: bool,
        /// State of the body.
        body: Box<State>,
    },
    /// State of a sequential composition y − z.
    Seq {
        /// The right operand, needed to spawn new right-hand runs whenever
        /// the left operand completes.
        right_expr: Expr,
        /// State of the left operand.
        left: Box<State>,
        /// States of right-operand runs, one per completion point of the
        /// left operand (deduplicated, sorted).
        rights: Vec<State>,
    },
    /// State of a sequential iteration y*.
    SeqIter {
        /// The body expression, needed to start the next iteration.
        body_expr: Expr,
        /// True if the consumed word is a complete concatenation of body
        /// words (the walker stands at an iteration boundary).
        boundary: bool,
        /// States of in-progress body runs (deduplicated, sorted).
        runs: Vec<State>,
    },
    /// State of a parallel composition y ‖ z: the set of alternatives of the
    /// paper's running example, each a pair of operand states.
    Par {
        /// The alternatives [l, r].
        alts: Vec<(State, State)>,
    },
    /// State of a parallel iteration y#.
    ParIter {
        /// The body expression, needed to spawn new concurrent instances.
        body_expr: Expr,
        /// Alternatives; each alternative is the multiset (sorted vector) of
        /// states of body instances that have consumed at least one action.
        alts: Vec<Vec<State>>,
    },
    /// State of a disjunction y ∨ z.
    Or {
        /// State of the left operand.
        left: Box<State>,
        /// State of the right operand.
        right: Box<State>,
    },
    /// State of a conjunction y ∧ z.
    And {
        /// State of the left operand.
        left: Box<State>,
        /// State of the right operand.
        right: Box<State>,
    },
    /// State of a synchronization y ⊗ z (coupling operator).
    Sync {
        /// Scoped alphabet of the left operand (the actions it constrains).
        left_alpha: ScopedAlphabet,
        /// Scoped alphabet of the right operand.
        right_alpha: ScopedAlphabet,
        /// State of the left operand.
        left: Box<State>,
        /// State of the right operand.
        right: Box<State>,
    },
    /// State of a disjunction quantifier (for some p).
    SomeQ(QuantState),
    /// State of a conjunction quantifier (for every p).
    AllQ(QuantState),
    /// State of a synchronization quantifier.
    SyncQ(QuantState),
    /// State of a parallel quantifier (for all p, concurrently).
    ParQ {
        /// The quantified parameter.
        param: Param,
        /// The (uninstantiated) body expression.
        body_expr: Expr,
        /// Whether ε is a complete word of the body — required for the
        /// quantifier to have any complete word at all (the infinite shuffle
        /// is empty otherwise).
        body_accepts_epsilon: bool,
        /// Alternatives; each alternative maps the values whose branch has
        /// consumed at least one action to that branch's state.
        alts: Vec<BTreeMap<Value, State>>,
    },
    /// State of a multiplier (n concurrent instances of the body).
    Mult {
        /// The body expression, needed to start instances lazily.
        body_expr: Expr,
        /// Total number of instances n.
        capacity: u32,
        /// Whether ε is a complete word of the body (idle instances must be
        /// able to contribute the empty word for the whole state to be
        /// final).
        body_accepts_epsilon: bool,
        /// Alternatives; each alternative is the multiset (sorted vector) of
        /// states of instances that have consumed at least one action.
        alts: Vec<Vec<State>>,
    },
}

/// Shared representation of the three "whole word per branch" quantifiers
/// (disjunction, conjunction, synchronization): a *template* state standing
/// for every value that has not occurred yet, plus one instantiated branch
/// per observed value.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct QuantState {
    /// The quantified parameter.
    pub param: Param,
    /// The (uninstantiated) body expression.
    pub body_expr: Expr,
    /// Scoped alphabet of the body, used by the synchronization quantifier to
    /// route actions.  The blocked set contains every parameter free in the
    /// body (including the quantifier's own parameter); branch coverage
    /// substitutes the quantifier parameter before matching, template
    /// coverage leaves it blocked.
    pub scope: ScopedAlphabet,
    /// State of the body with the parameter left unbound; it represents all
    /// branches whose value has not yet occurred in any processed action.
    pub template: Box<State>,
    /// Branch states for values that have occurred, keyed by value.
    pub branches: BTreeMap<Value, State>,
}

impl State {
    /// True if this is the null (invalid) state.
    pub fn is_null(&self) -> bool {
        matches!(self, State::Null)
    }

    /// The *size* of a state: the number of nodes of the hierarchical state
    /// object.  This is the quantity whose growth Sec. 6 analyses (for a
    /// parallel composition it is dominated by the number of alternatives).
    pub fn size(&self) -> usize {
        match self {
            State::Null | State::Epsilon | State::AtomFresh { .. } | State::AtomDone => 1,
            State::Option { body, .. } => 1 + body.size(),
            State::Seq { left, rights, .. } => {
                1 + left.size() + rights.iter().map(State::size).sum::<usize>()
            }
            State::SeqIter { runs, .. } => 1 + runs.iter().map(State::size).sum::<usize>(),
            State::Par { alts } => 1 + alts.iter().map(|(l, r)| l.size() + r.size()).sum::<usize>(),
            State::ParIter { alts, .. } | State::Mult { alts, .. } => {
                1 + alts
                    .iter()
                    .map(|threads| 1 + threads.iter().map(State::size).sum::<usize>())
                    .sum::<usize>()
            }
            State::Or { left, right } | State::And { left, right } => {
                1 + left.size() + right.size()
            }
            State::Sync { left, right, .. } => 1 + left.size() + right.size(),
            State::SomeQ(q) | State::AllQ(q) | State::SyncQ(q) => {
                1 + q.template.size() + q.branches.values().map(State::size).sum::<usize>()
            }
            State::ParQ { alts, .. } => {
                1 + alts
                    .iter()
                    .map(|branches| 1 + branches.values().map(State::size).sum::<usize>())
                    .sum::<usize>()
            }
        }
    }

    /// The total number of alternatives held anywhere in the state — the
    /// quantity the optimization function ρ keeps small in practice (Sec. 6).
    pub fn alternative_count(&self) -> usize {
        match self {
            State::Null | State::Epsilon | State::AtomFresh { .. } | State::AtomDone => 0,
            State::Option { body, .. } => body.alternative_count(),
            State::Seq { left, rights, .. } => {
                rights.len()
                    + left.alternative_count()
                    + rights.iter().map(State::alternative_count).sum::<usize>()
            }
            State::SeqIter { runs, .. } => {
                runs.len() + runs.iter().map(State::alternative_count).sum::<usize>()
            }
            State::Par { alts } => {
                alts.len()
                    + alts
                        .iter()
                        .map(|(l, r)| l.alternative_count() + r.alternative_count())
                        .sum::<usize>()
            }
            State::ParIter { alts, .. } | State::Mult { alts, .. } => {
                alts.len()
                    + alts
                        .iter()
                        .flat_map(|t| t.iter())
                        .map(State::alternative_count)
                        .sum::<usize>()
            }
            State::Or { left, right } | State::And { left, right } => {
                left.alternative_count() + right.alternative_count()
            }
            State::Sync { left, right, .. } => left.alternative_count() + right.alternative_count(),
            State::SomeQ(q) | State::AllQ(q) | State::SyncQ(q) => {
                q.template.alternative_count()
                    + q.branches.values().map(State::alternative_count).sum::<usize>()
            }
            State::ParQ { alts, .. } => {
                alts.len()
                    + alts
                        .iter()
                        .flat_map(|b| b.values())
                        .map(State::alternative_count)
                        .sum::<usize>()
            }
        }
    }

    /// Substitutes a value for a parameter throughout the state, respecting
    /// quantifier shadowing.  This is how a quantifier's template state is
    /// turned into the state of the branch for a newly observed value: by the
    /// substitution property, the branch for an unseen value ω behaves
    /// exactly like the template until ω first occurs, so substituting at
    /// that moment reconstructs the branch's true state.
    pub fn substitute(&self, param: Param, value: Value) -> State {
        match self {
            State::Null => State::Null,
            State::Epsilon => State::Epsilon,
            State::AtomDone => State::AtomDone,
            State::AtomFresh { action } => {
                State::AtomFresh { action: action.substitute(param, value) }
            }
            State::Option { at_start, body } => {
                State::Option { at_start: *at_start, body: Box::new(body.substitute(param, value)) }
            }
            State::Seq { right_expr, left, rights } => State::Seq {
                right_expr: right_expr.substitute(param, value),
                left: Box::new(left.substitute(param, value)),
                rights: rights.iter().map(|r| r.substitute(param, value)).collect(),
            },
            State::SeqIter { body_expr, boundary, runs } => State::SeqIter {
                body_expr: body_expr.substitute(param, value),
                boundary: *boundary,
                runs: runs.iter().map(|r| r.substitute(param, value)).collect(),
            },
            State::Par { alts } => State::Par {
                alts: alts
                    .iter()
                    .map(|(l, r)| (l.substitute(param, value), r.substitute(param, value)))
                    .collect(),
            },
            State::ParIter { body_expr, alts } => State::ParIter {
                body_expr: body_expr.substitute(param, value),
                alts: alts
                    .iter()
                    .map(|threads| threads.iter().map(|t| t.substitute(param, value)).collect())
                    .collect(),
            },
            State::Or { left, right } => State::Or {
                left: Box::new(left.substitute(param, value)),
                right: Box::new(right.substitute(param, value)),
            },
            State::And { left, right } => State::And {
                left: Box::new(left.substitute(param, value)),
                right: Box::new(right.substitute(param, value)),
            },
            State::Sync { left_alpha, right_alpha, left, right } => State::Sync {
                left_alpha: left_alpha.substitute(param, value),
                right_alpha: right_alpha.substitute(param, value),
                left: Box::new(left.substitute(param, value)),
                right: Box::new(right.substitute(param, value)),
            },
            State::SomeQ(q) => State::SomeQ(q.substitute(param, value)),
            State::AllQ(q) => State::AllQ(q.substitute(param, value)),
            State::SyncQ(q) => State::SyncQ(q.substitute(param, value)),
            State::ParQ { param: own, body_expr, body_accepts_epsilon, alts } => {
                if *own == param {
                    // Shadowed: the inner quantifier rebinds the parameter.
                    self.clone()
                } else {
                    State::ParQ {
                        param: *own,
                        body_expr: body_expr.substitute(param, value),
                        body_accepts_epsilon: *body_accepts_epsilon,
                        alts: alts
                            .iter()
                            .map(|branches| {
                                branches
                                    .iter()
                                    .map(|(v, s)| (*v, s.substitute(param, value)))
                                    .collect()
                            })
                            .collect(),
                    }
                }
            }
            State::Mult { body_expr, capacity, body_accepts_epsilon, alts } => State::Mult {
                body_expr: body_expr.substitute(param, value),
                capacity: *capacity,
                body_accepts_epsilon: *body_accepts_epsilon,
                alts: alts
                    .iter()
                    .map(|threads| threads.iter().map(|t| t.substitute(param, value)).collect())
                    .collect(),
            },
        }
    }
}

impl QuantState {
    fn substitute(&self, param: Param, value: Value) -> QuantState {
        if self.param == param {
            // Shadowed by this quantifier's own binding.
            return self.clone();
        }
        QuantState {
            param: self.param,
            body_expr: self.body_expr.substitute(param, value),
            scope: self.scope.substitute(param, value),
            template: Box::new(self.template.substitute(param, value)),
            branches: self.branches.iter().map(|(v, s)| (*v, s.substitute(param, value))).collect(),
        }
    }
}

/// Summary metrics of a state, used by the complexity experiments of Sec. 6.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StateMetrics {
    /// Total node count of the state object.
    pub size: usize,
    /// Total number of alternatives across all alternative sets.
    pub alternatives: usize,
    /// Whether the state is the null state.
    pub is_null: bool,
}

impl StateMetrics {
    /// Captures the metrics of a state.
    pub fn of(state: &State) -> StateMetrics {
        StateMetrics {
            size: state.size(),
            alternatives: state.alternative_count(),
            is_null: state.is_null(),
        }
    }

    /// Folds another state's metrics into this one (sizes and alternative
    /// counts add up; a compound state is null iff some part is null).  Used
    /// to aggregate per-shard metrics.
    pub fn accumulate(&mut self, other: StateMetrics) {
        self.size += other.size;
        self.alternatives += other.alternatives;
        self.is_null |= other.is_null;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_core::builder::{act0, actp};
    use ix_core::Value;

    #[test]
    fn null_and_leaf_states() {
        assert!(State::Null.is_null());
        assert!(!State::Epsilon.is_null());
        assert_eq!(State::Null.size(), 1);
        assert_eq!(State::Epsilon.alternative_count(), 0);
    }

    #[test]
    fn size_counts_nested_structure() {
        let s = State::Par {
            alts: vec![(State::AtomDone, State::Epsilon), (State::Null, State::AtomDone)],
        };
        assert_eq!(s.size(), 5);
        assert_eq!(s.alternative_count(), 2);
    }

    #[test]
    fn substitution_reaches_atoms_and_expressions() {
        let p = ix_core::Param::new("p");
        let s = State::Seq {
            right_expr: actp("b", &["p"]),
            left: Box::new(State::AtomFresh {
                action: ix_core::Action::new("a", [ix_core::Term::Param(p)]),
            }),
            rights: vec![],
        };
        let s2 = s.substitute(p, Value::int(3));
        match &s2 {
            State::Seq { right_expr, left, .. } => {
                assert!(right_expr.is_closed());
                match left.as_ref() {
                    State::AtomFresh { action } => assert!(action.is_concrete()),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn substitution_respects_quantifier_shadowing() {
        let p = ix_core::Param::new("p");
        let body = actp("a", &["p"]);
        let inner = QuantState {
            param: p,
            body_expr: body.clone(),
            scope: ScopedAlphabet::of(&body),
            template: Box::new(State::AtomFresh {
                action: ix_core::Action::new("a", [ix_core::Term::Param(p)]),
            }),
            branches: BTreeMap::new(),
        };
        let s = State::SomeQ(inner.clone());
        let s2 = s.substitute(p, Value::int(1));
        assert_eq!(s, s2, "the inner binding shadows the substitution");
    }

    #[test]
    fn scoped_alphabet_blocks_outer_parameters() {
        let body = ix_core::Expr::seq(actp("a", &["p"]), act0("c"));
        let scope = ScopedAlphabet::of(&body);
        let a1 = ix_core::Action::concrete("a", [Value::int(1)]);
        let c = ix_core::Action::nullary("c");
        // p is free in the body, hence blocked: a(1) is not covered...
        assert!(!scope.covers(&a1));
        // ...but c (no parameters) is, and so is a(1) once p is instantiated.
        assert!(scope.covers(&c));
        assert!(scope.covers_with(&a1, ix_core::Param::new("p"), Value::int(1)));
        assert!(!scope.covers_with(&a1, ix_core::Param::new("p"), Value::int(2)));
        // Substituting p concretizes the alphabet.
        let inst = scope.substitute(ix_core::Param::new("p"), Value::int(1));
        assert!(inst.covers(&a1));
        assert!(!inst.covers(&ix_core::Action::concrete("a", [Value::int(2)])));
    }

    #[test]
    fn scoped_alphabet_inner_parameters_are_wildcards() {
        // A body whose parameter is bound by an inner quantifier: the
        // parameter is not free, hence not blocked, hence a wildcard.
        let body = ix_core::parse("some q { a(q) }").unwrap();
        let scope = ScopedAlphabet::of(&body);
        assert!(scope.covers(&ix_core::Action::concrete("a", [Value::int(7)])));
        assert!(!scope.covers(&ix_core::Action::nullary("b")));
        // Extra blocking (template use) can still disable matching.
        assert!(scope.covers_blocking(
            &ix_core::Action::concrete("a", [Value::int(7)]),
            &[ix_core::Param::new("r")]
        ));
    }

    #[test]
    fn metrics_capture_size_and_alternatives() {
        let s = State::SeqIter {
            body_expr: act0("a"),
            boundary: true,
            runs: vec![State::AtomDone, State::AtomFresh { action: ix_core::Action::nullary("a") }],
        };
        let m = StateMetrics::of(&s);
        assert_eq!(m.size, 3);
        assert_eq!(m.alternatives, 2);
        assert!(!m.is_null);
    }

    #[test]
    fn states_order_and_hash() {
        use std::collections::BTreeSet;
        let set: BTreeSet<State> =
            [State::Null, State::Epsilon, State::AtomDone, State::Null].into_iter().collect();
        assert_eq!(set.len(), 3);
    }
}

//! Commit-chain cross-shard workload: conditional-vote cascading on vs off
//! vs the blocking manager.
//!
//! The workload stresses exactly the path BENCH_async.json flagged as the
//! system's worst: chains of *consecutive* cross-shard commits.  Each client
//! alternates between a run of local call/perform pairs on its own
//! department and a burst of `depth` consecutive `audit` barriers — every
//! audit is a cross-shard commit owned by *all* shards, so a burst forms a
//! commit chain the coalescing workers pick up as one speculative batch.
//! The local/audit mix is set by `overlap_percent` (the fraction of
//! submissions that are audits), mirroring [`crate::contended`]'s ratio
//! knob but with the audits adjacent instead of spread out.
//!
//! Under the old protocol every committing barrier in a chain costs a full
//! rendezvous: a yes vote on an undecided predecessor holds all successor
//! votes back, so a depth-`d` burst pays ~`d` parks per owner.  With
//! conditional-vote cascading the successors' votes are deposited tagged
//! with their assumptions, and the first barrier's commit cascades the
//! whole burst to decided — the rendezvous-free decided path.  The bench
//! reports all three surfaces on identical schedules so the cascade's
//! effect is isolated: cascade-off shares every other runtime cost.

use crate::contended::{overlap_constraint, ContentionReport};
use crate::pipelined::LatencyReport;
use ix_core::Action;
use ix_manager::{
    CascadeStats, Completion, InteractionManager, ManagerRuntime, ProtocolVariant, RuntimeOptions,
    Session, Ticket,
};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// One measured configuration: identical schedules on the blocking manager,
/// the runtime with cascading, and the runtime without.
#[derive(Clone, Debug)]
pub struct CrossReport {
    /// Consecutive audits per burst (the commit-chain depth).
    pub depth: usize,
    /// Percentage of submissions that are cross-shard audits.
    pub overlap_percent: u32,
    /// Shard count (= department components = client threads).
    pub shards: usize,
    /// The blocking sharded manager.
    pub blocking: LatencyReport,
    /// The session runtime with conditional-vote cascading (default).
    pub cascade_on: LatencyReport,
    /// The session runtime with `RuntimeOptions::cascade = false`.
    pub cascade_off: LatencyReport,
    /// Cascade counters of the cascade-on run — proof the fast path fired.
    pub cascade_stats: CascadeStats,
}

/// The per-client schedule: `bursts` repetitions of local call/perform
/// pairs followed by `depth` consecutive audits.  The number of local
/// actions per burst is `depth * (100 - pct) / pct` (rounded up to a whole
/// pair), so audits make up ~`pct`% of the submissions.
pub fn chain_schedule(
    component: usize,
    offset: i64,
    bursts: usize,
    depth: usize,
    overlap_percent: u32,
) -> Vec<Action> {
    assert!(depth >= 1, "a burst has at least one audit");
    assert!((1..=100).contains(&overlap_percent), "audit ratio must be in 1..=100");
    let audit = ix_wfms::coupled_audit();
    let locals = depth * (100 - overlap_percent as usize) / overlap_percent as usize;
    let pairs = locals.div_ceil(2).max(1);
    let mut schedule = Vec::with_capacity(bursts * (pairs * 2 + depth));
    let mut p = offset;
    for _ in 0..bursts {
        for _ in 0..pairs {
            schedule.push(ix_wfms::coupled_call(component, p));
            schedule.push(ix_wfms::coupled_perform(component, p));
            p += 1;
        }
        for _ in 0..depth {
            schedule.push(audit.clone());
        }
    }
    schedule
}

/// Drives the chain schedules through the blocking manager, one synchronous
/// `try_execute` per action.
pub fn run_chain_blocking(
    manager: Arc<InteractionManager>,
    threads: usize,
    bursts: usize,
    depth: usize,
    overlap_percent: u32,
) -> LatencyReport {
    let shards = manager.shard_count();
    let started = Instant::now();
    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        let manager = Arc::clone(&manager);
        handles.push(std::thread::spawn(move || {
            let schedule = chain_schedule(
                t,
                (t * bursts * depth * 100) as i64,
                bursts,
                depth,
                overlap_percent,
            );
            let mut committed = 0u64;
            let mut latencies = Vec::with_capacity(schedule.len());
            for action in &schedule {
                let t0 = Instant::now();
                if manager.try_execute(t as u64, action).expect("concrete").is_some() {
                    committed += 1;
                }
                latencies.push(t0.elapsed().as_nanos() as u64);
            }
            (committed, latencies)
        }));
    }
    collect(handles, threads, shards, started)
}

/// Drives the chain schedules through runtime sessions, `window` submissions
/// in flight per client via [`Session::submit_batch`].
pub fn run_chain_runtime(
    runtime: Arc<ManagerRuntime>,
    threads: usize,
    bursts: usize,
    depth: usize,
    overlap_percent: u32,
    window: usize,
) -> LatencyReport {
    let shards = runtime.shard_count();
    let _ = runtime.drain_queue_samples();
    let started = Instant::now();
    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        let session: Session = runtime.session(t as u64);
        handles.push(std::thread::spawn(move || {
            let schedule = chain_schedule(
                t,
                (t * bursts * depth * 100) as i64,
                bursts,
                depth,
                overlap_percent,
            );
            let mut committed = 0u64;
            let mut latencies = Vec::with_capacity(schedule.len());
            for chunk in schedule.chunks(window.max(1)) {
                let submitted = Instant::now();
                let tickets: VecDeque<Ticket<Completion>> = session.submit_batch(chunk).into();
                for ticket in tickets {
                    if matches!(ticket.wait(), Completion::Executed { .. }) {
                        committed += 1;
                    }
                    latencies.push(submitted.elapsed().as_nanos() as u64);
                }
            }
            (committed, latencies)
        }));
    }
    let mut report = collect(handles, threads, shards, started);
    report.queue_samples = runtime.drain_queue_samples();
    report
}

fn collect(
    handles: Vec<std::thread::JoinHandle<(u64, Vec<u64>)>>,
    threads: usize,
    shards: usize,
    started: Instant,
) -> LatencyReport {
    let mut committed = 0u64;
    let mut latencies = Vec::new();
    for handle in handles {
        let (c, mut l) = handle.join().expect("client thread");
        committed += c;
        latencies.append(&mut l);
    }
    LatencyReport {
        contention: ContentionReport { threads, shards, committed, elapsed: started.elapsed() },
        latencies_nanos: latencies,
        queue_samples: Vec::new(),
    }
}

fn chain_runtime(shards: usize, overlap_percent: u32, cascade: bool) -> Arc<ManagerRuntime> {
    let expr = overlap_constraint(shards, overlap_percent);
    Arc::new(
        ManagerRuntime::with_options(
            &expr,
            RuntimeOptions {
                variant: ProtocolVariant::Combined,
                cascade,
                queue_metrics: true,
                // This bench measures the cross-shard cascade protocol, so
                // keep a dedicated worker per shard: with fewer workers the
                // owners resolve chains in-order through help-while-waiting
                // and the promotion path under test never gets exercised.
                worker_threads: shards,
                ..RuntimeOptions::default()
            },
        )
        .expect("valid constraint"),
    )
}

/// Runs one full configuration on all three surfaces.  One client per
/// shard, identical schedules on every surface.  Local pairs are
/// conflict-free and always commit; an audit is denied iff it lands while
/// another client is mid-pair ("mid-case anywhere vetoes the next audit"),
/// which depends on the interleaving — so committed counts may differ by a
/// few audits between surfaces while the bulk of the work is identical.
pub fn cross_chain_bench(
    shards: usize,
    depth: usize,
    overlap_percent: u32,
    bursts: usize,
    window: usize,
) -> CrossReport {
    let threads = shards;
    let expr = overlap_constraint(shards, overlap_percent);
    let blocking_manager = Arc::new(
        InteractionManager::with_protocol(&expr, ProtocolVariant::Combined)
            .expect("valid constraint"),
    );
    let blocking = run_chain_blocking(blocking_manager, threads, bursts, depth, overlap_percent);

    let on = chain_runtime(shards, overlap_percent, true);
    let cascade_on =
        run_chain_runtime(Arc::clone(&on), threads, bursts, depth, overlap_percent, window);
    let cascade_stats = on.cascade_stats();
    drop(on);

    let off = chain_runtime(shards, overlap_percent, false);
    let cascade_off = run_chain_runtime(off, threads, bursts, depth, overlap_percent, window);

    CrossReport { depth, overlap_percent, shards, blocking, cascade_on, cascade_off, cascade_stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_mixes_locals_and_audit_bursts() {
        let schedule = chain_schedule(0, 0, 2, 4, 25);
        let audit = ix_wfms::coupled_audit();
        let audits = schedule.iter().filter(|a| **a == audit).count();
        assert_eq!(audits, 8, "two bursts of depth four");
        // The burst is consecutive: the last four of each half are audits.
        let half = schedule.len() / 2;
        assert!(schedule[half - 4..half].iter().all(|a| *a == audit));
    }

    #[test]
    fn all_three_surfaces_commit_the_conflict_free_work() {
        let report = cross_chain_bench(2, 4, 50, 3, 16);
        // 2 clients x 3 bursts x (2 pairs x 2 locals + 4 audits).  Locals
        // always commit; audits are denied iff they race another client's
        // open pair, so the committed counts sit between the local floor
        // and the full schedule on every surface.
        let locals = 2 * 3 * 4;
        let total = locals + 2 * 3 * 4;
        for (name, surface) in [
            ("blocking", &report.blocking),
            ("cascade-on", &report.cascade_on),
            ("cascade-off", &report.cascade_off),
        ] {
            let committed = surface.contention.committed;
            assert!(
                (locals as u64..=total as u64).contains(&committed),
                "{name} committed {committed}, expected within [{locals}, {total}]"
            );
            assert_eq!(surface.latencies_nanos.len(), total, "{name} submissions");
        }
    }

    #[test]
    fn cascade_deposits_and_promotes_conditional_votes() {
        let report = cross_chain_bench(2, 8, 50, 4, 32);
        assert!(
            report.cascade_stats.conditional_votes > 0,
            "deep audit bursts must produce conditional votes: {:?}",
            report.cascade_stats
        );
        assert!(
            report.cascade_stats.promoted_votes > 0,
            "all-commit chains must promote their tagged votes: {:?}",
            report.cascade_stats
        );
    }
}

//! Multiple interaction managers.
//!
//! To avoid the single interaction manager becoming a bottleneck, Sec. 7
//! mentions generalizing the coordination protocols "to application scenarios
//! involving multiple interaction managers".  [`ManagerFederation`] realizes
//! the natural partitioning: every manager enforces one interaction
//! expression, an action is routed to exactly the managers whose alphabet
//! covers it, and the action is permitted iff *all* of them permit it — the
//! same open-world rule the coupling operator applies within one expression,
//! lifted to the deployment level.

use crate::error::{ManagerError, ManagerResult};
use crate::manager::{InteractionManager, ProtocolVariant};
use crate::subscription::{ClientId, Notification};
use ix_core::{Action, Alphabet, Expr};
use std::sync::Arc;

/// A federation of interaction managers, each responsible for one
/// interaction expression.
///
/// Members are held through shared handles (`Arc<InteractionManager>`), and
/// every query/execution entry point takes `&self` — a federation is usable
/// from multiple threads exactly like a single manager: wrap it in an `Arc`
/// and clone the handle.  Cloning a federation shares its members (the
/// member managers are the live schedulers, not snapshots).
#[derive(Clone, Debug)]
pub struct ManagerFederation {
    members: Vec<FederationMember>,
}

#[derive(Clone, Debug)]
struct FederationMember {
    name: String,
    alphabet: Alphabet,
    manager: Arc<InteractionManager>,
}

impl ManagerFederation {
    /// Creates an empty federation.
    pub fn new() -> ManagerFederation {
        ManagerFederation { members: Vec::new() }
    }

    /// Adds a manager enforcing `expr` under the given name.
    pub fn add(&mut self, name: &str, expr: &Expr) -> ManagerResult<()> {
        self.add_with_protocol(name, expr, ProtocolVariant::Combined)
    }

    /// Adds a manager with an explicit protocol variant.
    pub fn add_with_protocol(
        &mut self,
        name: &str,
        expr: &Expr,
        variant: ProtocolVariant,
    ) -> ManagerResult<()> {
        let manager = Arc::new(InteractionManager::with_protocol(expr, variant)?);
        self.members.push(FederationMember {
            name: name.to_string(),
            alphabet: expr.alphabet(),
            manager,
        });
        Ok(())
    }

    /// The shared handle of a member manager, by name.
    pub fn member(&self, name: &str) -> Option<Arc<InteractionManager>> {
        self.members.iter().find(|m| m.name == name).map(|m| Arc::clone(&m.manager))
    }

    /// Number of member managers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the federation has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Names of the managers responsible for an action (those whose alphabet
    /// covers it).
    pub fn responsible(&self, action: &Action) -> Vec<&str> {
        self.members.iter().filter(|m| m.alphabet.covers(action)).map(|m| m.name.as_str()).collect()
    }

    /// True if every responsible manager currently permits the action.
    /// Actions no manager knows about are unconstrained (open world).
    pub fn is_permitted(&self, action: &Action) -> bool {
        self.members
            .iter()
            .filter(|m| m.alphabet.covers(action))
            .all(|m| m.manager.is_permitted(action))
    }

    /// Asks every responsible manager and commits the action on all of them
    /// if all agree; otherwise nothing is committed (all-or-nothing).
    /// Returns `None` if some manager denied, otherwise the notifications of
    /// all managers.
    pub fn try_execute(
        &self,
        client: ClientId,
        action: &Action,
    ) -> ManagerResult<Option<Vec<Notification>>> {
        if !action.is_concrete() {
            return Err(ManagerError::NonConcreteAction { action: action.to_string() });
        }
        if !self.is_permitted(action) {
            return Ok(None);
        }
        let mut notifications = Vec::new();
        for member in &self.members {
            if member.alphabet.covers(action) {
                match member.manager.try_execute(client, action)? {
                    Some(mut n) => notifications.append(&mut n),
                    None => {
                        // A concurrent client changed some member's state
                        // between the permission check and this commit; the
                        // already-committed members keep their transitions
                        // (the federation's members are independent
                        // constraints, not a distributed transaction), and
                        // the caller observes a rejection.
                        return Err(ManagerError::RejectedConfirmation {
                            action: action.to_string(),
                        });
                    }
                }
            }
        }
        Ok(Some(notifications))
    }

    /// Subscribes a client to an action at every responsible manager and
    /// returns whether the action is currently permitted overall.
    pub fn subscribe(&self, client: ClientId, action: &Action) -> bool {
        let mut permitted = true;
        for member in &self.members {
            if member.alphabet.covers(action) {
                permitted &= member.manager.subscribe(client, action);
            }
        }
        permitted
    }

    /// Total number of confirmed actions across all managers.
    pub fn total_confirmations(&self) -> u64 {
        self.members.iter().map(|m| m.manager.stats().confirmations).sum()
    }
}

impl Default for ManagerFederation {
    fn default() -> Self {
        ManagerFederation::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_core::{parse, Value};

    fn call(p: i64, x: &str) -> Action {
        Action::concrete("call", [Value::int(p), Value::sym(x)])
    }

    fn perform(p: i64, x: &str) -> Action {
        Action::concrete("perform", [Value::int(p), Value::sym(x)])
    }

    fn prepare(p: i64, x: &str) -> Action {
        Action::concrete("prepare", [Value::int(p), Value::sym(x)])
    }

    fn federation() -> ManagerFederation {
        let mut fed = ManagerFederation::new();
        // One manager per independently developed constraint — the
        // deployment-level analogue of the Fig. 7 coupling.
        fed.add("patients", &parse("all p { (some x { call(p, x) - perform(p, x) })* }").unwrap())
            .unwrap();
        fed.add(
            "capacity",
            &parse("all x { mult 2 { (some p { call(p, x) - perform(p, x) })* } }").unwrap(),
        )
        .unwrap();
        fed
    }

    #[test]
    fn actions_are_routed_to_responsible_managers() {
        let fed = federation();
        assert_eq!(fed.len(), 2);
        assert_eq!(fed.responsible(&call(1, "sono")), vec!["patients", "capacity"]);
        // prepare is known to neither manager: unconstrained.
        assert!(fed.responsible(&prepare(1, "sono")).is_empty());
        assert!(fed.is_permitted(&prepare(1, "sono")));
    }

    #[test]
    fn execution_requires_agreement_of_all_responsible_managers() {
        let fed = federation();
        // Fill the capacity of department sono with two different patients.
        assert!(fed.try_execute(1, &call(1, "sono")).unwrap().is_some());
        assert!(fed.try_execute(1, &call(2, "sono")).unwrap().is_some());
        // Patient 3 is fine for the patient manager but the capacity manager
        // says no.
        assert_eq!(fed.try_execute(1, &call(3, "sono")).unwrap(), None);
        // Patient 1 in another department is fine for capacity but not for
        // the patient manager.
        assert_eq!(fed.try_execute(1, &call(1, "endo")).unwrap(), None);
        assert_eq!(fed.total_confirmations(), 4, "two actions × two managers");
        // Completing one examination frees both constraints.
        assert!(fed.try_execute(1, &perform(1, "sono")).unwrap().is_some());
        assert!(fed.try_execute(1, &call(3, "sono")).unwrap().is_some());
    }

    #[test]
    fn federation_subscriptions_aggregate_status() {
        let fed = federation();
        assert!(fed.subscribe(9, &call(1, "sono")));
        let notes = fed.try_execute(1, &call(1, "sono")).unwrap().unwrap();
        // Both managers notify the subscriber that the action is no longer
        // permitted (it is mid-examination / occupies a slot).
        assert!(notes.iter().any(|n| n.client == 9 && !n.permitted));
    }

    #[test]
    fn shared_federation_serves_concurrent_clients() {
        // The &self surface: one federation behind an Arc, many threads.
        let fed = Arc::new(federation());
        let mut handles = Vec::new();
        for t in 0..4i64 {
            let fed = Arc::clone(&fed);
            handles.push(std::thread::spawn(move || {
                // Each thread drives its own patient through one
                // examination; the capacity-2 constraint throttles but the
                // patient constraint never blocks distinct patients.
                let dept = if t % 2 == 0 { "sono" } else { "endo" };
                let mut committed = 0u64;
                for _ in 0..50 {
                    if fed.try_execute(t as u64, &call(t, dept)).unwrap_or(None).is_some() {
                        committed += 1;
                        assert!(fed
                            .try_execute(t as u64, &perform(t, dept))
                            .unwrap_or(None)
                            .is_some());
                        break;
                    }
                    std::thread::yield_now();
                }
                committed
            }));
        }
        let committed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(committed, 4, "every client eventually got its call through");
        assert_eq!(fed.total_confirmations(), 16, "4 clients x call+perform x 2 managers");
    }

    #[test]
    fn member_handles_are_shared() {
        let fed = federation();
        let patients = fed.member("patients").expect("member exists");
        assert!(fed.member("nonexistent").is_none());
        assert!(fed.try_execute(1, &call(1, "sono")).unwrap().is_some());
        // The handle observes the federation's commits: same live manager.
        assert_eq!(patients.stats().confirmations, 1);
    }

    #[test]
    fn empty_federation_permits_everything() {
        let fed = ManagerFederation::default();
        assert!(fed.is_empty());
        assert!(fed.is_permitted(&call(1, "sono")));
    }
}

//! Criterion benches for the sharded kernel: monolithic vs. sharded manager
//! under the contended multi-client workload, and the single-threaded
//! engine-level comparison (state-size effect without lock contention).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ix_bench::*;
use ix_manager::{InteractionManager, ProtocolVariant};
use ix_state::{Engine, ShardedEngine};
use std::sync::Arc;
use std::time::Duration;

fn contended_manager_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("contended_manager_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for components in [2usize, 4, 8] {
        let expr = disjoint_components_constraint(components);
        group.bench_with_input(BenchmarkId::new("monolithic", components), &expr, |b, expr| {
            b.iter(|| {
                let manager = Arc::new(
                    InteractionManager::monolithic(expr, ProtocolVariant::Combined).unwrap(),
                );
                run_contended(manager, components, components, 25, 1).committed
            })
        });
        group.bench_with_input(BenchmarkId::new("sharded", components), &expr, |b, expr| {
            b.iter(|| {
                let manager = Arc::new(
                    InteractionManager::with_protocol(expr, ProtocolVariant::Combined).unwrap(),
                );
                run_contended(manager, components, components, 25, 1).committed
            })
        });
        group.bench_with_input(
            BenchmarkId::new("sharded_batched", components),
            &expr,
            |b, expr| {
                b.iter(|| {
                    let manager = Arc::new(
                        InteractionManager::with_protocol(expr, ProtocolVariant::Combined).unwrap(),
                    );
                    run_contended(manager, components, components, 25, 16).committed
                })
            },
        );
    }
    group.finish();
}

fn engine_dispatch_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_dispatch_overhead");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for components in [2usize, 4, 8] {
        let expr = disjoint_components_constraint(components);
        let mut word = Vec::new();
        for p in 0..50i64 {
            for k in 0..components {
                word.push(component_call(k, p));
                word.push(component_perform(k, p));
            }
        }
        group.bench_with_input(
            BenchmarkId::new("monolithic_engine", components),
            &word,
            |b, word| {
                b.iter(|| {
                    let mut engine = Engine::new(&expr).unwrap();
                    engine.feed(word)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("sharded_engine", components), &word, |b, word| {
            b.iter(|| {
                let mut engine = ShardedEngine::new(&expr).unwrap();
                engine.feed(word)
            })
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    contended_manager_throughput(c);
    engine_dispatch_overhead(c);
}

criterion_group!(sharding, benches);
criterion_main!(sharding);

//! The sharded execution kernel: per-component sub-engines with multi-owner
//! action routing.
//!
//! `ix_core::Partition` decomposes an expression built with ⊗ (and with ‖
//! over disjoint alphabets) into fine-grained components — one per operand of
//! the flattened chain — whose alphabets *may overlap*.  The transition
//! function routes every action to exactly the operands whose alphabet
//! covers it (see the `Sync` case of [`crate::trans::step`]), and the
//! validity/finality predicates distribute as conjunctions over the
//! operands.  Hence the monolithic state is exactly the product of the
//! component states, and an action's acceptance depends on the conjunction
//! of the *owning* components' votes:
//!
//! * a **single-owner** action is decided and committed on one component;
//! * a **multi-owner** action (e.g. a global `audit` step coupled across
//!   otherwise-independent workflows) is executed as an atomic two-phase
//!   step: every owner [`Engine::prepare`]s the tentative successor, and the
//!   successors are installed only if every owner voted yes — otherwise all
//!   of them are dropped (abort) and no state changes;
//! * an action owned by **no** component is outside α(x) and is rejected,
//!   exactly as the monolithic engine rejects it.
//!
//! [`ShardedEngine`] runs one [`Engine`] per component and dispatches
//! through a precomputed [`ShardRouter`].  Per-action work touches only the
//! owning components' states, and — more importantly for the interaction
//! manager — shards that share no action can transition concurrently.
//! Expressions that do not decompose fall back to a single shard holding the
//! whole expression, so the sharded engine is a drop-in replacement for
//! [`Engine`].

use crate::engine::{Engine, WordStatus};
use crate::error::{StateError, StateResult};
use crate::state::{Shared, State, StateMetrics};
use crate::trans::TransitionOptions;
use ix_core::{Action, Alphabet, Expr, Partition, PartitionDelta, Symbol};
use std::collections::BTreeMap;

/// Precomputed `Action → owning shards` dispatch table.
///
/// Candidate shards are indexed by the action's name and arity; the final
/// membership test uses alphabet coverage (which handles parameterized
/// abstract actions).  Shard alphabets may overlap, so an action can have
/// zero, one, or several owners; owner lists are sorted ascending — the
/// canonical locking order of the cross-shard two-phase commit.
///
/// Routers are *epoch-versioned*: [`ShardRouter::extended`] derives the
/// router of a grown partition (appended shards, widened owner sets) with
/// the epoch bumped, so a routing decision taken against an old router is
/// distinguishable from one taken against the current one — the hook the
/// manager runtime uses to retry stale routes instead of misdelivering
/// them.
#[derive(Clone, Debug)]
pub struct ShardRouter {
    by_signature: BTreeMap<(Symbol, usize), Vec<usize>>,
    alphabets: Vec<Alphabet>,
    epoch: u64,
}

/// Ownership classification of an action (see [`ShardRouter::classify`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Route {
    /// No shard's alphabet covers the action — it is outside α(x).
    None,
    /// Exactly one owning shard: the local fast path.
    Single(usize),
    /// Several owners, ascending (the 2PC lock / enqueue order).
    Multi(Vec<usize>),
}

impl ShardRouter {
    /// Builds a router over the given (possibly overlapping) shard
    /// alphabets, at epoch 0.
    pub fn new(alphabets: Vec<Alphabet>) -> ShardRouter {
        ShardRouter::with_epoch(alphabets, 0)
    }

    /// Builds a router at an explicit partition epoch.
    pub fn with_epoch(alphabets: Vec<Alphabet>, epoch: u64) -> ShardRouter {
        let mut by_signature: BTreeMap<(Symbol, usize), Vec<usize>> = BTreeMap::new();
        for (shard, alphabet) in alphabets.iter().enumerate() {
            for abstract_action in alphabet.actions() {
                let key = (abstract_action.name(), abstract_action.arity());
                let shards = by_signature.entry(key).or_default();
                if !shards.contains(&shard) {
                    shards.push(shard);
                }
            }
        }
        ShardRouter { by_signature, alphabets, epoch }
    }

    /// The partition epoch this router was built for.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Derives the router of the grown partition: the new shards' alphabets
    /// are appended (their ids continue the existing numbering) and the
    /// epoch is bumped.  Cost is one clone of the existing signature index
    /// plus insertion work proportional to the *new* alphabets — no
    /// existing alphabet is re-probed, and appended shard ids are larger
    /// than every existing id, so the per-signature candidate lists stay
    /// ascending by construction.
    pub fn extended(&self, new_alphabets: &[Alphabet]) -> ShardRouter {
        let mut by_signature = self.by_signature.clone();
        let mut alphabets = self.alphabets.clone();
        for alphabet in new_alphabets {
            let shard = alphabets.len();
            for abstract_action in alphabet.actions() {
                let key = (abstract_action.name(), abstract_action.arity());
                let shards = by_signature.entry(key).or_default();
                if !shards.contains(&shard) {
                    shards.push(shard);
                }
            }
            alphabets.push(alphabet.clone());
        }
        ShardRouter { by_signature, alphabets, epoch: self.epoch + 1 }
    }

    /// Number of shards the router dispatches over.
    pub fn shard_count(&self) -> usize {
        self.alphabets.len()
    }

    /// The shard alphabets, indexed by shard id.
    pub fn alphabets(&self) -> &[Alphabet] {
        &self.alphabets
    }

    /// The shards owning the action, in ascending order, without
    /// materializing them — the allocation-free fast path for probes that
    /// only need to walk or count the owners.  Empty iff no shard's alphabet
    /// covers the action (such actions are outside the expression's
    /// language).
    pub fn owners_iter<'a>(&'a self, action: &'a Action) -> impl Iterator<Item = usize> + 'a {
        // Candidate lists are built in ascending shard order.
        self.by_signature
            .get(&(action.name(), action.arity()))
            .into_iter()
            .flatten()
            .copied()
            .filter(move |&s| self.alphabets[s].covers(action))
    }

    /// The shards owning the action, collected sorted ascending — the
    /// canonical locking order of the cross-shard two-phase commit.
    pub fn owners(&self, action: &Action) -> Vec<usize> {
        self.owners_iter(action).collect()
    }

    /// Classifies the action's ownership without allocating on the
    /// single-owner fast path: submission front ends branch on the result
    /// and only cross-shard actions materialize their owner list.
    ///
    /// An action unknown to every shard resolves to [`Route::None`] from the
    /// signature index alone — no alphabet probe, no allocation — so callers
    /// can deny it without touching any queue or lock.
    pub fn classify(&self, action: &Action) -> Route {
        if !self.by_signature.contains_key(&(action.name(), action.arity())) {
            return Route::None;
        }
        let mut iter = self.owners_iter(action);
        let Some(first) = iter.next() else {
            return Route::None;
        };
        let Some(second) = iter.next() else {
            return Route::Single(first);
        };
        let mut owners = vec![first, second];
        owners.extend(iter);
        Route::Multi(owners)
    }

    /// The primary (lowest-id) owning shard of the action, or `None` if no
    /// shard covers it.  The primary owner holds the action's log entries in
    /// the sharded manager.
    pub fn route(&self, action: &Action) -> Option<usize> {
        self.owners_iter(action).next()
    }

    /// True if more than one shard owns the action (a cross-shard action
    /// requiring two-phase commit).
    pub fn is_shared(&self, action: &Action) -> bool {
        self.owners_iter(action).nth(1).is_some()
    }

    /// The alphabet of a shard.
    pub fn alphabet(&self, shard: usize) -> &Alphabet {
        &self.alphabets[shard]
    }
}

/// An incremental evaluator running the sync-components of one expression as
/// independent shards — the drop-in, parallelizable counterpart of
/// [`Engine`].  Cross-shard actions are executed atomically across all of
/// their owners via the prepare/commit/abort protocol of [`Engine`].
#[derive(Clone, Debug)]
pub struct ShardedEngine {
    expr: Expr,
    partition: Partition,
    options: TransitionOptions,
    shards: Vec<Engine>,
    router: ShardRouter,
    /// Whole-engine counters: one accepted/rejected tick per *action*, no
    /// matter how many shards it touched — the same accounting as the
    /// monolithic [`Engine`].
    accepted: u64,
    rejected: u64,
}

impl ShardedEngine {
    /// Creates a sharded engine with the default transition options.
    pub fn new(expr: &Expr) -> StateResult<ShardedEngine> {
        ShardedEngine::with_options(expr, TransitionOptions::default())
    }

    /// Creates a sharded engine with explicit transition options.
    pub fn with_options(expr: &Expr, options: TransitionOptions) -> StateResult<ShardedEngine> {
        let partition = Partition::of(expr);
        let mut shards = Vec::with_capacity(partition.len());
        let mut alphabets = Vec::with_capacity(partition.len());
        for component in partition.components() {
            shards.push(Engine::with_options(&component.expr, options)?);
            alphabets.push(component.alphabet.clone());
        }
        Ok(ShardedEngine {
            expr: expr.clone(),
            partition,
            options,
            shards,
            router: ShardRouter::new(alphabets),
            accepted: 0,
            rejected: 0,
        })
    }

    /// The (original, un-partitioned) expression this engine enforces,
    /// including every live extension applied so far.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The engine's current partition (epoch-versioned).
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Grows the engine live with an additional constraint whose alphabet is
    /// assumed fresh — equivalent to [`ShardedEngine::extend_with_history`]
    /// with an empty history.  Returns the applied [`PartitionDelta`].
    pub fn extend(&mut self, operand: &Expr) -> StateResult<PartitionDelta> {
        self.extend_with_history(operand, &[])
    }

    /// Grows the engine live: the operand's flattened components become new
    /// shards, the router is re-derived at the next epoch, and each new
    /// shard replays the projection of `history` (the committed action
    /// sequence so far) onto its alphabet so the grown engine is equivalent
    /// to a fresh engine built on `old ⊗ operand` and fed the same history.
    ///
    /// Existing shard states are **never** touched: a disjoint addition is a
    /// pure shard-append (the delta widens nothing and the replayed
    /// projection is empty), and a coupling addition only widens owner sets
    /// in the router.  Fails with [`StateError::IncompatibleHistory`] —
    /// leaving the engine unchanged — when the new constraint rejects the
    /// historical projection, because accepting it would break replayability
    /// of the committed word on the grown expression.
    pub fn extend_with_history(
        &mut self,
        operand: &Expr,
        history: &[Action],
    ) -> StateResult<PartitionDelta> {
        let (partition, delta) = self.partition.extend(std::slice::from_ref(operand));
        let mut new_shards = Vec::with_capacity(delta.added.len());
        let mut new_alphabets = Vec::with_capacity(delta.added.len());
        for &idx in &delta.added {
            let component = &partition.components()[idx];
            let mut engine = Engine::with_options(&component.expr, self.options)?;
            for action in history.iter().filter(|a| component.alphabet.covers(a)) {
                if !engine.try_execute(action) {
                    return Err(StateError::IncompatibleHistory { action: action.to_string() });
                }
            }
            new_alphabets.push(component.alphabet.clone());
            new_shards.push(engine);
        }
        self.router = self.router.extended(&new_alphabets);
        self.shards.append(&mut new_shards);
        self.expr = Expr::sync(self.expr.clone(), operand.clone());
        self.partition = partition;
        Ok(delta)
    }

    /// Number of independent shards (1 for expressions that do not
    /// decompose).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard sub-engines.
    pub fn shards(&self) -> &[Engine] {
        &self.shards
    }

    /// The dispatch table.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The primary owning shard of an action, if any.
    pub fn route(&self, action: &Action) -> Option<usize> {
        self.router.route(action)
    }

    /// All shards owning an action, sorted ascending.
    pub fn owners(&self, action: &Action) -> Vec<usize> {
        self.router.owners(action)
    }

    /// Aggregated metrics across all shards (sizes and alternative counts
    /// add up; the compound state is null iff some shard's state is null).
    pub fn metrics(&self) -> StateMetrics {
        let mut total = StateMetrics::default();
        for shard in &self.shards {
            total.accumulate(shard.metrics());
        }
        total
    }

    /// Metrics of one shard.
    pub fn shard_metrics(&self, shard: usize) -> StateMetrics {
        self.shards[shard].metrics()
    }

    /// True if the committed action sequence is a partial word: every
    /// component must hold a valid state (ψ distributes over ⊗).
    pub fn is_valid(&self) -> bool {
        self.shards.iter().all(Engine::is_valid)
    }

    /// True if the committed action sequence is a complete word: every
    /// component must hold a final state (ϕ distributes over ⊗).
    pub fn is_final(&self) -> bool {
        self.shards.iter().all(Engine::is_final)
    }

    /// The word status of the committed action sequence.
    pub fn status(&self) -> WordStatus {
        if self.is_final() {
            WordStatus::Complete
        } else if self.is_valid() {
            WordStatus::Partial
        } else {
            WordStatus::Illegal
        }
    }

    /// Total accepted (committed) actions — one per action, matching the
    /// monolithic engine even when an action touched several shards.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Total rejected attempts (including actions no shard owns).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Tentatively checks whether the action would currently be accepted,
    /// without changing any state: the conjunction of the owning shards'
    /// votes (false when no shard owns it).
    pub fn is_permitted(&self, action: &Action) -> bool {
        if !action.is_concrete() {
            return false;
        }
        let mut owned = false;
        for s in self.router.owners_iter(action) {
            owned = true;
            if !self.shards[s].is_permitted(action) {
                return false;
            }
        }
        owned
    }

    /// Filters the permitted actions out of a candidate list.
    pub fn permitted<'a>(&self, candidates: &'a [Action]) -> Vec<&'a Action> {
        candidates.iter().filter(|a| self.is_permitted(a)).collect()
    }

    /// The accept/reject step of the action problem: a two-phase step across
    /// the owning shards.  Every owner prepares the tentative successor; the
    /// successors are installed only if every owner voted yes, otherwise all
    /// of them are dropped and no shard changes state.
    pub fn try_execute(&mut self, action: &Action) -> bool {
        if !action.is_concrete() {
            self.rejected += 1;
            return false;
        }
        let mut prepared: Vec<(usize, Shared<State>)> = Vec::new();
        for s in self.router.owners_iter(action) {
            match self.shards[s].prepare(action) {
                Some(next) => prepared.push((s, next)),
                None => {
                    // Abort: drop the successors prepared so far.
                    self.rejected += 1;
                    return false;
                }
            }
        }
        if prepared.is_empty() {
            // No shard owns the action: outside α(x).
            self.rejected += 1;
            return false;
        }
        for (s, next) in prepared {
            self.shards[s].commit_prepared(next);
        }
        self.accepted += 1;
        true
    }

    /// Feeds a whole word, stopping at the first rejected action.  Returns
    /// the number of accepted actions.
    pub fn feed(&mut self, word: &[Action]) -> usize {
        let mut n = 0;
        for action in word {
            if self.try_execute(action) {
                n += 1;
            } else {
                break;
            }
        }
        n
    }

    /// Resets every shard to its initial state.
    pub fn reset(&mut self) {
        for shard in &mut self.shards {
            shard.reset();
        }
        self.accepted = 0;
        self.rejected = 0;
    }
}

/// Solves the word problem through the sharded kernel: every action is
/// executed as an atomic step across its owning shards, and the verdicts
/// combine (all complete ⇒ complete, all at least partial ⇒ partial,
/// otherwise illegal).  Equivalent to [`crate::engine::word_problem`];
/// exercised against it by the workspace property tests.
pub fn sharded_word_problem(expr: &Expr, word: &[Action]) -> StateResult<WordStatus> {
    let mut engine = ShardedEngine::new(expr)?;
    for action in word {
        // An action no component owns is outside α(x), and a rejected action
        // means the prefix consumed so far is not a partial word; Ψ is
        // prefix-closed, hence no continuation can rescue the word
        // (word_problem reaches the same verdict by feeding on and ending in
        // an invalid state).  try_execute covers both cases.
        if !engine.try_execute(action) {
            return Ok(WordStatus::Illegal);
        }
    }
    Ok(engine.status())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::word_problem;
    use ix_core::parse;

    fn a(name: &str) -> Action {
        Action::nullary(name)
    }

    #[test]
    fn disjoint_coupling_yields_one_shard_per_operand() {
        let e = parse("(a - b)* @ (c - d)* @ (e - f)*").unwrap();
        let engine = ShardedEngine::new(&e).unwrap();
        assert_eq!(engine.shard_count(), 3);
        assert_eq!(engine.route(&a("a")), engine.route(&a("b")));
        assert_ne!(engine.route(&a("a")), engine.route(&a("c")));
        assert_eq!(engine.route(&a("z")), None);
        assert!(engine.owners(&a("z")).is_empty());
    }

    #[test]
    fn overlapping_coupling_shards_with_multi_owner_actions() {
        // Four groups coupled through one global `audit` barrier: the old
        // partition collapsed this to one shard; now it stays at four.
        let e = parse(
            "((a1 - b1)* - audit)* @ ((a2 - b2)* - audit)* \
             @ ((a3 - b3)* - audit)* @ ((a4 - b4)* - audit)*",
        )
        .unwrap();
        let mut engine = ShardedEngine::new(&e).unwrap();
        assert_eq!(engine.shard_count(), 4);
        assert_eq!(engine.owners(&a("audit")), vec![0, 1, 2, 3]);
        assert!(engine.router().is_shared(&a("audit")));
        assert!(!engine.router().is_shared(&a("a1")));
        // All four groups are at a round boundary: audit commits everywhere.
        assert!(engine.try_execute(&a("audit")));
        // Start a case in group 2: the next audit must wait for b2.
        assert!(engine.try_execute(&a("a2")));
        assert!(!engine.is_permitted(&a("audit")));
        assert!(!engine.try_execute(&a("audit")), "one owner votes no: atomic abort");
        assert!(engine.try_execute(&a("b2")));
        assert!(engine.try_execute(&a("audit")));
        assert_eq!(engine.accepted(), 4);
        assert_eq!(engine.rejected(), 1);
    }

    #[test]
    fn aborted_multi_owner_step_changes_no_shard_state() {
        let e = parse("((x - y)* - chk)* @ ((u - v)* - chk)*").unwrap();
        let mut engine = ShardedEngine::new(&e).unwrap();
        assert!(engine.try_execute(&a("x")));
        // chk is blocked by shard 0 (mid-case) but permitted by shard 1; the
        // abort must leave shard 1 untouched.
        let before: Vec<_> = (0..2).map(|s| engine.shard_metrics(s).size).collect();
        assert!(!engine.try_execute(&a("chk")));
        let after: Vec<_> = (0..2).map(|s| engine.shard_metrics(s).size).collect();
        assert_eq!(before, after);
        // Equivalence with the monolithic engine on the same schedule.
        let mut mono = Engine::new(&e).unwrap();
        for action in [a("x"), a("chk")] {
            mono.try_execute(&action);
        }
        assert_eq!(engine.is_valid(), mono.is_valid());
        assert_eq!(engine.is_final(), mono.is_final());
    }

    #[test]
    fn monolithic_fallback_for_undecomposable_expressions() {
        let e = parse("(a - b)* & (a* - b*)").unwrap();
        let engine = ShardedEngine::new(&e).unwrap();
        assert_eq!(engine.shard_count(), 1);
        let mut engine = engine;
        assert!(engine.try_execute(&a("a")));
        assert!(!engine.try_execute(&a("c")));
    }

    #[test]
    fn sharded_execution_matches_monolithic_acceptance() {
        let e = parse("(a - b)* @ (c - d)*").unwrap();
        let mut sharded = ShardedEngine::new(&e).unwrap();
        let mut mono = Engine::new(&e).unwrap();
        for action in [a("a"), a("c"), a("b"), a("b"), a("d"), a("x")] {
            assert_eq!(
                sharded.try_execute(&action),
                mono.try_execute(&action),
                "disagreement on {action}"
            );
        }
        assert_eq!(sharded.is_final(), mono.is_final());
        assert_eq!(sharded.is_valid(), mono.is_valid());
        assert_eq!(sharded.accepted(), mono.accepted());
        assert_eq!(sharded.rejected(), mono.rejected());
    }

    #[test]
    fn sharded_counters_match_monolithic_on_overlapping_expressions() {
        let e = parse("(a - b)* @ (b - c)*").unwrap();
        let mut sharded = ShardedEngine::new(&e).unwrap();
        let mut mono = Engine::new(&e).unwrap();
        assert_eq!(sharded.shard_count(), 2);
        for action in [a("a"), a("b"), a("b"), a("c"), a("z")] {
            assert_eq!(
                sharded.try_execute(&action),
                mono.try_execute(&action),
                "disagreement on {action}"
            );
        }
        // One tick per action even though `b` committed on two shards.
        assert_eq!(sharded.accepted(), mono.accepted());
        assert_eq!(sharded.rejected(), mono.rejected());
    }

    #[test]
    fn sharded_word_problem_agrees_with_monolithic() {
        let e = parse("(a - b)* @ (c - d)* | (e - f)*").unwrap();
        let words: Vec<Vec<Action>> = vec![
            vec![],
            vec![a("a")],
            vec![a("a"), a("c"), a("b"), a("d")],
            vec![a("c"), a("a"), a("e"), a("b"), a("d"), a("f")],
            vec![a("b")],
            vec![a("a"), a("z")],
        ];
        for w in &words {
            assert_eq!(
                sharded_word_problem(&e, w).unwrap(),
                word_problem(&e, w).unwrap(),
                "disagreement on {w:?}"
            );
        }
    }

    #[test]
    fn sharded_word_problem_agrees_on_cross_shard_actions() {
        let e = parse("((a - b)* - audit)* @ ((c - d)* - audit)*").unwrap();
        let words: Vec<Vec<Action>> = vec![
            vec![a("audit")],
            vec![a("a"), a("audit")],
            vec![a("a"), a("b"), a("audit")],
            vec![a("a"), a("b"), a("c"), a("d"), a("audit"), a("a")],
            vec![a("audit"), a("audit")],
            vec![a("z")],
        ];
        for w in &words {
            assert_eq!(
                sharded_word_problem(&e, w).unwrap(),
                word_problem(&e, w).unwrap(),
                "disagreement on {w:?}"
            );
        }
    }

    #[test]
    fn quantified_components_shard_when_action_names_differ() {
        let e =
            parse("(some p { call(p) - perform(p) })* @ (some q { ship(q) - bill(q) })*").unwrap();
        let mut engine = ShardedEngine::new(&e).unwrap();
        assert_eq!(engine.shard_count(), 2);
        let call = Action::concrete("call", [ix_core::Value::int(1)]);
        let ship = Action::concrete("ship", [ix_core::Value::int(7)]);
        assert!(engine.try_execute(&call));
        assert!(engine.try_execute(&ship));
        assert_ne!(engine.route(&call), engine.route(&ship));
    }

    #[test]
    fn per_shard_metrics_aggregate() {
        let e = parse("(a - b)# @ (c - d)#").unwrap();
        let mut engine = ShardedEngine::new(&e).unwrap();
        engine.try_execute(&a("a"));
        engine.try_execute(&a("a"));
        let total = engine.metrics();
        let by_shard: usize = (0..engine.shard_count()).map(|s| engine.shard_metrics(s).size).sum();
        assert_eq!(total.size, by_shard);
        assert!(!total.is_null);
    }

    #[test]
    fn reset_and_feed_work_across_shards() {
        let e = parse("(a - b)* @ (c - d)*").unwrap();
        let mut engine = ShardedEngine::new(&e).unwrap();
        assert_eq!(engine.feed(&[a("a"), a("c"), a("z"), a("b")]), 2);
        engine.reset();
        assert_eq!(engine.accepted(), 0);
        assert_eq!(engine.rejected(), 0);
        assert!(engine.is_final(), "both iterations accept ε after reset");
    }

    #[test]
    fn router_extension_bumps_the_epoch_and_appends_shards() {
        let e = parse("(a - b)* @ (c - d)*").unwrap();
        let engine = ShardedEngine::new(&e).unwrap();
        let router = engine.router().clone();
        assert_eq!(router.epoch(), 0);
        let extended = router.extended(&[parse("(a* - audit)*").unwrap().alphabet()]);
        assert_eq!(extended.epoch(), 1);
        assert_eq!(extended.shard_count(), 3);
        assert_eq!(extended.owners(&a("a")), vec![0, 2], "owner set widened, ascending");
        assert_eq!(extended.owners(&a("audit")), vec![2]);
        assert_eq!(extended.owners(&a("c")), vec![1], "unrelated routes untouched");
        // The old router still answers with its own epoch's view.
        assert_eq!(router.owners(&a("a")), vec![0]);
        assert_eq!(router.epoch(), 0);
    }

    #[test]
    fn classify_denies_unknown_signatures_without_probing() {
        let e = parse("(a - b)* @ (c - d)*").unwrap();
        let engine = ShardedEngine::new(&e).unwrap();
        assert_eq!(engine.router().classify(&a("zzz")), Route::None);
        // Known name, wrong arity: also a signature-level miss.
        let wrong_arity = Action::concrete("a", [ix_core::Value::int(1)]);
        assert_eq!(engine.router().classify(&wrong_arity), Route::None);
        assert!(engine.owners(&a("zzz")).is_empty());
        assert!(!engine.router().is_shared(&a("zzz")));
    }

    #[test]
    fn disjoint_extension_is_a_pure_append() {
        let e = parse("(a - b)* @ (c - d)*").unwrap();
        let mut engine = ShardedEngine::new(&e).unwrap();
        assert!(engine.try_execute(&a("a")));
        let delta = engine.extend(&parse("(e - f)*").unwrap()).unwrap();
        assert!(delta.is_pure_append());
        assert_eq!(engine.shard_count(), 3);
        assert_eq!(engine.router().epoch(), 1);
        assert!(engine.try_execute(&a("e")));
        assert!(engine.try_execute(&a("b")));
        // Equivalent to a fresh engine on the joined expression fed the same
        // history.
        let joined = parse("((a - b)* @ (c - d)*) @ (e - f)*").unwrap();
        let mut fresh = ShardedEngine::new(&joined).unwrap();
        for action in [a("a"), a("e"), a("b")] {
            assert!(fresh.try_execute(&action));
        }
        assert_eq!(engine.is_final(), fresh.is_final());
        assert_eq!(engine.is_valid(), fresh.is_valid());
    }

    #[test]
    fn coupling_extension_replays_history_and_widens_routes() {
        let e = parse("(a - b)* @ (c - d)*").unwrap();
        let mut engine = ShardedEngine::new(&e).unwrap();
        let mut history = Vec::new();
        for action in [a("a"), a("b"), a("a"), a("b"), a("c")] {
            assert!(engine.try_execute(&action));
            history.push(action);
        }
        // Couple a new audit constraint onto `a`: rounds of a's, then audit.
        let coupling = parse("(a* - audit)*").unwrap();
        let delta = engine.extend_with_history(&coupling, &history).unwrap();
        assert!(!delta.is_pure_append());
        assert_eq!(engine.shard_count(), 3);
        assert_eq!(engine.owners(&a("a")), vec![0, 2]);
        // The new shard replayed the two a's; audit is now a cross-shard
        // action whose acceptance matches the fresh joined engine.
        let joined = Expr::sync(e, coupling);
        let mut fresh = ShardedEngine::new(&joined).unwrap();
        for action in &history {
            assert!(fresh.try_execute(action));
        }
        for action in [a("audit"), a("a"), a("audit"), a("b"), a("d")] {
            assert_eq!(
                engine.try_execute(&action),
                fresh.try_execute(&action),
                "disagreement on {action}"
            );
        }
        assert_eq!(engine.is_final(), fresh.is_final());
    }

    #[test]
    fn incompatible_history_rejects_the_extension_and_leaves_the_engine_unchanged() {
        let e = parse("(a - b)*").unwrap();
        let mut engine = ShardedEngine::new(&e).unwrap();
        let history = vec![a("a")];
        assert_eq!(engine.feed(&history), 1);
        // `b - a` demands the projection start with b: incompatible.
        let err = engine.extend_with_history(&parse("(b - a)#").unwrap(), &history);
        assert!(matches!(err, Err(crate::StateError::IncompatibleHistory { .. })));
        assert_eq!(engine.shard_count(), 1);
        assert_eq!(engine.router().epoch(), 0);
        assert!(engine.try_execute(&a("b")), "engine still serves after the rejected extension");
    }

    #[test]
    fn non_concrete_actions_are_rejected() {
        let e = parse("(a - b)* @ (c - d)*").unwrap();
        let mut engine = ShardedEngine::new(&e).unwrap();
        let abstract_action = Action::new("a", [ix_core::Term::Param(ix_core::Param::new("p"))]);
        assert!(!engine.is_permitted(&abstract_action));
        assert!(!engine.try_execute(&abstract_action));
        assert_eq!(engine.rejected(), 1);
    }

    #[test]
    fn unknown_actions_are_counted_like_the_monolithic_engine() {
        let e = parse("(a - b)* @ (c - d)*").unwrap();
        let mut sharded = ShardedEngine::new(&e).unwrap();
        let mut mono = Engine::new(&e).unwrap();
        assert_eq!(sharded.try_execute(&a("zzz")), mono.try_execute(&a("zzz")));
        assert_eq!(sharded.rejected(), mono.rejected());
        assert_eq!(sharded.is_permitted(&a("zzz")), mono.is_permitted(&a("zzz")));
    }
}

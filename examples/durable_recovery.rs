//! Durability: sharded checkpoints, the write-ahead log, and crash
//! recovery.
//!
//! A manager runtime journals every commit into a file-backed vault while
//! it serves traffic, cuts a sharded copy-on-write checkpoint mid-run
//! (truncating the covered log prefix), commits a little more, and then
//! "crashes".  A second runtime recovers from the vault — snapshots plus
//! the log tail — and carries on exactly where the first left off.
//!
//! Run with `cargo run --example durable_recovery [vault-dir]`.  The vault
//! directory is left on disk so it can be examined with
//! `ixctl snapshot inspect <vault-dir>` and `ixctl recover <vault-dir>`.

use ix_core::{parse, Action, Value};
use ix_manager::{Completion, FsyncPolicy, ManagerRuntime, ProtocolVariant, RuntimeOptions};

fn call(dept: char, p: i64) -> Action {
    Action::concrete(&format!("call_{dept}"), [Value::int(p)])
}

fn perform(dept: char, p: i64) -> Action {
    Action::concrete(&format!("perform_{dept}"), [Value::int(p)])
}

fn options() -> RuntimeOptions {
    RuntimeOptions {
        variant: ProtocolVariant::Combined,
        fsync: FsyncPolicy::Interval(64),
        ..RuntimeOptions::default()
    }
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("ix-durable-recovery-example"));
    std::fs::remove_dir_all(&dir).ok();
    let constraint = parse(
        "((some p { call_a(p) - perform_a(p) })* - audit)* \
         @ ((some p { call_b(p) - perform_b(p) })* - audit)*",
    )
    .unwrap();

    // First life: journal every commit into the vault.
    let runtime = ManagerRuntime::with_durability_path(&constraint, options(), &dir).unwrap();
    let session = runtime.session(1);
    for p in 0..32 {
        for action in [call('a', p), perform('a', p), call('b', p), perform('b', p)] {
            assert!(matches!(session.execute(&action).wait(), Completion::Executed { .. }));
        }
    }
    // The cross-shard audit barrier commits on every owner's stream.
    assert!(matches!(
        session.execute(&Action::nullary("audit")).wait(),
        Completion::Executed { .. }
    ));
    let report = runtime.checkpoint().unwrap();
    println!(
        "checkpoint: {} of {} shards captured, {} snapshot bytes — covered log prefix truncated",
        report.captured, report.shards, report.bytes
    );
    // Post-checkpoint traffic lives only in the log tail.
    for p in 32..40 {
        for action in [call('a', p), perform('a', p)] {
            assert!(matches!(session.execute(&action).wait(), Completion::Executed { .. }));
        }
    }
    let before = runtime.shutdown().unwrap();
    println!(
        "crash: {} committed actions, clock {}, stats {:?}",
        before.log.len(),
        before.clock,
        before.stats
    );

    // Second life: snapshots + log tail.
    let recovered = ManagerRuntime::recover_path(&dir, options()).unwrap();
    println!(
        "recovered: {} committed actions, clock {} — identical to the crashed runtime",
        recovered.log().len(),
        recovered.now()
    );
    assert_eq!(recovered.log(), before.log);
    assert_eq!(recovered.stats(), before.stats);

    // The recovered engines decide like the originals: the examination
    // pairs are balanced again, so the next audit barrier is permitted.
    let session = recovered.session(2);
    assert!(matches!(session.execute(&call('a', 100)).wait(), Completion::Executed { .. }));
    assert!(matches!(session.execute(&perform('a', 100)).wait(), Completion::Executed { .. }));
    assert!(matches!(
        session.execute(&Action::nullary("audit")).wait(),
        Completion::Executed { .. }
    ));
    let after = recovered.shutdown().unwrap();
    println!("second life committed {} more actions", after.log.len() - before.log.len());
    println!(
        "vault left at {} — try `ixctl snapshot inspect` / `ixctl recover` on it",
        dir.display()
    );
}

//! Finite groundings of the infinite value domain Ω.
//!
//! The formal semantics quantifies over an infinite set Ω of values.  For the
//! bounded reference algorithm a quantifier is grounded over a finite
//! [`Universe`]: the values that occur in the expression and in the words
//! under consideration, plus a number of *fresh* values that stand for "all
//! the other" elements of Ω.  One fresh value is sufficient whenever the
//! words under test do not mention it (instantiations with different unseen
//! values behave identically); more can be requested for experiments with
//! non-completely-quantified parallel quantifiers.

use ix_core::{Action, Expr, Value};
use std::collections::BTreeSet;

/// A finite grounding set for quantified parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Universe {
    values: Vec<Value>,
}

impl Universe {
    /// Creates a universe from explicit values (duplicates removed, order
    /// preserved).
    pub fn new(values: impl IntoIterator<Item = Value>) -> Universe {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for v in values {
            if seen.insert(v) {
                out.push(v);
            }
        }
        Universe { values: out }
    }

    /// A universe consisting of the values mentioned in the given expression
    /// and words.
    pub fn observed(expr: &Expr, words: &[&[Action]]) -> Universe {
        let mut vals: Vec<Value> = expr.mentioned_values().into_iter().collect();
        for w in words {
            for a in *w {
                for v in a.values() {
                    if !vals.contains(&v) {
                        vals.push(v);
                    }
                }
            }
        }
        Universe::new(vals)
    }

    /// Adds `n` fresh symbolic values that are guaranteed not to collide with
    /// application values (they are named `_fresh_0`, `_fresh_1`, ...).
    pub fn with_fresh(mut self, n: usize) -> Universe {
        for i in 0..n {
            let v = Value::sym(&format!("_fresh_{i}"));
            if !self.values.contains(&v) {
                self.values.push(v);
            }
        }
        self
    }

    /// The grounding values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of grounding values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All concrete instantiations of an abstract action, replacing every
    /// parameter position with every universe value (the concrete footprint
    /// of the action within this grounding).
    pub fn ground_action(&self, action: &Action) -> Vec<Action> {
        let mut results = vec![action.clone()];
        for p in action.params() {
            let mut next = Vec::new();
            for partial in &results {
                for v in &self.values {
                    next.push(partial.substitute(p, *v));
                }
            }
            results = next;
        }
        results.retain(Action::is_concrete);
        results.sort();
        results.dedup();
        results
    }

    /// All concrete instantiations of every action of an alphabet.
    pub fn ground_alphabet(&self, alphabet: &ix_core::Alphabet) -> Vec<Action> {
        let mut out: Vec<Action> = alphabet.actions().flat_map(|a| self.ground_action(a)).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The concrete footprint of an abstract action used as "self" for
    /// argument-free actions.
    pub fn contains(&self, v: &Value) -> bool {
        self.values.contains(v)
    }
}

impl FromIterator<Value> for Universe {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Universe {
        Universe::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_core::builder::{act, actp, pt, vt};
    use ix_core::{Param, Term};

    #[test]
    fn construction_deduplicates() {
        let u = Universe::new([Value::int(1), Value::int(1), Value::int(2)]);
        assert_eq!(u.len(), 2);
        assert!(u.contains(&Value::int(2)));
    }

    #[test]
    fn fresh_values_do_not_collide() {
        let u = Universe::new([Value::int(1)]).with_fresh(2);
        assert_eq!(u.len(), 3);
        assert!(u.contains(&Value::sym("_fresh_0")));
        assert!(u.contains(&Value::sym("_fresh_1")));
        // Adding fresh twice does not duplicate.
        let u2 = u.clone().with_fresh(2);
        assert_eq!(u2.len(), 3);
    }

    #[test]
    fn observed_collects_expression_and_word_values() {
        let e = act("call", [pt("p"), vt("sono")]);
        let w = vec![Action::concrete("call", [Value::int(7), Value::sym("sono")])];
        let u = Universe::observed(&e, &[&w]);
        assert!(u.contains(&Value::sym("sono")));
        assert!(u.contains(&Value::int(7)));
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn ground_action_enumerates_all_instantiations() {
        let u = Universe::new([Value::int(1), Value::int(2)]);
        let a = Action::new("call", [Term::Param(Param::new("p")), Term::Value(Value::sym("x"))]);
        let grounded = u.ground_action(&a);
        assert_eq!(grounded.len(), 2);
        assert!(grounded.iter().all(Action::is_concrete));
        // Two parameters: cartesian product.
        let b = Action::new("pair", [Term::Param(Param::new("p")), Term::Param(Param::new("q"))]);
        assert_eq!(u.ground_action(&b).len(), 4);
    }

    #[test]
    fn ground_action_of_concrete_action_is_itself() {
        let u = Universe::new([Value::int(1)]);
        let a = Action::concrete("done", [Value::int(9)]);
        assert_eq!(u.ground_action(&a), vec![a]);
    }

    #[test]
    fn ground_alphabet_covers_all_atoms() {
        let u = Universe::new([Value::int(1), Value::int(2)]);
        let e = ix_core::Expr::seq(actp("a", &["p"]), actp("b", &["p"]));
        let grounded = u.ground_alphabet(&e.alphabet());
        assert_eq!(grounded.len(), 4);
    }

    #[test]
    fn empty_universe_grounds_parameterized_actions_to_nothing() {
        let u = Universe::new([]);
        assert!(u.is_empty());
        let a = Action::new("a", [Term::Param(Param::new("p"))]);
        assert!(u.ground_action(&a).is_empty());
    }
}

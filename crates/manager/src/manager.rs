//! The interaction manager — the central scheduler of Sec. 7, sharded.
//!
//! The manager owns the interaction expression (usually obtained from an
//! interaction graph) and its operational state, and arbitrates the execution
//! of actions requested by interaction clients (workflow engines or worklist
//! handlers) through the *coordination protocol* of Fig. 10:
//!
//! 1. the client **asks** for permission to execute an action,
//! 2. the manager **replies** yes or no based on a tentative state
//!    transition,
//! 3. on yes, the client executes the action,
//! 4. the client **confirms** the execution,
//! 5. the manager performs the corresponding state transition.
//!
//! Between steps 2 and 5 the granted action is *reserved*: the simple
//! protocol keeps the reservation until the confirmation arrives, which is
//! exactly the vulnerability to client crashes the paper discusses; the
//! leased protocol variant bounds the reservation with a logical-time lease,
//! and the combined variant collapses ask + confirm into one round trip.
//! The subscription protocol keeps clients informed about permissibility
//! changes of the actions they subscribed to.
//!
//! ## Sharding
//!
//! The paper's design funnels every action through one critical region per
//! expression.  This implementation instead partitions the expression into
//! its alphabet-disjoint sync-components (`ix_core::Partition`) and keeps
//! one *shard* — engine, reservation table, subscription registry — per
//! component, each behind its own lock.  An action is routed to its owning
//! shard by a precomputed dispatch table (`ix_state::ShardRouter`), so
//! ask/confirm cycles touching different components never contend, and
//! [`InteractionManager::try_execute_batch`] commits a whole group of
//! same-shard actions under a single lock acquisition.  All entry points
//! take `&self`: clients share the manager through an `Arc` without an
//! external mutex.  Expressions that do not decompose run as a single
//! shard, which reproduces the paper's central scheduler exactly.

use crate::error::{ManagerError, ManagerResult};
use crate::subscription::{ClientId, Notification, SubscriptionRegistry};
use ix_core::{Action, Alphabet, Expr, Partition};
use ix_state::{Engine, ShardRouter, StateMetrics};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The coordination-protocol variant used by a manager (Sec. 7 mentions
/// "several alternative coordination protocols, possessing different
/// complexity and particular advantages and disadvantages").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolVariant {
    /// Ask / reply / confirm with an unbounded reservation: simple, but a
    /// crashed client leaves its shard's slot reserved forever.
    Simple,
    /// Ask / reply / confirm where every grant carries a lease measured in
    /// logical time units; expired reservations are rolled back.
    Leased {
        /// Number of logical time units a grant stays reserved.
        lease: u64,
    },
    /// Combined request: ask and confirm collapse into a single message (the
    /// client is trusted to execute the action after the reply).
    Combined,
}

/// A granted, not yet confirmed reservation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// Identifier returned to the client.
    pub id: u64,
    /// The reserved action.
    pub action: Action,
    /// The client holding the reservation.
    pub client: ClientId,
    /// Logical time at which the reservation was granted.
    pub granted_at: u64,
    /// Logical expiry time (`u64::MAX` for the simple protocol).
    pub expires_at: u64,
}

/// Statistics of a manager instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Number of ask requests processed.
    pub asks: u64,
    /// Number of grants (positive replies).
    pub grants: u64,
    /// Number of denials.
    pub denials: u64,
    /// Number of confirmed executions (state transitions performed).
    pub confirmations: u64,
    /// Number of reservations rolled back because their lease expired.
    pub expired_reservations: u64,
    /// Number of notifications sent to subscribers.
    pub notifications: u64,
}

/// The result of [`InteractionManager::try_execute_batch`].
#[derive(Clone, Debug, Default)]
pub struct BatchResult {
    /// Per-action outcome, aligned with the input slice: true if the action
    /// was granted and committed.
    pub accepted: Vec<bool>,
    /// Status-change notifications produced by the committed transitions.
    pub notifications: Vec<Notification>,
}

/// One shard: the engine, reservation table, subscription registry and log
/// segment of a single sync-component, guarded by one lock.
#[derive(Debug)]
struct Shard {
    engine: Engine,
    reservations: BTreeMap<u64, Reservation>,
    subscriptions: SubscriptionRegistry,
    /// This shard's confirmed actions, stamped with the manager-wide commit
    /// sequence number.  Keeping the log per shard keeps the commit hot path
    /// free of any cross-shard lock; [`InteractionManager::log`] merges the
    /// segments by sequence number on read.
    log: Vec<(u64, Action)>,
}

impl Shard {
    /// Permissibility check that also accounts for outstanding reservations:
    /// a granted-but-unconfirmed action must stay executable, so a new grant
    /// is only given if the component permits the new action *after* all
    /// reserved actions as well.  Reservations of other shards cannot
    /// conflict — their alphabets are disjoint — which is why this probe
    /// never needs to leave the shard.
    fn permitted_considering_reservations(&self, action: &Action) -> bool {
        if self.reservations.is_empty() {
            return self.engine.is_permitted(action);
        }
        // Simulate the reserved actions first (in grant order), then the
        // requested one.
        let mut probe = self.engine.clone();
        for r in self.reservations.values() {
            if !probe.try_execute(&r.action) {
                // The reservation itself is no longer executable (should not
                // happen unless a lease expired); ignore it for the probe.
                continue;
            }
        }
        probe.is_permitted(action)
    }
}

/// Lock-free running counters behind [`ManagerStats`].
#[derive(Debug, Default)]
struct SharedStats {
    asks: AtomicU64,
    grants: AtomicU64,
    denials: AtomicU64,
    confirmations: AtomicU64,
    expired_reservations: AtomicU64,
    notifications: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self) -> ManagerStats {
        ManagerStats {
            asks: self.asks.load(Ordering::Relaxed),
            grants: self.grants.load(Ordering::Relaxed),
            denials: self.denials.load(Ordering::Relaxed),
            confirmations: self.confirmations.load(Ordering::Relaxed),
            expired_reservations: self.expired_reservations.load(Ordering::Relaxed),
            notifications: self.notifications.load(Ordering::Relaxed),
        }
    }
}

/// The interaction manager.  All entry points take `&self`; share it through
/// an `Arc` to serve concurrent clients.
#[derive(Debug)]
pub struct InteractionManager {
    expr: Expr,
    alphabet: Alphabet,
    variant: ProtocolVariant,
    router: ShardRouter,
    shards: Vec<Mutex<Shard>>,
    /// Which shard holds which outstanding reservation (advisory index; the
    /// shard's own table is authoritative, see `confirm`).
    reservation_index: Mutex<HashMap<u64, usize>>,
    /// Subscriptions to actions no shard owns: such actions are never
    /// permitted and never change status, but the registrations are kept so
    /// that subscribe/unsubscribe stay symmetric.
    orphan_subscriptions: Mutex<SubscriptionRegistry>,
    /// Commit sequence numbers stamping the per-shard log segments.
    log_seq: AtomicU64,
    next_reservation: AtomicU64,
    clock: AtomicU64,
    stats: SharedStats,
}

impl InteractionManager {
    /// Creates a manager enforcing the given interaction expression with the
    /// simple protocol.
    pub fn new(expr: &Expr) -> ManagerResult<InteractionManager> {
        InteractionManager::with_protocol(expr, ProtocolVariant::Simple)
    }

    /// Creates a manager with an explicit protocol variant.  The expression
    /// is partitioned into its sync-components; each component becomes an
    /// independently locked shard.
    pub fn with_protocol(
        expr: &Expr,
        variant: ProtocolVariant,
    ) -> ManagerResult<InteractionManager> {
        InteractionManager::from_components(
            expr,
            variant,
            Partition::of(expr)
                .components()
                .iter()
                .map(|c| (c.expr.clone(), c.alphabet.clone()))
                .collect(),
        )
    }

    /// Creates a manager that keeps the whole expression in a single shard —
    /// the paper's central scheduler with one critical region.  Exists for
    /// the sharding benchmarks; [`InteractionManager::with_protocol`] is
    /// strictly better whenever the expression decomposes.
    pub fn monolithic(expr: &Expr, variant: ProtocolVariant) -> ManagerResult<InteractionManager> {
        InteractionManager::from_components(expr, variant, vec![(expr.clone(), expr.alphabet())])
    }

    fn from_components(
        expr: &Expr,
        variant: ProtocolVariant,
        components: Vec<(Expr, Alphabet)>,
    ) -> ManagerResult<InteractionManager> {
        let mut shards = Vec::with_capacity(components.len());
        let mut alphabets = Vec::with_capacity(components.len());
        for (component, alphabet) in components {
            let engine = Engine::new(&component).map_err(ManagerError::State)?;
            shards.push(Mutex::new(Shard {
                engine,
                reservations: BTreeMap::new(),
                subscriptions: SubscriptionRegistry::new(),
                log: Vec::new(),
            }));
            alphabets.push(alphabet);
        }
        Ok(InteractionManager {
            expr: expr.clone(),
            alphabet: expr.alphabet(),
            variant,
            router: ShardRouter::new(alphabets),
            shards,
            reservation_index: Mutex::new(HashMap::new()),
            orphan_subscriptions: Mutex::new(SubscriptionRegistry::new()),
            log_seq: AtomicU64::new(0),
            next_reservation: AtomicU64::new(1),
            clock: AtomicU64::new(0),
            stats: SharedStats::default(),
        })
    }

    /// The protocol variant in use.
    pub fn protocol(&self) -> ProtocolVariant {
        self.variant
    }

    /// The expression the manager enforces.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Number of independently locked shards (1 when the expression does not
    /// decompose).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard an action is routed to, if any.
    pub fn shard_of(&self, action: &Action) -> Option<usize> {
        self.router.route(action)
    }

    /// Statistics so far.
    pub fn stats(&self) -> ManagerStats {
        self.stats.snapshot()
    }

    /// Metrics of the current interaction state, aggregated over the shards.
    pub fn state_metrics(&self) -> StateMetrics {
        let mut total = StateMetrics::default();
        for shard in &self.shards {
            total.accumulate(lock(shard).engine.metrics());
        }
        total
    }

    /// The log of confirmed actions (the manager's recovery source), in
    /// commit order: the per-shard segments merged by sequence number.
    pub fn log(&self) -> Vec<Action> {
        let mut entries: Vec<(u64, Action)> = Vec::new();
        for shard in &self.shards {
            entries.extend(lock(shard).log.iter().cloned());
        }
        entries.sort_by_key(|(seq, _)| *seq);
        entries.into_iter().map(|(_, action)| action).collect()
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Advances logical time, expiring leased reservations that ran out.
    /// Returns the rolled-back reservations.
    pub fn advance_time(&self, delta: u64) -> Vec<Reservation> {
        let now = self.clock.fetch_add(delta, Ordering::Relaxed) + delta;
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut guard = lock(shard);
            let expired: Vec<u64> = guard
                .reservations
                .iter()
                .filter(|(_, r)| r.expires_at <= now)
                .map(|(id, _)| *id)
                .collect();
            for id in expired {
                if let Some(r) = guard.reservations.remove(&id) {
                    self.stats.expired_reservations.fetch_add(1, Ordering::Relaxed);
                    lock(&self.reservation_index).remove(&id);
                    out.push(r);
                }
            }
        }
        out
    }

    /// Step 1/2 of the coordination protocol: a client asks for permission to
    /// execute an action; the manager replies with a reservation id on grant.
    ///
    /// An action is granted iff the current interaction state permits it and
    /// no conflicting reservation is outstanding (a reservation conflicts if
    /// executing both reserved actions in either order is not permitted).
    /// Only the owning shard is locked.
    ///
    /// Under the `Combined` variant the grant commits immediately and the
    /// reply carries no reservation to confirm; subscription notifications
    /// produced by that commit are not returned through this entry point —
    /// use [`InteractionManager::try_execute`] when they matter.
    pub fn ask(&self, client: ClientId, action: &Action) -> ManagerResult<Option<u64>> {
        self.stats.asks.fetch_add(1, Ordering::Relaxed);
        if !action.is_concrete() {
            return Err(ManagerError::NonConcreteAction { action: action.to_string() });
        }
        let Some(shard_id) = self.router.route(action) else {
            self.stats.denials.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        };
        let mut shard = lock(&self.shards[shard_id]);
        if !shard.permitted_considering_reservations(action) {
            self.stats.denials.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }
        if matches!(self.variant, ProtocolVariant::Combined) {
            // The combined protocol commits immediately.  The probe can
            // pass while the immediate commit is impossible (the action
            // only becomes executable after outstanding reservations
            // confirm); that is a denial, not a protocol error.
            return match self.commit(&mut shard, action) {
                Ok(_) => {
                    self.stats.grants.fetch_add(1, Ordering::Relaxed);
                    Ok(Some(0))
                }
                Err(_) => {
                    self.stats.denials.fetch_add(1, Ordering::Relaxed);
                    Ok(None)
                }
            };
        }
        self.stats.grants.fetch_add(1, Ordering::Relaxed);
        let now = self.now();
        let expires_at = match self.variant {
            ProtocolVariant::Simple => u64::MAX,
            ProtocolVariant::Leased { lease } => now + lease,
            ProtocolVariant::Combined => unreachable!("handled above"),
        };
        let id = self.next_reservation.fetch_add(1, Ordering::Relaxed);
        shard.reservations.insert(
            id,
            Reservation { id, action: action.clone(), client, granted_at: now, expires_at },
        );
        lock(&self.reservation_index).insert(id, shard_id);
        Ok(Some(id))
    }

    /// Step 4/5 of the coordination protocol: the client confirms the
    /// execution of a previously granted action; the manager performs the
    /// state transition and notifies subscribers of status changes.
    pub fn confirm(&self, reservation_id: u64) -> ManagerResult<Vec<Notification>> {
        // The index narrows the search to one shard; the shard's own table
        // decides existence (the reservation may have expired concurrently).
        let shard_id = lock(&self.reservation_index)
            .get(&reservation_id)
            .copied()
            .ok_or(ManagerError::UnknownReservation { id: reservation_id })?;
        let mut shard = lock(&self.shards[shard_id]);
        let reservation = shard
            .reservations
            .remove(&reservation_id)
            .ok_or(ManagerError::UnknownReservation { id: reservation_id })?;
        lock(&self.reservation_index).remove(&reservation_id);
        self.commit(&mut shard, &reservation.action)
    }

    /// The combined ask-and-execute round trip (also used internally by the
    /// `Combined` protocol variant).  Returns `None` if the action was
    /// denied, otherwise the notifications produced by the state transition.
    pub fn try_execute(
        &self,
        client: ClientId,
        action: &Action,
    ) -> ManagerResult<Option<Vec<Notification>>> {
        self.stats.asks.fetch_add(1, Ordering::Relaxed);
        if !action.is_concrete() {
            return Err(ManagerError::NonConcreteAction { action: action.to_string() });
        }
        let _ = client;
        let Some(shard_id) = self.router.route(action) else {
            self.stats.denials.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        };
        let mut shard = lock(&self.shards[shard_id]);
        if !shard.permitted_considering_reservations(action) {
            self.stats.denials.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }
        // As in try_execute_batch: a probe that only passes by virtue of
        // outstanding reservations is a denial for immediate execution, not
        // a protocol error.
        match self.commit(&mut shard, action) {
            Ok(notes) => {
                self.stats.grants.fetch_add(1, Ordering::Relaxed);
                Ok(Some(notes))
            }
            Err(_) => {
                self.stats.denials.fetch_add(1, Ordering::Relaxed);
                Ok(None)
            }
        }
    }

    /// Combined execution of a whole batch: the actions are grouped by
    /// owning shard and every group is decided and committed under a single
    /// lock acquisition of its shard — the amortization that makes
    /// high-throughput clients cheap.  Outcomes are reported per action, in
    /// input order; actions no shard owns are denied.
    pub fn try_execute_batch(
        &self,
        client: ClientId,
        actions: &[Action],
    ) -> ManagerResult<BatchResult> {
        let _ = client;
        self.stats.asks.fetch_add(actions.len() as u64, Ordering::Relaxed);
        let mut result =
            BatchResult { accepted: vec![false; actions.len()], notifications: Vec::new() };
        // Group action indices by shard, preserving input order per group.
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, action) in actions.iter().enumerate() {
            if !action.is_concrete() {
                return Err(ManagerError::NonConcreteAction { action: action.to_string() });
            }
            match self.router.route(action) {
                Some(shard_id) => groups.entry(shard_id).or_default().push(i),
                None => {
                    self.stats.denials.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        for (shard_id, indices) in groups {
            let mut shard = lock(&self.shards[shard_id]);
            for i in indices {
                let action = &actions[i];
                if !shard.permitted_considering_reservations(action) {
                    self.stats.denials.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                // The reservation-aware probe can pass while the immediate
                // commit is impossible (the action only becomes executable
                // after outstanding reservations confirm).  That is a
                // denial of *this* action, not a failure of the batch:
                // earlier commits stay committed and later actions still
                // run.
                match self.commit(&mut shard, action) {
                    Ok(notes) => {
                        self.stats.grants.fetch_add(1, Ordering::Relaxed);
                        result.notifications.extend(notes);
                        result.accepted[i] = true;
                    }
                    Err(_) => {
                        self.stats.denials.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        Ok(result)
    }

    /// True if the action is currently permitted (ignoring outstanding
    /// reservations) — the "status" the subscription protocol reports.
    pub fn is_permitted(&self, action: &Action) -> bool {
        match self.router.route(action) {
            Some(shard_id) => lock(&self.shards[shard_id]).engine.is_permitted(action),
            None => false,
        }
    }

    /// True if the manager's interaction expression mentions the action at
    /// all.  Actions outside the alphabet are unconstrained (the open-world
    /// assumption of the coupling operator, lifted to the deployment level):
    /// clients do not need to ask about them.
    pub fn controls(&self, action: &Action) -> bool {
        self.alphabet.covers(action)
    }

    /// True if the interaction state is final (every constraint could stop
    /// here) — the conjunction of the per-shard finality predicates.
    pub fn is_final(&self) -> bool {
        self.shards.iter().all(|s| lock(s).engine.is_final())
    }

    /// Registers a subscription: the client will receive a notification
    /// whenever the permissibility of the action changes (Fig. 10, right).
    /// The reply contains the current status so the client can initialize its
    /// worklist.  The subscription lives in the shard owning the action.
    pub fn subscribe(&self, client: ClientId, action: &Action) -> bool {
        match self.router.route(action) {
            Some(shard_id) => {
                let mut shard = lock(&self.shards[shard_id]);
                shard.subscriptions.subscribe(client, action.clone());
                shard.engine.is_permitted(action)
            }
            None => {
                lock(&self.orphan_subscriptions).subscribe(client, action.clone());
                false
            }
        }
    }

    /// Removes a subscription.
    pub fn unsubscribe(&self, client: ClientId, action: &Action) {
        match self.router.route(action) {
            Some(shard_id) => {
                lock(&self.shards[shard_id]).subscriptions.unsubscribe(client, action)
            }
            None => lock(&self.orphan_subscriptions).unsubscribe(client, action),
        }
    }

    /// Number of active subscriptions (for tests and statistics).
    pub fn subscription_count(&self) -> usize {
        let owned: usize = self.shards.iter().map(|s| lock(s).subscriptions.len()).sum();
        owned + lock(&self.orphan_subscriptions).len()
    }

    /// Performs the state transition for an action on its (already locked)
    /// shard and computes the notifications for the shard's subscribers
    /// whose action changed status.  Subscribers of other shards cannot be
    /// affected: the transition only touches this shard's alphabet.
    fn commit(&self, shard: &mut Shard, action: &Action) -> ManagerResult<Vec<Notification>> {
        let before = shard.subscriptions.statuses(|a| shard.engine.is_permitted(a));
        if !shard.engine.try_execute(action) {
            return Err(ManagerError::RejectedConfirmation { action: action.to_string() });
        }
        let seq = self.log_seq.fetch_add(1, Ordering::Relaxed);
        shard.log.push((seq, action.clone()));
        self.stats.confirmations.fetch_add(1, Ordering::Relaxed);
        let notifications = shard.subscriptions.diff(&before, |a| shard.engine.is_permitted(a));
        self.stats.notifications.fetch_add(notifications.len() as u64, Ordering::Relaxed);
        Ok(notifications)
    }

    /// Rebuilds a manager from an expression and a log of confirmed actions
    /// (the recovery strategy of Sec. 7: replay the persistent log).
    pub fn recover(
        expr: &Expr,
        variant: ProtocolVariant,
        log: &[Action],
    ) -> ManagerResult<InteractionManager> {
        let manager = InteractionManager::with_protocol(expr, variant)?;
        for action in log {
            let shard_id = manager
                .router
                .route(action)
                .ok_or_else(|| ManagerError::CorruptLog { action: action.to_string() })?;
            let mut shard = lock(&manager.shards[shard_id]);
            manager
                .commit(&mut shard, action)
                .map_err(|_| ManagerError::CorruptLog { action: action.to_string() })?;
        }
        // The statistics of the pre-crash instance are not recovered; only
        // the interaction state and the log are.
        manager.stats.confirmations.store(log.len() as u64, Ordering::Relaxed);
        Ok(manager)
    }
}

impl Clone for InteractionManager {
    /// Deep copy: the clone gets its own engines, reservations and log (used
    /// by the federation; a clone does not alias the original).  Each
    /// shard's engine and log segment are copied under that shard's lock, so
    /// every shard of the clone is internally consistent; when other threads
    /// commit during the clone, shards may be captured at slightly different
    /// points in time (which is harmless — their states are independent).
    fn clone(&self) -> InteractionManager {
        let shards: Vec<Mutex<Shard>> = self
            .shards
            .iter()
            .map(|s| {
                let guard = lock(s);
                Mutex::new(Shard {
                    engine: guard.engine.clone(),
                    reservations: guard.reservations.clone(),
                    subscriptions: guard.subscriptions.clone(),
                    log: guard.log.clone(),
                })
            })
            .collect();
        // Rebuild the reservation index from the copied tables instead of
        // copying the original's index: a confirm racing with the clone
        // could otherwise leave the clone holding a reservation its index
        // does not know, which would be unconfirmable forever.
        let reservation_index: HashMap<u64, usize> = shards
            .iter()
            .enumerate()
            .flat_map(|(shard_id, s)| {
                lock(s).reservations.keys().map(|id| (*id, shard_id)).collect::<Vec<_>>()
            })
            .collect();
        InteractionManager {
            expr: self.expr.clone(),
            alphabet: self.alphabet.clone(),
            variant: self.variant,
            router: self.router.clone(),
            shards,
            reservation_index: Mutex::new(reservation_index),
            orphan_subscriptions: Mutex::new(lock(&self.orphan_subscriptions).clone()),
            log_seq: AtomicU64::new(self.log_seq.load(Ordering::Relaxed)),
            next_reservation: AtomicU64::new(self.next_reservation.load(Ordering::Relaxed)),
            clock: AtomicU64::new(self.now()),
            stats: SharedStats {
                asks: AtomicU64::new(self.stats.asks.load(Ordering::Relaxed)),
                grants: AtomicU64::new(self.stats.grants.load(Ordering::Relaxed)),
                denials: AtomicU64::new(self.stats.denials.load(Ordering::Relaxed)),
                confirmations: AtomicU64::new(self.stats.confirmations.load(Ordering::Relaxed)),
                expired_reservations: AtomicU64::new(
                    self.stats.expired_reservations.load(Ordering::Relaxed),
                ),
                notifications: AtomicU64::new(self.stats.notifications.load(Ordering::Relaxed)),
            },
        }
    }
}

/// Locks a mutex, swallowing poisoning (a panicking client thread must not
/// wedge the scheduler; shard state is only mutated after validation).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_core::{parse, Value};
    use std::sync::Arc;

    fn call(p: i64, x: &str) -> Action {
        Action::concrete("call", [Value::int(p), Value::sym(x)])
    }

    fn perform(p: i64, x: &str) -> Action {
        Action::concrete("perform", [Value::int(p), Value::sym(x)])
    }

    fn patient_constraint() -> Expr {
        parse("all p { (some x { call(p, x) - perform(p, x) })* }").unwrap()
    }

    /// Four disjoint-alphabet components: one per "department group".
    fn sharded_constraint() -> Expr {
        parse(
            "(some p { call_a(p) - perform_a(p) })* \
             @ (some p { call_b(p) - perform_b(p) })* \
             @ (some p { call_c(p) - perform_c(p) })* \
             @ (some p { call_d(p) - perform_d(p) })*",
        )
        .unwrap()
    }

    fn dept_action(kind: &str, dept: char, p: i64) -> Action {
        Action::concrete(&format!("{kind}_{dept}"), [Value::int(p)])
    }

    #[test]
    fn ask_confirm_cycle_follows_fig10() {
        let m = InteractionManager::new(&patient_constraint()).unwrap();
        let r = m.ask(1, &call(1, "sono")).unwrap().expect("granted");
        let notifications = m.confirm(r).unwrap();
        assert!(notifications.is_empty(), "nobody subscribed yet");
        assert_eq!(m.stats().grants, 1);
        assert_eq!(m.stats().confirmations, 1);
        assert_eq!(m.log().len(), 1);
        // The second call for the same patient is denied until perform.
        assert_eq!(m.ask(1, &call(1, "endo")).unwrap(), None);
        let r = m.ask(1, &perform(1, "sono")).unwrap().expect("granted");
        m.confirm(r).unwrap();
        assert!(m.ask(1, &call(1, "endo")).unwrap().is_some());
    }

    #[test]
    fn reservations_block_conflicting_grants() {
        // Capacity one: once a call is granted (but not yet confirmed), a
        // second call must not be granted even though the state has not
        // changed yet.
        let expr = parse("mult 1 { (some p { call(p, sono) - perform(p, sono) })* }").unwrap();
        let m = InteractionManager::new(&expr).unwrap();
        let r1 = m.ask(1, &call(1, "sono")).unwrap();
        assert!(r1.is_some());
        let r2 = m.ask(2, &call(2, "sono")).unwrap();
        assert_eq!(r2, None, "slot reserved by the unconfirmed grant");
        m.confirm(r1.unwrap()).unwrap();
        assert_eq!(m.ask(2, &call(2, "sono")).unwrap(), None, "slot now actually occupied");
        let r = m.ask(1, &perform(1, "sono")).unwrap().unwrap();
        m.confirm(r).unwrap();
        assert!(m.ask(2, &call(2, "sono")).unwrap().is_some());
    }

    #[test]
    fn leased_reservations_expire_and_release_the_slot() {
        let expr = parse("mult 1 { (some p { call(p, sono) - perform(p, sono) })* }").unwrap();
        let m =
            InteractionManager::with_protocol(&expr, ProtocolVariant::Leased { lease: 5 }).unwrap();
        let r1 = m.ask(1, &call(1, "sono")).unwrap().unwrap();
        assert_eq!(m.ask(2, &call(2, "sono")).unwrap(), None);
        // The client crashes; after the lease expires the slot is free again.
        let expired = m.advance_time(6);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].id, r1);
        assert_eq!(m.stats().expired_reservations, 1);
        assert!(m.ask(2, &call(2, "sono")).unwrap().is_some());
        // A late confirmation of the expired reservation is rejected.
        assert!(matches!(m.confirm(r1), Err(ManagerError::UnknownReservation { .. })));
    }

    #[test]
    fn combined_protocol_commits_in_one_round_trip() {
        let m = InteractionManager::with_protocol(&patient_constraint(), ProtocolVariant::Combined)
            .unwrap();
        assert!(m.ask(1, &call(1, "sono")).unwrap().is_some());
        assert_eq!(m.log().len(), 1, "no separate confirmation needed");
        assert_eq!(m.ask(1, &call(1, "endo")).unwrap(), None);
    }

    #[test]
    fn subscriptions_report_status_changes() {
        let m = InteractionManager::new(&patient_constraint()).unwrap();
        assert!(m.subscribe(7, &call(1, "endo")), "initially permitted");
        assert!(!m.subscribe(7, &perform(1, "sono")), "no call yet, so perform is disabled");
        assert_eq!(m.subscription_count(), 2);
        let notifications = m.try_execute(1, &call(1, "sono")).unwrap().unwrap();
        // call(1, endo) became impermissible and perform(1, sono) became
        // permissible: both subscribers' worklists must be updated.
        assert_eq!(notifications.len(), 2);
        let endo = notifications.iter().find(|n| n.action == call(1, "endo")).unwrap();
        assert!(!endo.permitted);
        assert_eq!(endo.client, 7);
        let sono = notifications.iter().find(|n| n.action == perform(1, "sono")).unwrap();
        assert!(sono.permitted);
        // Completing the examination re-enables the other call.
        let notifications = m.try_execute(1, &perform(1, "sono")).unwrap().unwrap();
        assert!(notifications.iter().any(|n| n.action == call(1, "endo") && n.permitted));
        m.unsubscribe(7, &call(1, "endo"));
        assert_eq!(m.subscription_count(), 1);
    }

    #[test]
    fn recovery_replays_the_confirmed_log() {
        let m = InteractionManager::new(&patient_constraint()).unwrap();
        for a in [call(1, "sono"), perform(1, "sono"), call(1, "endo")] {
            let r = m.ask(1, &a).unwrap().unwrap();
            m.confirm(r).unwrap();
        }
        let log = m.log();
        // The manager crashes; a new instance is built from the log.
        let recovered =
            InteractionManager::recover(&patient_constraint(), ProtocolVariant::Simple, &log)
                .unwrap();
        assert_eq!(recovered.log().len(), 3);
        assert!(!recovered.is_permitted(&call(1, "sono")), "patient 1 is mid-examination");
        assert!(recovered.is_permitted(&perform(1, "endo")));
        // A corrupt log is rejected.
        let bad = vec![perform(9, "sono")];
        assert!(matches!(
            InteractionManager::recover(&patient_constraint(), ProtocolVariant::Simple, &bad),
            Err(ManagerError::CorruptLog { .. })
        ));
    }

    #[test]
    fn errors_for_unknown_reservations_and_abstract_actions() {
        let m = InteractionManager::new(&patient_constraint()).unwrap();
        assert!(matches!(m.confirm(99), Err(ManagerError::UnknownReservation { id: 99 })));
        let abstract_action = Action::new("call", [ix_core::Term::Param(ix_core::Param::new("p"))]);
        assert!(matches!(m.ask(1, &abstract_action), Err(ManagerError::NonConcreteAction { .. })));
    }

    #[test]
    fn decomposable_constraints_get_one_shard_per_component() {
        let m = InteractionManager::new(&sharded_constraint()).unwrap();
        assert_eq!(m.shard_count(), 4);
        assert_eq!(m.shard_of(&dept_action("call", 'a', 1)), Some(0));
        assert_eq!(
            m.shard_of(&dept_action("call", 'a', 1)),
            m.shard_of(&dept_action("perform", 'a', 1)),
        );
        assert_ne!(
            m.shard_of(&dept_action("call", 'a', 1)),
            m.shard_of(&dept_action("call", 'b', 1)),
        );
        // The monolithic fallback.
        let mono = InteractionManager::new(&patient_constraint()).unwrap();
        assert_eq!(mono.shard_count(), 1);
    }

    #[test]
    fn reservations_only_block_within_their_shard() {
        let m = InteractionManager::new(&sharded_constraint()).unwrap();
        // A pending (unconfirmed) grant in shard a...
        let ra = m.ask(1, &dept_action("call", 'a', 1)).unwrap().unwrap();
        // ...does not even get probed when shard b decides its own grants.
        let rb = m.ask(2, &dept_action("call", 'b', 2)).unwrap().unwrap();
        m.confirm(rb).unwrap();
        m.confirm(ra).unwrap();
        assert_eq!(m.stats().confirmations, 2);
        assert_eq!(m.log().len(), 2);
    }

    #[test]
    fn concurrent_clients_on_disjoint_shards_all_succeed() {
        let m = Arc::new(
            InteractionManager::with_protocol(&sharded_constraint(), ProtocolVariant::Combined)
                .unwrap(),
        );
        let mut handles = Vec::new();
        for (i, dept) in ['a', 'b', 'c', 'd'].into_iter().enumerate() {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                let mut committed = 0;
                for p in 0..25 {
                    let p = (i * 100 + p) as i64;
                    if m.try_execute(i as u64, &dept_action("call", dept, p)).unwrap().is_some() {
                        committed += 1;
                    }
                    if m.try_execute(i as u64, &dept_action("perform", dept, p)).unwrap().is_some()
                    {
                        committed += 1;
                    }
                }
                committed
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 200, "independent shards never veto each other");
        assert_eq!(m.stats().confirmations, 200);
        assert_eq!(m.log().len(), 200);
        assert!(m.is_final(), "every call was performed");
    }

    #[test]
    fn batches_commit_per_shard_groups_in_one_lock_acquisition() {
        let m = InteractionManager::new(&sharded_constraint()).unwrap();
        let batch = vec![
            dept_action("call", 'a', 1),
            dept_action("call", 'b', 1),
            dept_action("perform", 'a', 1),
            dept_action("call", 'z', 1), // unrouted: denied
            dept_action("call", 'c', 1),
            dept_action("call", 'a', 1), // same action again: denied mid-examination? no —
                                         // call_a(1) completed, a new some-branch opens.
        ];
        let result = m.try_execute_batch(9, &batch).unwrap();
        assert_eq!(result.accepted.len(), 6);
        assert!(!result.accepted[3], "unknown action group is denied");
        assert!(result.accepted[0] && result.accepted[1] && result.accepted[2]);
        assert_eq!(m.stats().confirmations, result.accepted.iter().filter(|b| **b).count() as u64);
        // Batch outcomes match what sequential execution would have done.
        let seq = InteractionManager::new(&sharded_constraint()).unwrap();
        for (i, action) in batch.iter().enumerate() {
            let expected = seq.try_execute(9, action).unwrap().is_some();
            assert_eq!(result.accepted[i], expected, "action {i} ({action})");
        }
    }

    #[test]
    fn batch_denies_actions_only_executable_after_pending_reservations() {
        // The reservation-aware probe says yes to perform(1) (it replays the
        // reserved call(1) first), but the immediate commit is impossible
        // until that reservation confirms.  The batch must deny the action
        // and keep going, not abort after the sibling shard already
        // committed.
        let expr = parse("(some p { call(p) - perform(p) })* @ (x - y)*").unwrap();
        let m = InteractionManager::new(&expr).unwrap();
        let call1 = Action::concrete("call", [Value::int(1)]);
        let perform1 = Action::concrete("perform", [Value::int(1)]);
        let r = m.ask(1, &call1).unwrap().expect("granted and reserved");
        let batch = vec![Action::nullary("x"), perform1.clone()];
        let result = m.try_execute_batch(2, &batch).unwrap();
        assert!(result.accepted[0], "the independent shard commits");
        assert!(!result.accepted[1], "not executable before the reservation confirms");
        assert_eq!(m.log().len(), 1);
        m.confirm(r).unwrap();
        assert!(m.try_execute(2, &perform1).unwrap().is_some(), "fine after the confirm");
    }

    #[test]
    fn try_execute_denies_actions_only_executable_after_pending_reservations() {
        let expr = parse("(some p { call(p) - perform(p) })*").unwrap();
        let m = InteractionManager::new(&expr).unwrap();
        let call1 = Action::concrete("call", [Value::int(1)]);
        let perform1 = Action::concrete("perform", [Value::int(1)]);
        let r = m.ask(1, &call1).unwrap().expect("granted and reserved");
        // Same semantics as the batch path: a denial, not Err.
        assert_eq!(m.try_execute(2, &perform1).unwrap(), None);
        assert_eq!(m.stats().denials, 1);
        m.confirm(r).unwrap();
        assert!(m.try_execute(2, &perform1).unwrap().is_some());
        let stats = m.stats();
        assert_eq!(stats.grants, stats.confirmations, "every grant was honored");
    }

    #[test]
    fn cloned_managers_can_confirm_inherited_reservations() {
        let m = InteractionManager::new(&patient_constraint()).unwrap();
        let r = m.ask(1, &call(1, "sono")).unwrap().expect("granted");
        let copy = m.clone();
        // The clone's reservation index is rebuilt from its shard tables, so
        // the inherited reservation is confirmable on the copy too.
        copy.confirm(r).unwrap();
        assert_eq!(copy.log().len(), 1);
        m.confirm(r).unwrap();
        assert_eq!(m.log().len(), 1);
    }

    #[test]
    fn batch_notifications_reach_subscribers() {
        let m = InteractionManager::new(&sharded_constraint()).unwrap();
        assert!(!m.subscribe(5, &dept_action("perform", 'b', 3)));
        let result = m
            .try_execute_batch(1, &[dept_action("call", 'a', 3), dept_action("call", 'b', 3)])
            .unwrap();
        assert!(result.accepted.iter().all(|b| *b));
        assert!(result
            .notifications
            .iter()
            .any(|n| n.client == 5 && n.permitted && n.action == dept_action("perform", 'b', 3)));
    }

    #[test]
    fn deep_clone_does_not_alias() {
        let m = InteractionManager::with_protocol(&sharded_constraint(), ProtocolVariant::Combined)
            .unwrap();
        m.try_execute(1, &dept_action("call", 'a', 1)).unwrap().unwrap();
        let copy = m.clone();
        copy.try_execute(1, &dept_action("call", 'b', 1)).unwrap().unwrap();
        assert_eq!(m.log().len(), 1, "the original does not see the clone's commit");
        assert_eq!(copy.log().len(), 2);
    }

    #[test]
    fn monolithic_mode_keeps_one_shard_but_behaves_identically() {
        let m = InteractionManager::monolithic(&sharded_constraint(), ProtocolVariant::Combined)
            .unwrap();
        assert_eq!(m.shard_count(), 1);
        assert!(m.try_execute(1, &dept_action("call", 'a', 1)).unwrap().is_some());
        assert!(m.try_execute(1, &dept_action("call", 'b', 1)).unwrap().is_some());
        assert!(m.try_execute(1, &dept_action("call", 'z', 1)).unwrap().is_none());
        assert_eq!(m.log().len(), 2);
    }

    #[test]
    fn orphan_subscriptions_are_tracked_but_never_permitted() {
        let m = InteractionManager::new(&sharded_constraint()).unwrap();
        let unknown = Action::nullary("unknown_action");
        assert!(!m.subscribe(3, &unknown));
        assert_eq!(m.subscription_count(), 1);
        assert!(!m.is_permitted(&unknown));
        m.unsubscribe(3, &unknown);
        assert_eq!(m.subscription_count(), 0);
    }
}

//! `ixctl` — command-line front end for interaction expressions.
//!
//! ```text
//! ixctl check    '<expression>'            parse, validate, classify
//! ixctl simplify '<expression>'            apply the algebraic simplification pass
//! ixctl dot      '<expression>'            print the Graphviz rendering of the graph view
//! ixctl word     '<expression>' a b(1) …   solve the word problem for the given actions
//! ixctl run      '<expression>'            action problem: read one action per stdin line
//! ixctl snapshot inspect <vault-dir>       describe a durability vault without opening it
//! ixctl queue    <vault-dir>               list the pending durable submissions
//! ixctl recover  <vault-dir>               crash-recover a vault and report the state
//! ```
//!
//! Actions on the command line / stdin use the same syntax as atomic
//! expressions, e.g. `call(1, sono)`.  The standard template registry
//! (`mutex!`, `mutex2!`) and the paper's `flash!` operator are available.
//! The vault commands take the directory a durable
//! [`ix_manager::ManagerRuntime`] journaled into
//! (`ManagerRuntime::with_durability_path`).

use ix_core::{parse_with, Action, CoreResult, Expr, ExprKind, TemplateRegistry};
use ix_graph::{from_expr, to_dot, InteractionGraph};
use ix_manager::{
    inspect_queue, inspect_vault, FileVault, FsyncPolicy, ManagerRuntime, RuntimeOptions, Vault,
};
use ix_state::{classify, validate, Engine, WordStatus};
use std::io::BufRead;
use std::process::ExitCode;
use std::sync::Arc;

fn registry() -> TemplateRegistry {
    let mut reg = TemplateRegistry::with_standard_operators();
    // The paper's three-branch mutual exclusion operator under its own name.
    let _ = reg.register(ix_core::TemplateDef::new(
        "flash",
        ["x", "y", "z"].map(ix_core::Symbol::new),
        Expr::seq_iter(Expr::or(Expr::or(Expr::hole("x"), Expr::hole("y")), Expr::hole("z"))),
    ));
    reg
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: ixctl <check|simplify|dot|word|run> '<expression>' [actions...]\n\
                 \x20      ixctl snapshot inspect <vault-dir>\n\
                 \x20      ixctl queue <vault-dir>\n\
                 \x20      ixctl recover <vault-dir>";
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprintln!("{usage}");
            return ExitCode::from(2);
        }
    };
    // The vault commands take a directory, not an expression.
    match command {
        "snapshot" => {
            let dir = match rest {
                [sub, dir] if sub == "inspect" => dir,
                _ => {
                    eprintln!("usage: ixctl snapshot inspect <vault-dir>");
                    return ExitCode::from(2);
                }
            };
            return snapshot_inspect(dir);
        }
        "queue" => {
            let [dir] = rest else {
                eprintln!("usage: ixctl queue <vault-dir>");
                return ExitCode::from(2);
            };
            return queue(dir);
        }
        "recover" => {
            let [dir] = rest else {
                eprintln!("usage: ixctl recover <vault-dir>");
                return ExitCode::from(2);
            };
            return recover(dir);
        }
        _ => {}
    }
    let Some(source) = rest.first() else {
        eprintln!("{usage}");
        return ExitCode::from(2);
    };
    let expr = match parse_with(source, &registry()) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::from(1);
        }
    };
    let result = match command {
        "check" => check(&expr),
        "simplify" => {
            println!("{}", ix_core::simplify(&expr));
            Ok(())
        }
        "dot" => {
            let graph = InteractionGraph::new(source.as_str(), from_expr(&expr));
            println!("{}", to_dot(&graph));
            Ok(())
        }
        "word" => word(&expr, &rest[1..]),
        "run" => run(&expr),
        other => {
            eprintln!("unknown command `{other}`\n{usage}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

/// `ixctl snapshot inspect <dir>` — describes a durability vault (topology,
/// manifest, per-shard snapshots and log tails) without recovering it.
fn snapshot_inspect(dir: &str) -> ExitCode {
    let vault: Arc<dyn Vault> = match FileVault::open(dir, FsyncPolicy::Never) {
        Ok(v) => Arc::new(v),
        Err(e) => {
            eprintln!("error: cannot open vault at `{dir}`: {e}");
            return ExitCode::from(1);
        }
    };
    let inspection = match inspect_vault(&vault) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    println!("vault      : {dir}");
    println!("expression : {}", inspection.expr);
    println!("topology   : {} components, epoch {}", inspection.components, inspection.epoch);
    if inspection.manifest {
        println!("manifest   : present (clock {})", inspection.clock);
    } else {
        println!("manifest   : none (no checkpoint yet)");
    }
    if inspection.placement.is_empty() {
        println!("placement  : none recorded");
    } else {
        let workers = inspection.placement.iter().max().map_or(0, |w| w + 1);
        println!(
            "placement  : {} shards over {} workers {:?}",
            inspection.placement.len(),
            workers,
            inspection.placement
        );
    }
    println!("meta tail  : {} records", inspection.meta_tail);
    println!(
        "queue      : {} pending in blob, {} tail records",
        inspection.queue_pending, inspection.queue_tail
    );
    for s in &inspection.shards {
        let snapshot = if s.snapshot {
            format!("snapshot {} B (log epoch {})", s.snapshot_bytes, s.epoch)
        } else {
            "no snapshot".to_string()
        };
        println!(
            "shard {:>4} : {snapshot}, {} log entries, {} reservations, \
             {} tier tables, covered {} + {} tail records",
            s.shard, s.log_entries, s.reservations, s.tier_tables, s.covered, s.tail_records
        );
    }
    ExitCode::SUCCESS
}

/// `ixctl queue <dir>` — lists the durable submissions a recovery would
/// redeliver: the queue checkpoint's pending list plus a replay of the
/// stream tail, without recovering the runtime.
fn queue(dir: &str) -> ExitCode {
    let vault: Arc<dyn Vault> = match FileVault::open(dir, FsyncPolicy::Never) {
        Ok(v) => Arc::new(v),
        Err(e) => {
            eprintln!("error: cannot open vault at `{dir}`: {e}");
            return ExitCode::from(1);
        }
    };
    let inspection = match inspect_queue(&vault) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    println!("vault      : {dir}");
    println!(
        "queue      : {} covered records, {} tail records",
        inspection.covered, inspection.tail_records
    );
    println!("pending    : {} unacknowledged submissions", inspection.pending.len());
    for entry in &inspection.pending {
        println!("             client {:>4}  {}", entry.client, entry.op);
    }
    ExitCode::SUCCESS
}

/// `ixctl recover <dir>` — crash-recovers the vault, reports the recovered
/// state, and shuts the runtime back down (journaling nothing new).
fn recover(dir: &str) -> ExitCode {
    let runtime = match ManagerRuntime::recover_path(dir, RuntimeOptions::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: recovery failed: {e}");
            return ExitCode::from(1);
        }
    };
    let pending = runtime.unacknowledged_submissions();
    let sched = runtime.sched_stats();
    let report = match runtime.shutdown() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: post-recovery shutdown failed: {e}");
            return ExitCode::from(1);
        }
    };
    println!("recovered  : {dir}");
    println!("shards     : {}", report.shards);
    println!("placement  : {:?} over {} workers", sched.placement, sched.workers);
    println!("clock      : {}", report.clock);
    println!("log        : {} committed actions", report.log.len());
    for action in report.log.iter().rev().take(5).rev() {
        println!("             … {action}");
    }
    println!("stats      : {:?}", report.stats);
    println!("queue      : {pending} unacknowledged durable submissions");
    ExitCode::SUCCESS
}

fn check(expr: &Expr) -> CoreResult<()> {
    println!("expression : {expr}");
    println!("size       : {} nodes, depth {}", expr.size(), expr.depth());
    println!("alphabet   : {}", expr.alphabet());
    match validate(expr) {
        Ok(()) => println!("state model: executable"),
        Err(e) => println!("state model: NOT executable ({e})"),
    }
    let c = classify(expr);
    println!("complexity : {:?}", c.benignity);
    for reason in &c.reasons {
        println!("             - {reason}");
    }
    Ok(())
}

fn word(expr: &Expr, action_sources: &[String]) -> CoreResult<()> {
    let actions = parse_actions(action_sources)?;
    match ix_state::word_problem(expr, &actions) {
        Ok(status) => {
            let name = match status {
                WordStatus::Complete => "complete",
                WordStatus::Partial => "partial",
                WordStatus::Illegal => "illegal",
            };
            println!("{} ({})", status.code(), name);
            Ok(())
        }
        Err(e) => {
            eprintln!("{e}");
            Ok(())
        }
    }
}

fn run(expr: &Expr) -> CoreResult<()> {
    let mut engine = match Engine::new(expr) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{e}");
            return Ok(());
        }
    };
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.unwrap_or_default();
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let action = parse_action(trimmed)?;
        let accepted = engine.try_execute(&action);
        println!("{}", if accepted { "Accept." } else { "Reject." });
    }
    println!(
        "processed {} accepted / {} rejected; complete = {}",
        engine.accepted(),
        engine.rejected(),
        engine.is_final()
    );
    Ok(())
}

fn parse_actions(sources: &[String]) -> CoreResult<Vec<Action>> {
    sources.iter().map(|s| parse_action(s)).collect()
}

/// Parses a single concrete action using the expression parser (an atomic
/// expression whose arguments are all values).
fn parse_action(source: &str) -> CoreResult<Action> {
    let expr = ix_core::parse(source)?;
    match expr.kind() {
        ExprKind::Atom(a) if a.is_concrete() => Ok(a.clone()),
        _ => Err(ix_core::CoreError::Parse {
            position: 0,
            message: format!("`{source}` is not a concrete action"),
        }),
    }
}

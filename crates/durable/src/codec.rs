//! A minimal binary codec: LEB128 varints, zigzag-encoded signed integers,
//! length-prefixed strings, and the CRC32 (IEEE polynomial) used to frame
//! on-disk WAL records.
//!
//! The codec is deliberately schema-free — every record type that uses it
//! writes and reads its fields in a fixed order and versions itself with a
//! leading byte.  Decoding is total: every read returns a [`CodecError`]
//! instead of panicking, so a torn or corrupt record surfaces as an error
//! the WAL reader can treat as the end of the valid prefix.

use std::fmt;

/// A decoding failure: the buffer ended early or contained an invalid tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// A tag byte had no defined meaning at this position.
    BadTag {
        /// The offending tag value.
        tag: u8,
    },
    /// A length or id referred outside the decoded structure.
    BadReference {
        /// The offending index.
        index: u64,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A version byte named a format this build does not understand.
    BadVersion {
        /// The version encountered.
        version: u8,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "record truncated"),
            CodecError::BadTag { tag } => write!(f, "invalid tag byte {tag}"),
            CodecError::BadReference { index } => write!(f, "dangling reference {index}"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            CodecError::BadVersion { version } => write!(f, "unsupported format version {version}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An append-only encode buffer.
#[derive(Clone, Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes an unsigned integer as a LEB128 varint.
    pub fn u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a `u32` as a varint.
    pub fn u32(&mut self, v: u32) {
        self.u64(v as u64);
    }

    /// Writes a `usize` as a varint.
    pub fn len_prefix(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a signed integer zigzag-encoded.
    pub fn i64(&mut self, v: i64) {
        self.u64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Writes a length-prefixed string.
    pub fn str(&mut self, s: &str) {
        self.len_prefix(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes raw bytes with a length prefix.
    pub fn bytes(&mut self, b: &[u8]) {
        self.len_prefix(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Appends another writer's bytes verbatim (no length prefix).
    pub fn raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// A cursor over an encode buffer.
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// True once every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a boolean byte.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.u8()? != 0)
    }

    /// Reads a LEB128 varint.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(CodecError::BadTag { tag: byte });
            }
        }
    }

    /// Reads a `u32` varint.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let v = self.u64()?;
        u32::try_from(v).map_err(|_| CodecError::BadReference { index: v })
    }

    /// Reads a length prefix.
    pub fn len_prefix(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::BadReference { index: v })
    }

    /// Reads a zigzag-encoded signed integer.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        let v = self.u64()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Reads a length-prefixed string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// Reads length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.len_prefix()?;
        let end = self.pos.checked_add(len).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
}

/// CRC32 (IEEE 802.3 polynomial, the one zlib and Ethernet use), computed
/// with a lazily built 256-entry table.
pub fn crc32(bytes: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip() {
        let mut w = Writer::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            w.u64(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for &v in &values {
            assert_eq!(r.u64().unwrap(), v);
        }
        assert!(r.is_at_end());
    }

    #[test]
    fn zigzag_round_trips_signed_extremes() {
        let mut w = Writer::new();
        let values = [0i64, -1, 1, i64::MIN, i64::MAX, -1234567];
        for &v in &values {
            w.i64(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for &v in &values {
            assert_eq!(r.i64().unwrap(), v);
        }
    }

    #[test]
    fn strings_and_bytes_round_trip() {
        let mut w = Writer::new();
        w.str("sono");
        w.bytes(&[1, 2, 3]);
        w.str("");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.str().unwrap(), "sono");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.str().unwrap(), "");
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..bytes.len() - 1]);
        assert_eq!(r.u64(), Err(CodecError::Truncated));
        let mut r = Reader::new(&[0x85]);
        assert_eq!(r.u64(), Err(CodecError::Truncated));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic zlib test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}

//! Synchronization scenarios used for the expressiveness comparison.
//!
//! Each scenario is a concrete coordination requirement from the paper's
//! motivation (Sec. 1–2), expressed as an interaction expression, together
//! with the set of baseline formalisms that can express it at all.  The
//! scenarios drive the `formalism_matrix` benchmark and the `reproduce fig2`
//! report; the per-scenario tests double as behavioural documentation.

use crate::matrix::Formalism;
use ix_core::{parse, Expr};

/// A named synchronization scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Short identifier.
    pub name: &'static str,
    /// What has to be coordinated.
    pub description: &'static str,
    /// The requirement as an interaction expression.
    pub interaction_expr: Expr,
    /// Formalisms able to express the requirement without enumerating
    /// dynamically unbounded cases.
    pub expressible_by: Vec<Formalism>,
}

/// All scenarios of the comparison.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![
        mutual_exclusion(),
        sequential_protocol(),
        either_order(),
        bounded_capacity(),
        readers_writers(),
        dynamic_patients(),
        modular_combination(),
        dynamic_ensembles(),
    ]
}

/// Two operations never overlap (the classical critical section).
pub fn mutual_exclusion() -> Scenario {
    Scenario {
        name: "mutual-exclusion",
        description: "two operations never overlap in time",
        interaction_expr: parse("((read_start - read_end) + (write_start - write_end))*").unwrap(),
        expressible_by: vec![
            Formalism::Regular,
            Formalism::Path,
            Formalism::Synchronization,
            Formalism::Flow,
            Formalism::CoCoA,
            Formalism::Interaction,
        ],
    }
}

/// A fixed sequential protocol (order — schedule — prepare — ...).
pub fn sequential_protocol() -> Scenario {
    Scenario {
        name: "sequential-protocol",
        description: "activities of a single workflow follow a fixed order",
        interaction_expr: parse("order - schedule - prepare - call - perform - report").unwrap(),
        expressible_by: vec![
            Formalism::Regular,
            Formalism::Path,
            Formalism::Synchronization,
            Formalism::Flow,
            Formalism::CoCoA,
            Formalism::Interaction,
        ],
    }
}

/// Two examinations may happen in either order but not interleaved —
/// the requirement that plain intra-workflow control flow cannot express
/// without enumerating both orders (Sec. 1).
pub fn either_order() -> Scenario {
    Scenario {
        name: "either-order",
        description: "two examinations execute sequentially in either order",
        interaction_expr: parse(
            "((sono_start - sono_end) + (endo_start - endo_end))* & \
             (((sono_start - sono_end) | (endo_start - endo_end))?)",
        )
        .unwrap(),
        expressible_by: vec![
            Formalism::Regular,
            Formalism::Path,
            Formalism::Synchronization,
            Formalism::Flow,
            Formalism::CoCoA,
            Formalism::Interaction,
        ],
    }
}

/// At most three clients in the critical region simultaneously (Fig. 6 for a
/// single, statically known department).
pub fn bounded_capacity() -> Scenario {
    Scenario {
        name: "bounded-capacity",
        description: "at most three concurrent instances of call-perform",
        interaction_expr: parse("mult 3 { (call - perform)* }").unwrap(),
        // Needs true parallel composition of overlapping alphabets: path
        // expression bursts cannot bound the degree, regular expressions
        // would enumerate interleavings.
        expressible_by: vec![Formalism::Flow, Formalism::CoCoA, Formalism::Interaction],
    }
}

/// Arbitrarily many concurrent readers, writers exclusive.
pub fn readers_writers() -> Scenario {
    Scenario {
        name: "readers-writers",
        description: "unbounded concurrent readers, exclusive writers",
        interaction_expr: parse("((read_start - read_end)# + (write_start - write_end))*").unwrap(),
        expressible_by: vec![
            Formalism::Path,
            Formalism::Flow,
            Formalism::CoCoA,
            Formalism::Interaction,
        ],
    }
}

/// Every patient may pass through at most one examination at a time — for a
/// dynamically unbounded set of patients (Fig. 3, middle branch).
pub fn dynamic_patients() -> Scenario {
    Scenario {
        name: "dynamic-patients",
        description: "per-patient mutual exclusion for an unbounded set of patients",
        interaction_expr: parse("all p { (some x { call(p, x) - perform(p, x) })* }").unwrap(),
        // Requires parameters and quantifiers.
        expressible_by: vec![Formalism::CoCoA, Formalism::Interaction],
    }
}

/// Independently developed constraints are combined without rewriting them
/// (Fig. 7): needs the loose coupling operator.
pub fn modular_combination() -> Scenario {
    Scenario {
        name: "modular-combination",
        description: "combine independently developed subgraphs without auxiliary symbols",
        interaction_expr: parse("(prepare - call - perform)* @ (mult 2 { (call - perform)* })")
            .unwrap(),
        expressible_by: vec![Formalism::Interaction],
    }
}

/// Fully dynamic workflow ensembles: number and identity of participants
/// unknown in advance (the requirement none of the pragmatic approaches of
/// Sec. 1 can satisfy).
pub fn dynamic_ensembles() -> Scenario {
    Scenario {
        name: "dynamic-ensembles",
        description: "coordination of dynamically evolving workflow ensembles",
        interaction_expr: ix_graph_free_fig7(),
        expressible_by: vec![Formalism::Interaction],
    }
}

/// A self-contained rendering of the Fig. 7 coupling (patients × capacity)
/// used by [`dynamic_ensembles`] without depending on `ix-graph`.
fn ix_graph_free_fig7() -> Expr {
    parse(
        "all p { ((some x { prepare(p, x) })# \
                  + some x { call(p, x) - perform(p, x) } \
                  + (some x { inform(p, x) })#)* } \
         @ all x { mult 3 { (some p { call(p, x) - perform(p, x) })* } }",
    )
    .unwrap()
}

/// Renders the scenario × formalism expressibility table.
pub fn render_scenarios() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<22}", "scenario"));
    for f in Formalism::all() {
        out.push_str(&format!("{:>12}", short_name(f)));
    }
    out.push('\n');
    out.push_str(&"-".repeat(22 + 12 * Formalism::all().len()));
    out.push('\n');
    for s in all_scenarios() {
        out.push_str(&format!("{:<22}", s.name));
        for f in Formalism::all() {
            let yes = s.expressible_by.contains(&f);
            out.push_str(&format!("{:>12}", if yes { "yes" } else { "-" }));
        }
        out.push('\n');
    }
    out
}

fn short_name(f: Formalism) -> &'static str {
    match f {
        Formalism::Regular => "regular",
        Formalism::Path => "path",
        Formalism::Synchronization => "sync-expr",
        Formalism::Flow => "flow",
        Formalism::CoCoA => "cocoa",
        Formalism::Interaction => "interaction",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_core::{Action, Value};
    use ix_state::Engine;

    #[test]
    fn every_scenario_has_an_executable_interaction_expression() {
        for s in all_scenarios() {
            assert!(
                Engine::new(&s.interaction_expr).is_ok(),
                "scenario {} must be executable",
                s.name
            );
            assert!(
                s.expressible_by.contains(&Formalism::Interaction),
                "interaction expressions express everything ({})",
                s.name
            );
        }
    }

    #[test]
    fn expressiveness_strictly_increases_towards_interaction_expressions() {
        let counts: Vec<usize> = Formalism::all()
            .into_iter()
            .map(|f| all_scenarios().iter().filter(|s| s.expressible_by.contains(&f)).count())
            .collect();
        let interaction = counts[5];
        assert_eq!(interaction, all_scenarios().len());
        assert!(counts.iter().all(|&c| c <= interaction));
        assert!(counts[0] < interaction, "regular expressions miss several scenarios");
    }

    #[test]
    fn bounded_capacity_scenario_enforces_the_bound() {
        let s = bounded_capacity();
        let mut eng = Engine::new(&s.interaction_expr).unwrap();
        let call = Action::nullary("call");
        for _ in 0..3 {
            assert!(eng.try_execute(&call));
        }
        assert!(!eng.is_permitted(&call), "fourth concurrent call rejected");
    }

    #[test]
    fn dynamic_patients_scenario_is_per_patient() {
        let s = dynamic_patients();
        let mut eng = Engine::new(&s.interaction_expr).unwrap();
        let call = |p: i64, x: &str| Action::concrete("call", [Value::int(p), Value::sym(x)]);
        assert!(eng.try_execute(&call(1, "sono")));
        assert!(!eng.is_permitted(&call(1, "endo")));
        assert!(eng.is_permitted(&call(2, "endo")), "other patients are independent");
    }

    #[test]
    fn rendered_table_lists_every_scenario() {
        let table = render_scenarios();
        for s in all_scenarios() {
            assert!(table.contains(s.name));
        }
        assert!(table.contains("interaction"));
    }
}

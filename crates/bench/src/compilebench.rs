//! The tiered-execution benchmark: table-resident expressions stepped
//! through the compiled DFA tier vs the pure copy-on-write engine.
//!
//! Two regimes are measured on identical schedules, engine vs engine:
//!
//! * **resident** — expressions whose reachable τ̂-graph fits the tier
//!   budget, driven with working sets larger than the transition memo
//!   (256 entries), so the pure-CoW side pays a real tree rebuild per step
//!   while the tier answers from a dense `state × symbol` array.  The CI
//!   gate demands ≥ 10× here.
//! * **fallback** — quantified or over-budget expressions where compilation
//!   bails (entirely, or down to sub-tiles that cannot serve the spine).
//!   The tier must cost (almost) nothing when it cannot help: the CI gate
//!   demands ≤ 1.05× of the plain engine.
//!
//! Verdicts are asserted identical between the two engines on every
//! schedule before anything is timed.

use ix_core::{parse, Action, Expr};
use ix_state::{Engine, DEFAULT_TIER_BUDGET};
use std::time::Instant;

/// One measured configuration of the tiered-execution benchmark.
#[derive(Clone, Debug)]
pub struct CompileRow {
    /// Workload name (`protocol-ring`, `mutex-product`, `quantified`,
    /// `over-budget`).
    pub scenario: &'static str,
    /// Whether the workload is table-resident (≥ 10× gate) or a fallback
    /// shape (≤ 1.05× gate).
    pub resident: bool,
    /// Number of committed steps per timed trial.
    pub steps: usize,
    /// Tier state budget the tiered engine compiled under.
    pub tier_budget: usize,
    /// Compiled tables installed after the compilation pass.
    pub tables: usize,
    /// Total interned states across those tables.
    pub table_states: usize,
    /// One-time compilation cost in microseconds.
    pub compile_micros: f64,
    /// ns per step of the pure-CoW engine (`tier_budget = 0`).
    pub cow_ns: f64,
    /// ns per step of the tier-compiled engine.
    pub tier_ns: f64,
    /// Table hits during the timed tiered trials.
    pub tier_hits: u64,
    /// Tree fallbacks during the timed tiered trials.
    pub tier_fallbacks: u64,
}

impl CompileRow {
    /// Tier speedup over the pure-CoW engine.
    pub fn speedup(&self) -> f64 {
        self.cow_ns / self.tier_ns.max(f64::MIN_POSITIVE)
    }

    /// Tier cost relative to the pure-CoW engine (the fallback gate).
    pub fn overhead(&self) -> f64 {
        self.tier_ns / self.cow_ns.max(f64::MIN_POSITIVE)
    }
}

/// A sequential protocol ring of `len` stations: `(s0 - s1 - … - s{len-1})*`.
/// With `len > 256` the per-cycle working set overflows the transition memo,
/// so the pure-CoW engine recomputes every step while the ring is one
/// `len + 1`-state table for the tier.
pub fn ring_expr(len: usize) -> Expr {
    let src: Vec<String> = (0..len).map(|k| format!("s{k}")).collect();
    parse(&format!("({})*", src.join(" - "))).expect("ring parses")
}

/// The word driving the ring: stations in protocol order.
pub fn ring_word(len: usize, steps: usize) -> Vec<Action> {
    (0..steps).map(|i| Action::nullary(format!("s{}", i % len).as_str())).collect()
}

/// A product of `loops` independent mutex loops, `(a0 − b0)* ‖ … `: the
/// reachable product space (3^loops interned states) is the classic
/// state-explosion shape that still fits a generous table budget.
pub fn product_expr(loops: usize) -> Expr {
    let mut expr = parse("(a0 - b0)*").expect("loop parses");
    for k in 1..loops {
        expr = Expr::par(expr, parse(&format!("(a{k} - b{k})*")).expect("loop parses"));
    }
    expr
}

/// A deterministic xorshift-driven random walk over the product space: each
/// step toggles one loop (acquire if idle, release if held), so consecutive
/// visits to the same `(state, action)` pair are hundreds of steps apart and
/// the transition memo thrashes.
pub fn product_word(loops: usize, steps: usize) -> Vec<Action> {
    let mut held = vec![false; loops];
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    (0..steps)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = (x % loops as u64) as usize;
            let name = if held[k] { format!("b{k}") } else { format!("a{k}") };
            held[k] = !held[k];
            Action::nullary(name.as_str())
        })
        .collect()
}

/// The quantified fallback shape (shared with the step benchmark).
pub fn tier_fallback_expr() -> Expr {
    parse("all p { (call(p) - perform(p))* }").expect("quantifier shape parses")
}

fn time_engine_ns(engine: &mut Engine, word: &[Action]) -> f64 {
    engine.reset();
    let t0 = Instant::now();
    for action in word {
        assert!(engine.try_execute(action), "benchmark word must stay permissible");
    }
    t0.elapsed().as_nanos() as f64 / word.len() as f64
}

/// Measures one workload: a tier-compiled engine against a `tier_budget = 0`
/// engine on the same word, interleaved min-of-`trials` timing, after a
/// lockstep verdict-equality pass.
pub fn measure_compile(
    scenario: &'static str,
    resident: bool,
    expr: &Expr,
    word: &[Action],
    tier_budget: usize,
    trials: usize,
) -> CompileRow {
    let mut plain = Engine::new(expr).expect("benchmark expression is closed");
    plain.set_tier_budget(0);
    let mut tiered = Engine::new(expr).expect("benchmark expression is closed");
    tiered.set_tier_auto(false);
    tiered.set_tier_budget(tier_budget);
    let after_compile = tiered.compile_tier();

    // Byte-identical verdicts before any timing.
    for action in word {
        assert_eq!(
            tiered.try_execute(action),
            plain.try_execute(action),
            "tiered and pure-CoW engines diverge on {scenario} at {action}"
        );
        debug_assert_eq!(tiered.state(), plain.state(), "states diverge on {scenario}");
    }

    // Interleaved min-of-trials, alternating which side goes first each
    // round, so scheduler noise and thermal drift hit both sides alike.
    let mut cow_ns = f64::INFINITY;
    let mut tier_ns = f64::INFINITY;
    let _ = time_engine_ns(&mut plain, word);
    let _ = time_engine_ns(&mut tiered, word);
    let hits_before = tiered.tier_stats().hits;
    let fallbacks_before = tiered.tier_stats().fallbacks;
    for t in 0..trials {
        if t % 2 == 0 {
            cow_ns = cow_ns.min(time_engine_ns(&mut plain, word));
            tier_ns = tier_ns.min(time_engine_ns(&mut tiered, word));
        } else {
            tier_ns = tier_ns.min(time_engine_ns(&mut tiered, word));
            cow_ns = cow_ns.min(time_engine_ns(&mut plain, word));
        }
    }
    let stats = tiered.tier_stats();
    CompileRow {
        scenario,
        resident,
        steps: word.len(),
        tier_budget,
        tables: after_compile.tables,
        table_states: after_compile.states,
        compile_micros: after_compile.compile_nanos as f64 / 1000.0,
        cow_ns,
        tier_ns,
        tier_hits: stats.hits - hits_before,
        tier_fallbacks: stats.fallbacks - fallbacks_before,
    }
}

/// Runs the whole tiered-execution experiment: two table-resident workloads
/// with memo-defeating working sets, and two fallback workloads where
/// compilation bails.
pub fn compile_experiment() -> Vec<CompileRow> {
    let trials = 5;
    let mut rows = Vec::new();
    // Resident: a 280-station protocol ring (281-state table; the 280-pair
    // working set overflows the 256-entry memo on the pure-CoW side).
    let ring = ring_expr(280);
    rows.push(measure_compile(
        "protocol-ring",
        true,
        &ring,
        &ring_word(280, 280 * 16),
        2048,
        trials,
    ));
    // Resident: the product of 8 mutex loops (3^8 = 6561 interned states)
    // under a deterministic random walk that defeats the memo.
    let product = product_expr(8);
    rows.push(measure_compile(
        "mutex-product",
        true,
        &product,
        &product_word(8, 8192),
        8192,
        trials,
    ));
    // Fallback: a quantified spine — compilation bails structurally, the
    // engine must keep pure-CoW speed.  The fallback rows compare two
    // architecturally identical step paths, so their gate (<= 1.05x) is all
    // noise floor: give them more trials than the resident rows.
    let fallback_trials = 11;
    rows.push(measure_compile(
        "quantified",
        false,
        &tier_fallback_expr(),
        &crate::stepbench::quant_word(16, 4096),
        DEFAULT_TIER_BUDGET,
        fallback_trials,
    ));
    // Fallback: the same ring under a starved budget — the root blows the
    // state budget, at most unservable sub-tiles compile, and every step
    // walks the tree through the tier's miss path.
    rows.push(measure_compile(
        "over-budget",
        false,
        &ring_expr(280),
        &ring_word(280, 280 * 8),
        64,
        fallback_trials,
    ));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resident_shapes_compile_to_root_tables() {
        let mut engine = Engine::new(&ring_expr(40)).unwrap();
        engine.set_tier_budget(256);
        let stats = engine.compile_tier();
        assert_eq!(stats.tables, 1, "the ring is one tile: {stats:?}");
        assert_eq!(stats.states, 41);
        let mut engine = Engine::new(&product_expr(4)).unwrap();
        engine.set_tier_budget(256);
        let stats = engine.compile_tier();
        assert_eq!(stats.tables, 1, "the product is one tile: {stats:?}");
        assert_eq!(stats.states, 81, "3^4 interned product states");
    }

    #[test]
    fn workload_words_commit_on_both_engines() {
        for (expr, word) in [
            (ring_expr(12), ring_word(12, 120)),
            (product_expr(3), product_word(3, 200)),
            (tier_fallback_expr(), crate::stepbench::quant_word(4, 64)),
        ] {
            let row = measure_compile("smoke", true, &expr, &word, 512, 1);
            assert!(row.cow_ns > 0.0 && row.tier_ns > 0.0);
        }
    }

    #[test]
    fn ring_working_set_defeats_the_memo_but_not_the_table() {
        let expr = ring_expr(280);
        let word = ring_word(280, 560);
        let mut tiered = Engine::new(&expr).unwrap();
        tiered.set_tier_budget(2048);
        let stats = tiered.compile_tier();
        assert!(stats.tables >= 1, "the ring must be resident at budget 2048: {stats:?}");
        for action in &word {
            assert!(tiered.try_execute(action));
        }
        let stats = tiered.tier_stats();
        assert_eq!(stats.fallbacks, 0, "every ring step must be a table hit: {stats:?}");
        assert!(stats.hits >= word.len() as u64);
    }
}

//! The session-oriented async runtime — per-shard task queues, completion
//! tickets, and a timer wheel.
//!
//! Sec. 7 of the paper frames the interaction manager as a *message-based
//! coordination service*: clients talk to it asynchronously over (persistent)
//! queues instead of calling it under a lock.  [`ManagerRuntime`] realizes
//! that shape on top of the sharded kernel:
//!
//! * **one worker thread per shard**, exclusively owning the shard's engine,
//!   reservation table, subscription registry, and log segment — the
//!   per-shard mutexes of [`InteractionManager`] are gone; a worker mutates
//!   its shard state with no interior locking at all;
//! * **an ordered task queue per shard**: submissions become tasks; a shard
//!   executes its tasks strictly in queue order;
//! * **completion tickets**: every submission returns a [`Ticket`]
//!   immediately — `wait()` for the synchronous round trip, `poll()` to
//!   pipeline, `then()` for callbacks — so clients keep dozens of requests
//!   in flight without blocking;
//! * **cross-shard actions as ordered enqueues**: a multi-owner submission
//!   enqueues one task onto *every* owner's queue, in ascending shard-id
//!   order, under a single enqueue lock.  The enqueue order *is* the 2PC
//!   lock order of the blocking manager: any two cross-shard tasks appear in
//!   the same relative order in every queue they share, so the rendezvous in
//!   which the owners vote and commit can never cycle — deadlock-freedom
//!   carries over from the blocking design by construction;
//! * **a hierarchical timer wheel** ([`crate::timer::TimerWheel`]) owns
//!   lease expiry: every leased grant schedules one timer, and advancing the
//!   clock fires exactly the due leases instead of scanning the reservation
//!   index.  The default *virtual clock* is advanced explicitly
//!   ([`ManagerRuntime::advance_time`]), which keeps deterministic tests
//!   deterministic; [`ClockMode::Wall`] drives the same wheel from a ticker
//!   thread;
//! * **optional durable submissions** ([`RuntimeOptions::durable`]): every
//!   session submission is journaled in a [`DurableQueue`] before dispatch
//!   and removed only when the client acknowledges the completion, so a
//!   simulated crash redelivers unacknowledged submissions — at-least-once,
//!   exactly the persistent-queue contract the paper cites;
//! * **dynamic repartitioning** ([`ManagerRuntime::add_constraint`],
//!   [`ManagerRuntime::couple`]): workflow ensembles grow at runtime, so the
//!   partition is a *versioned* artifact rather than a construct-time one.
//!   The shard topology (router + queues) lives behind an epoch-versioned
//!   swappable snapshot; every task is stamped with the epoch it was routed
//!   under, and a worker that dequeues a stale-stamped task re-checks the
//!   route and *retries* it through the current topology instead of
//!   misdelivering it.  A disjoint constraint is applied as a pure
//!   shard-append (no existing shard is touched, zero migration); a coupling
//!   constraint quiesces **only** the affected shards — each drains to a
//!   pause barrier and hands its whole state (engine, reservation table,
//!   subscription registry, log segment) to the coordinator, which replays
//!   the covered history into the new components, widens reservation owner
//!   sets, promotes widened subscriptions to cross-shard entries, installs
//!   the next topology epoch, and resumes the paused workers — while every
//!   unaffected shard keeps serving.
//!
//! The execution semantics are those of the blocking [`InteractionManager`]:
//! per-action outcomes, the merged log, and the statistics counters agree
//! with the blocking manager on any sequentially submitted workload (see the
//! equivalence property tests).

use crate::durability::{
    self, durability_err, DurabilityHub, Manifest, QueueCheckpoint, ShardCapture, StatDelta,
    TopologyCheckpoint, VaultQueueBackend, WalRecord,
};
use crate::error::{ManagerError, ManagerResult, SubmitError};
use crate::manager::{
    CrossEntry, CrossSubscriptions, ManagerStats, ProtocolVariant, Reservation, SharedStats,
};
use crate::queue::{DurableQueue, PoolCore, QueueBackend};
use crate::subscription::{ClientId, Notification, SubscriptionRegistry};
use crate::ticket::{completed, ticket, Ticket, TicketIssuer, WakeBatch};
use crate::timer::TimerWheel;
use crossbeam::channel::{unbounded, Receiver, SendError, Sender, TryRecvError};
use ix_core::{parse, Action, Alphabet, Component, Expr, Partition};
use ix_durable::{FileVault, FsyncPolicy, Vault, META_STREAM, QUEUE_STREAM};
use ix_state::{
    empty_reservation_fingerprint, Engine, Route, ShardRouter, StateRef, TierStats,
    DEFAULT_TIER_BUDGET,
};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the runtime's logical clock advances.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockMode {
    /// The clock only moves when [`ManagerRuntime::advance_time`] is called —
    /// fully deterministic, the mode every test uses.
    Virtual,
    /// A ticker thread advances the clock by one logical unit per `tick` of
    /// wall time, so leases expire without anybody calling `advance_time`.
    Wall {
        /// Wall-clock duration of one logical time unit.
        tick: Duration,
    },
}

/// Construction options of a [`ManagerRuntime`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuntimeOptions {
    /// The coordination-protocol variant (as for [`InteractionManager`]).
    pub variant: ProtocolVariant,
    /// Journal submissions in a [`DurableQueue`] and redeliver
    /// unacknowledged ones after a simulated crash.
    pub durable: bool,
    /// Clock mode for lease expiry.
    pub clock: ClockMode,
    /// Per-table state budget of the shard engines' execution tier (0
    /// disables tiering).  Shard workers compile hot engines in their idle
    /// slots — never on the submission path — and migrations invalidate the
    /// tables of every affected shard.
    pub tier_budget: usize,
    /// Conditional-vote cascading on the coalesced cross-shard execute
    /// rendezvous (default on): a voter whose speculative chain runs through
    /// still-undecided predecessors deposits a *conditional* vote tagged
    /// with its assumptions instead of holding the vote back, so an
    /// all-commit chain cascades to decided without one rendezvous park per
    /// barrier.  Off reproduces the PR-4 unconditional-votes-only protocol
    /// exactly; the lockstep property tests prove the two modes (and the
    /// blocking manager) decide identically.
    pub cascade: bool,
    /// Record a queueing-delay sample per completed execute — the time a
    /// task waited in its shard queue vs the time the worker spent serving
    /// it.  Drained via [`ManagerRuntime::drain_queue_samples`]; off by
    /// default (each sample costs two clock reads on the worker).
    pub queue_metrics: bool,
    /// Fsync policy of the file-backed vault opened by
    /// [`ManagerRuntime::with_durability_path`] (ignored when the vault is
    /// handed in directly, which carries its own policy).
    pub fsync: FsyncPolicy,
    /// Maximum number of pending client tasks per shard queue (0 =
    /// unbounded, the default).  With a limit set, session submissions pass
    /// a per-shard credit gate: a single atomic add on the fast path, a
    /// [`crate::error::SubmitError::Overloaded`] backpressure ticket (with a
    /// retry-after hint) when the owning shard is full.  Cross-shard
    /// submissions reserve a credit on *every* owner queue up front, so a
    /// 2PC chain can never half-enqueue.  Confirm/abort/expiry releases are
    /// never shed — shedding them would leak reservations.
    pub queue_limit: usize,
    /// The load-shedding ladder applied when `queue_limit` is set.
    pub shed: ShedPolicy,
    /// Number of pool workers draining the shard queues (0 = one per
    /// available hardware thread).  Shards are decoupled from OS threads:
    /// each worker exclusively owns the *set* of shards the placement table
    /// assigns it and drains their queues in bounded run-to-completion
    /// slices, so a 64-shard partition on an 8-core host runs 8 threads,
    /// not 64.  `worker_threads = shards` reproduces the historical
    /// thread-per-shard layout exactly (1:1 placement).
    pub worker_threads: usize,
    /// Load-driven placement: with `Some(period)`, a background rebalancer
    /// samples the per-shard load signal every `period` and, when one shard
    /// runs sustained-hot against the mean, isolates it onto its own worker
    /// and co-locates the cold shards elsewhere.  Placement moves are
    /// ownership transfers only — no history replay, no topology epoch
    /// bump.  `None` (the default) keeps placement static;
    /// [`ManagerRuntime::rebalance_now`] runs one pass on demand either
    /// way.
    pub rebalance_every: Option<Duration>,
    /// Automatic checkpointing period in logical clock ticks (0 = off).
    /// Arms a timer-wheel entry that triggers a full
    /// [`ManagerRuntime::checkpoint`] every `checkpoint_every` ticks —
    /// under [`ClockMode::Wall`] that is wall time, under the virtual
    /// clock it follows [`ManagerRuntime::advance_time`].  Ignored on
    /// non-durable runtimes.
    pub checkpoint_every: u64,
}

impl Default for RuntimeOptions {
    fn default() -> RuntimeOptions {
        RuntimeOptions {
            variant: ProtocolVariant::Simple,
            durable: false,
            clock: ClockMode::Virtual,
            tier_budget: DEFAULT_TIER_BUDGET,
            cascade: true,
            queue_metrics: false,
            fsync: FsyncPolicy::Never,
            queue_limit: 0,
            shed: ShedPolicy::default(),
            worker_threads: 0,
            rebalance_every: None,
            checkpoint_every: 0,
        }
    }
}

/// Graceful-degradation ladder of the bounded-admission gate: request
/// classes shed in priority order as a shard queue fills, so committed
/// workflow progress survives longest.
///
/// * **Probes** — `is_permitted` queries and subscription registrations —
///   are shed first, once the queue passes `probe_watermark × queue_limit`.
///   A lost probe costs a retry; it holds no protocol state.
/// * **Speculative** work — multi-owner execute rendezvous (the cascade
///   batches) — is shed at `speculative_watermark × queue_limit`: it fans
///   one submission across every owner queue, so it amplifies load exactly
///   when the runtime can least afford it.
/// * **Commits** — single-owner execute/ask and cross-shard asks — use the
///   full limit.
/// * Releases (confirm / abort / expiry / redelivery) are never shed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShedPolicy {
    /// Percentage of `queue_limit` above which probes and subscription
    /// registrations are shed (default 50).
    pub probe_watermark_pct: u8,
    /// Percentage of `queue_limit` above which speculative multi-owner
    /// executes are shed (default 75).
    pub speculative_watermark_pct: u8,
    /// Depth-EWMA watermark scaling (default on).  The static percentages
    /// describe the right ladder for a queue that breathes; under
    /// *sustained* pressure they admit sheddable traffic right up to the
    /// same watermarks while commits fight for the remainder.  Adaptive
    /// mode scales both watermarks by a factor that falls linearly from
    /// 1.0 to 0.5 as the shard's depth EWMA climbs from 25% to 75% of the
    /// limit — probes and speculative fan-out shed *earlier* the longer
    /// the queue has been deep, reserving the freed credits for commit
    /// traffic.  Both watermarks scale by the same factor and the commit
    /// class never scales, so the strict probe → speculative → commit
    /// shed order is preserved at every pressure level.
    pub adaptive: bool,
}

impl Default for ShedPolicy {
    fn default() -> ShedPolicy {
        ShedPolicy { probe_watermark_pct: 50, speculative_watermark_pct: 75, adaptive: true }
    }
}

impl ShedPolicy {
    /// The admission cap (in queued task units) of a request class under
    /// `limit`, given the shard's current depth-EWMA pressure in percent of
    /// the limit.  Watermark caps are at least 1 so a tiny limit still
    /// admits idle-system probes.
    fn cap(&self, class: AdmitClass, limit: usize, pressure_pct: usize) -> usize {
        // Scale factor in percent: 100 below a quarter of the limit, then
        // one point per pressure point down to 50 at three quarters.
        let scale = if !self.adaptive {
            100
        } else {
            (125usize.saturating_sub(pressure_pct)).clamp(50, 100)
        };
        let pct =
            |p: u8| ((limit.saturating_mul(p as usize).saturating_mul(scale)) / 10_000).max(1);
        match class {
            AdmitClass::Probe => pct(self.probe_watermark_pct),
            AdmitClass::Speculative => pct(self.speculative_watermark_pct),
            AdmitClass::Commit => limit,
        }
    }
}

/// Admission class of a submission, in shed order (see [`ShedPolicy`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AdmitClass {
    /// `is_permitted` queries and subscription registrations.
    Probe,
    /// Multi-owner combined executes (the speculative cascade batches).
    Speculative,
    /// Single-owner ask/execute and cross-shard asks.
    Commit,
}

/// Whether an enqueue already holds its queue credit(s).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Credit {
    /// The session path reserved the credits through
    /// [`ShardGate::try_admit`] before journaling/dispatching.
    Held,
    /// Forced traffic — confirm/abort/expiry, durable redelivery, and
    /// stale-route re-dispatch — charges unconditionally at enqueue and is
    /// never shed: shedding a release would leak reservations, and shedding
    /// a re-dispatch would drop an already-accepted submission.
    Charge,
}

/// The per-shard credit gate of bounded admission.  One gate per shard id,
/// carried across repartitions by [`Arc`] (topology snapshots share the
/// gates of the shards they retain), fully inert when
/// [`RuntimeOptions::queue_limit`] is 0.
///
/// `depth` counts *queued client task units* — 1 per single/cross/exec
/// message, the window length per batch message, 0 for control tasks.  The
/// fast path is one `fetch_add` on admission and one on release; there is
/// no lock anywhere on the credit path.  Because forced traffic charges
/// unconditionally, `depth` may transiently exceed `limit` under heavy
/// confirm/abort/redelivery load — admitted (sheddable) load alone never
/// does.
struct ShardGate {
    /// Queue-depth limit in task units (0 = gate inert).
    limit: usize,
    /// The shed ladder carving per-class caps out of `limit`.
    shed: ShedPolicy,
    /// Currently queued task units (signed: release-before-charge races of
    /// concurrent enqueues may dip a reading below zero transiently).
    depth: AtomicI64,
    /// High-water mark of `depth`.
    peak: AtomicI64,
    /// Probes shed at the probe watermark.
    shed_probes: AtomicU64,
    /// Multi-owner executes shed at the speculative watermark.
    shed_speculative: AtomicU64,
    /// Commits shed at the full limit.
    shed_commits: AtomicU64,
    /// EWMA (α = 1/8) of enqueue wait, nanoseconds; written only by the
    /// owning worker.
    wait_ewma_ns: AtomicU64,
    /// EWMA (α = 1/8) of per-task service time, nanoseconds.
    service_ewma_ns: AtomicU64,
    /// EWMA (α = 1/8) of queue depth in task units, sampled by the owning
    /// worker at every completed task.  Drives the adaptive watermark
    /// scaling ([`ShedPolicy::adaptive`]) and the sustained-hot detection
    /// of the placement rebalancer — a transient burst barely moves it, a
    /// queue that *stays* deep saturates it.
    depth_ewma: AtomicU64,
}

impl ShardGate {
    fn new(limit: usize, shed: ShedPolicy) -> ShardGate {
        ShardGate {
            limit,
            shed,
            depth: AtomicI64::new(0),
            peak: AtomicI64::new(0),
            shed_probes: AtomicU64::new(0),
            shed_speculative: AtomicU64::new(0),
            shed_commits: AtomicU64::new(0),
            wait_ewma_ns: AtomicU64::new(0),
            service_ewma_ns: AtomicU64::new(0),
            depth_ewma: AtomicU64::new(0),
        }
    }

    /// Whether the gate enforces a limit at all.
    fn active(&self) -> bool {
        self.limit > 0
    }

    /// Reserves `units` credits under the class's cap — the one-`fetch_add`
    /// fast path.  On overflow the reservation is rolled back, the class's
    /// shed counter bumps, and the error carries the retry-after hint.
    fn try_admit(&self, units: usize, class: AdmitClass) -> Result<(), SubmitError> {
        if !self.active() || units == 0 {
            return Ok(());
        }
        let cap = self.shed.cap(class, self.limit, self.pressure_pct()) as i64;
        let prev = self.depth.fetch_add(units as i64, Ordering::Relaxed);
        if prev + units as i64 > cap {
            self.depth.fetch_sub(units as i64, Ordering::Relaxed);
            let shed = match class {
                AdmitClass::Probe => &self.shed_probes,
                AdmitClass::Speculative => &self.shed_speculative,
                AdmitClass::Commit => &self.shed_commits,
            };
            shed.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Overloaded { retry_after: self.retry_after() });
        }
        self.peak.fetch_max(prev + units as i64, Ordering::Relaxed);
        Ok(())
    }

    /// Unconditionally charges `units` credits (forced traffic).
    fn charge(&self, units: usize) {
        if !self.active() || units == 0 {
            return;
        }
        let now = self.depth.fetch_add(units as i64, Ordering::Relaxed) + units as i64;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Returns `units` credits when the worker dequeues the message.
    fn release(&self, units: usize) {
        if !self.active() || units == 0 {
            return;
        }
        self.depth.fetch_sub(units as i64, Ordering::Relaxed);
    }

    /// Folds one completed task's (wait, service) pair into the EWMAs and
    /// samples the current depth into the pressure EWMA.  Called only by
    /// the owning worker, so plain load/store is race-free.
    fn observe(&self, wait_ns: u64, service_ns: u64) {
        let wait = self.wait_ewma_ns.load(Ordering::Relaxed);
        self.wait_ewma_ns.store(wait - wait / 8 + wait_ns / 8, Ordering::Relaxed);
        let service = self.service_ewma_ns.load(Ordering::Relaxed);
        self.service_ewma_ns.store(service - service / 8 + service_ns / 8, Ordering::Relaxed);
        // The depth EWMA is stored in 1/16 task units so shallow queues
        // (depth < 8) still register instead of truncating to zero.
        let depth = self.depth.load(Ordering::Relaxed).max(0) as u64;
        let ewma = self.depth_ewma.load(Ordering::Relaxed);
        self.depth_ewma.store(ewma - ewma / 8 + depth * 2, Ordering::Relaxed);
    }

    /// The instantaneous queued depth in task units (0 on unbounded gates,
    /// which never charge credits).
    fn queued_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed).max(0) as usize
    }

    /// The sustained depth pressure: the depth EWMA as a percentage of the
    /// limit (0 on unbounded gates).
    fn pressure_pct(&self) -> usize {
        if self.limit == 0 {
            return 0;
        }
        (self.depth_ewma.load(Ordering::Relaxed) as usize / 16).saturating_mul(100) / self.limit
    }

    /// The backpressure hint: roughly how long the current backlog needs to
    /// drain at the observed service rate, clamped to [100µs, 100ms].
    fn retry_after(&self) -> Duration {
        let depth = self.depth.load(Ordering::Relaxed).max(1) as u64;
        let service = self.service_ewma_ns.load(Ordering::Relaxed).max(1_000);
        Duration::from_nanos((service.saturating_mul(depth)).clamp(100_000, 100_000_000))
    }

    /// The load row this gate contributes to [`LoadReport`].
    fn load(&self, shard: usize) -> ShardLoad {
        ShardLoad {
            shard,
            limit: self.limit,
            depth: self.depth.load(Ordering::Relaxed).max(0) as usize,
            peak_depth: self.peak.load(Ordering::Relaxed).max(0) as usize,
            shed_probes: self.shed_probes.load(Ordering::Relaxed),
            shed_speculative: self.shed_speculative.load(Ordering::Relaxed),
            shed_commits: self.shed_commits.load(Ordering::Relaxed),
            wait_ewma_ns: self.wait_ewma_ns.load(Ordering::Relaxed),
            service_ewma_ns: self.service_ewma_ns.load(Ordering::Relaxed),
            depth_ewma: self.depth_ewma.load(Ordering::Relaxed) as usize / 16,
        }
    }
}

/// One shard's row of a [`LoadReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// The shard id.
    pub shard: usize,
    /// The configured depth limit (0 = unbounded).
    pub limit: usize,
    /// Currently queued client task units.
    pub depth: usize,
    /// High-water mark of `depth` since construction.
    pub peak_depth: usize,
    /// Probes/subscriptions shed at the probe watermark.
    pub shed_probes: u64,
    /// Multi-owner executes shed at the speculative watermark.
    pub shed_speculative: u64,
    /// Commits shed at the full limit.
    pub shed_commits: u64,
    /// EWMA of enqueue wait, nanoseconds.
    pub wait_ewma_ns: u64,
    /// EWMA of per-task service time, nanoseconds.
    pub service_ewma_ns: u64,
    /// EWMA of queue depth in task units — the sustained-pressure signal
    /// behind adaptive watermark scaling and hot-shard rebalancing.
    pub depth_ewma: usize,
}

impl ShardLoad {
    /// Total submissions shed on this shard.
    pub fn shed_total(&self) -> u64 {
        self.shed_probes + self.shed_speculative + self.shed_commits
    }
}

/// Per-shard load snapshot ([`ManagerRuntime::load_report`]): queue depths,
/// high-water marks, shed counts, and the wait/service EWMAs the
/// retry-after hints are derived from.  The same signal feeds hot-shard
/// detection: [`LoadReport::hottest`] names the shard a
/// [`ManagerRuntime::couple`]-style repartition should split next.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// The configured per-shard depth limit (0 = unbounded).
    pub queue_limit: usize,
    /// One row per shard, indexed by shard id.
    pub shards: Vec<ShardLoad>,
}

impl LoadReport {
    /// The busiest shard: deepest queue, ties broken by enqueue-wait EWMA.
    pub fn hottest(&self) -> Option<&ShardLoad> {
        self.shards.iter().max_by_key(|s| (s.depth, s.wait_ewma_ns))
    }

    /// Total submissions shed across every shard.
    pub fn total_shed(&self) -> u64 {
        self.shards.iter().map(|s| s.shed_total()).sum()
    }

    /// The deepest high-water mark across every shard.
    pub fn peak_depth(&self) -> usize {
        self.shards.iter().map(|s| s.peak_depth).max().unwrap_or(0)
    }
}

/// Scheduling counters of the worker pool
/// ([`ManagerRuntime::sched_stats`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Pool worker threads serving the shard queues.
    pub workers: usize,
    /// The placement table: `placement[shard]` is the worker currently
    /// serving that shard.
    pub placement: Vec<usize>,
    /// Hot-shard isolations the rebalancer has performed.
    pub rebalances: u64,
    /// The most recently isolated shard, if any isolation ever ran.
    pub last_isolated: Option<usize>,
    /// Checkpoints cut automatically by the timer wheel
    /// ([`RuntimeOptions::checkpoint_every`]).
    pub auto_checkpoints: u64,
}

/// Queued client task units a channel message represents — the unit of the
/// [`ShardGate`] credit accounting.  Control messages (pause barriers,
/// snapshots, compiles, checkpoints, stop markers) are free: they are
/// runtime-internal and never admitted.
fn task_units(task: &Task) -> usize {
    match task {
        Task::Single(_) | Task::Cross(_) | Task::Exec(_) => 1,
        Task::Batch(tasks) => tasks.len(),
        Task::Pause(_)
        | Task::Snapshot(_)
        | Task::Compile(_)
        | Task::Checkpoint(_)
        | Task::Stop => 0,
    }
}

/// The global rendezvous sequence of a queued task, for the help-frame
/// ordering bound ([`PoolCtl::seq`]).  Non-rendezvous tasks never block on
/// another shard, so they are unordered (always serveable).
fn task_seq(task: &Task) -> u64 {
    match task {
        Task::Cross(task) => task.seq,
        Task::Exec(task) => task.seq,
        _ => 0,
    }
}

/// All-or-nothing credit reservation for one classified submission: one
/// unit on the single owner, or one unit on *every* owner of a multi-owner
/// route (reserved in ascending order, rolled back completely on the first
/// full gate) — a cross-shard chain can never half-enqueue.  `Route::None`
/// reserves nothing (resolved inline).
fn admit_route(topo: &Topology, route: &Route, class: AdmitClass) -> Result<(), SubmitError> {
    match route {
        Route::None => Ok(()),
        Route::Single(shard) => topo.gates[*shard].try_admit(1, class),
        Route::Multi(owners) => {
            for (i, &owner) in owners.iter().enumerate() {
                if let Err(e) = topo.gates[owner].try_admit(1, class) {
                    for &acquired in &owners[..i] {
                        topo.gates[acquired].release(1);
                    }
                    return Err(e);
                }
            }
            Ok(())
        }
    }
}

/// Session-path admission of one action: classifies it and reserves
/// credits per [`admit_route`], with the class chosen by the route arity.
/// Free (no classify, no atomics) on unbounded runtimes; non-concrete
/// actions reserve nothing (they fail inline before any queue).
fn admit_submission(
    topo: &Topology,
    action: &Action,
    single: AdmitClass,
    multi: AdmitClass,
) -> Result<(), SubmitError> {
    if !topo.bounded || !action.is_concrete() {
        return Ok(());
    }
    let route = topo.router.classify(action);
    let class = match &route {
        Route::Multi(_) => multi,
        _ => single,
    };
    admit_route(topo, &route, class)
}

/// The result a completion ticket resolves to.
#[derive(Clone, Debug, PartialEq)]
pub enum Completion {
    /// An ask was granted; confirm or abort with the reservation id (0 under
    /// the `Combined` variant, which commits immediately).
    Granted {
        /// Reservation to confirm later.
        reservation: u64,
    },
    /// An ask or execute was denied.
    Denied,
    /// A combined execute committed.
    Executed {
        /// Status-change notifications produced by the commit.
        notifications: Vec<Notification>,
    },
    /// A confirm committed.
    Confirmed {
        /// Status-change notifications produced by the commit.
        notifications: Vec<Notification>,
    },
    /// An abort released the reservation.
    Aborted {
        /// The released reservation.
        reservation: Reservation,
    },
    /// A subscription was registered; carries the current status.
    Subscribed {
        /// Whether the action is currently permitted.
        permitted: bool,
    },
    /// A subscription was removed.
    Unsubscribed,
    /// A status query resolved.
    Status {
        /// Whether the action is currently permitted.
        permitted: bool,
    },
    /// A lease-expiry task ran; `None` if the reservation was already gone.
    Expired {
        /// The rolled-back reservation, if one expired.
        reservation: Option<Reservation>,
    },
    /// The submission failed.
    Failed {
        /// The failure.
        error: ManagerError,
    },
}

/// Journal record of a durable submission.
#[derive(Clone, Debug)]
pub(crate) struct SubmissionRecord {
    pub(crate) client: ClientId,
    pub(crate) op: DurableOp,
}

/// The operation a durable submission journals.
#[derive(Clone, Debug)]
pub(crate) enum DurableOp {
    Ask { action: Action },
    Execute { action: Action },
    Confirm { id: u64 },
    Abort { id: u64 },
}

/// A lease-expiry timer payload: which reservation to expire, on which
/// owners.
#[derive(Clone, Debug)]
struct ExpiryEvent {
    id: u64,
    owners: Vec<usize>,
}

/// Everything the runtime's timer wheel can fire.
#[derive(Clone, Debug)]
enum TimerEvent {
    /// A lease ran out.
    Expiry(ExpiryEvent),
    /// The periodic checkpoint timer ([`RuntimeOptions::checkpoint_every`])
    /// came due: cut a checkpoint and re-arm.
    Checkpoint,
}

/// One immutable snapshot of the runtime's shard topology: the
/// epoch-versioned router and the task-queue senders (index = shard id),
/// plus the joined expression and alphabet the runtime currently enforces.
///
/// Submissions clone the current snapshot, classify against its router, and
/// stamp their tasks with its epoch.  A repartition installs a *new*
/// snapshot (existing queues keep their senders — shard ids are stable, new
/// shards append), so a worker that dequeues a task stamped with an older
/// epoch knows the routing decision may be stale and re-checks it against
/// the current topology instead of misdelivering the task.
struct Topology {
    router: ShardRouter,
    queues: Vec<Sender<Task>>,
    /// Per-shard admission gates, aligned with `queues`.  Shared by [`Arc`]
    /// across topology snapshots — a repartition carries the gates of
    /// retained shards forward, so credits charged under the old snapshot
    /// release correctly under the new one.
    gates: Vec<Arc<ShardGate>>,
    /// Whether any gate enforces a limit — the one-branch fast path that
    /// keeps unbounded runtimes free of admission work.
    bounded: bool,
    /// The worker pool (placement table + parkers): every enqueue wakes the
    /// worker the placement table names for the target shard.  Shared with
    /// [`RuntimeShared`]; carried on the topology so the enqueue layer can
    /// wake without an extra indirection.
    pool: Arc<PoolCtl>,
    expr: Expr,
    alphabet: Alphabet,
}

impl Topology {
    fn epoch(&self) -> u64 {
        self.router.epoch()
    }
}

/// The swappable topology slot.  Held strongly by the runtime handle, its
/// sessions, and the wall-clock ticker; workers reach it through the
/// [`Weak`] in [`RuntimeShared`], so dropping every strong handle still
/// drops the queue senders, disconnects the channels, and lets the workers
/// exit — exactly the pre-repartitioning shutdown semantics.
type TopologySlot = RwLock<Arc<Topology>>;

/// Reads the current topology snapshot.
fn read_topology(slot: &TopologySlot) -> Arc<Topology> {
    Arc::clone(&slot.read().unwrap_or_else(|e| e.into_inner()))
}

/// A topology snapshot whose queue table covers every shard in `owners`.
///
/// A migration widens reservation-index owner sets shortly *before* it
/// installs the grown topology, so a reader that just loaded a widened
/// owner set may still hold the previous epoch's snapshot — indexing its
/// queue table with the new shard id would be out of bounds.  The install
/// is already underway at that point, so re-reading until the table covers
/// the owners closes the window.
fn covering_topology(slot: &TopologySlot, owners: &[usize]) -> Arc<Topology> {
    let needed = owners.iter().copied().max().map_or(0, |m| m + 1);
    let mut topo = read_topology(slot);
    while topo.queues.len() < needed {
        std::thread::yield_now();
        topo = read_topology(slot);
    }
    topo
}

/// Live counters of the repartitioning machinery (see
/// [`RepartitionStats`]).
#[derive(Debug, Default)]
struct RepartCounters {
    repartitions: AtomicU64,
    migrated_shard_states: AtomicU64,
    replayed_actions: AtomicU64,
    migrated_reservations: AtomicU64,
    migrated_subscriptions: AtomicU64,
    rerouted_tasks: AtomicU64,
}

/// Counters of the dynamic-repartitioning machinery.  The headline
/// invariant: a *disjoint* constraint addition leaves
/// `migrated_shard_states` untouched — it is a pure shard-append.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepartitionStats {
    /// Number of topology epochs installed after construction.
    pub repartitions: u64,
    /// Number of shard states quiesced and handed through a migration
    /// (0 for disjoint additions).
    pub migrated_shard_states: u64,
    /// Log entries replayed into newly created components.
    pub replayed_actions: u64,
    /// Reservations whose owner set was widened onto a new shard.
    pub migrated_reservations: u64,
    /// Shard-local subscriptions promoted to cross-shard entries.
    pub migrated_subscriptions: u64,
    /// Tasks whose routing was found stale after an epoch change and that
    /// were retried through the current topology.
    pub rerouted_tasks: u64,
}

/// Everything a worker, a session, and the runtime handle share.  Note that
/// the task-queue *senders* are deliberately **not** strongly held in here:
/// workers hold only receivers plus a weak topology handle, so dropping the
/// runtime and its sessions disconnects the queues and the workers exit.
struct RuntimeShared {
    variant: ProtocolVariant,
    /// Weak handle onto the swappable topology (see [`TopologySlot`]).
    topology: Weak<TopologySlot>,
    /// Mirror of the installed topology's epoch: one relaxed load decides
    /// whether a dequeued task was routed against the current partition
    /// (the common case) or needs the stale-route re-check.
    epoch: AtomicU64,
    /// Serializes enqueues that touch more than one queue.  Holding this
    /// lock across the ascending-order sends is what makes the relative
    /// order of any two multi-owner tasks identical in every queue they
    /// share — the queue-order analogue of the blocking manager's
    /// ascending-shard-id lock order.  Migration pause barriers are sent
    /// under the same lock, so a multi-owner task is ordered entirely
    /// before or entirely after a quiescence point on every queue they
    /// share — never half/half.
    cross_enqueue: Mutex<()>,
    reservation_index: Mutex<HashMap<u64, Vec<usize>>>,
    cross_subscriptions: Mutex<CrossSubscriptions>,
    orphan_subscriptions: Mutex<SubscriptionRegistry>,
    notification_channels: Mutex<HashMap<ClientId, Sender<Notification>>>,
    /// Number of registered cross-shard subscription entries — commits skip
    /// the registry lock entirely while this is zero (the common case).
    cross_entry_count: AtomicU64,
    timers: Mutex<TimerWheel<TimerEvent>>,
    /// Tier budget handed to every shard engine — including the ones a
    /// repartition spawns after construction.
    tier_budget: usize,
    durable: Option<Mutex<DurableQueue<SubmissionRecord>>>,
    /// The write-ahead vault behind the durable runtime (`None` = the
    /// in-memory runtime).  Workers journal shard-stream records through
    /// their own [`ShardState::wal`] clone; this handle serves the
    /// meta-stream events and the checkpoint/recovery machinery.
    durability: Option<Arc<DurabilityHub>>,
    clock: AtomicU64,
    log_seq: AtomicU64,
    next_reservation: AtomicU64,
    stats: SharedStats,
    repart: RepartCounters,
    /// Conditional-vote cascading enabled (see [`RuntimeOptions::cascade`]).
    cascade: bool,
    /// Per-shard published reservation fingerprints: updated by the owning
    /// worker after every reservation mutation, read by whoever verifies a
    /// conditional vote's validity tag.  Absent shard = empty table.
    reservation_fps: Mutex<HashMap<usize, u64>>,
    /// Counters of the cascading machinery (not part of the protocol stats —
    /// cascade-on and cascade-off runs produce identical [`ManagerStats`]).
    cascade_counters: CascadeCounters,
    /// Queueing-delay sampling enabled (see [`RuntimeOptions::queue_metrics`]).
    queue_metrics: bool,
    /// (enqueue-wait, service) nanosecond pairs, one per completed execute,
    /// flushed by the workers once per drain.
    queue_samples: Mutex<Vec<(u64, u64)>>,
    /// Per-shard admission limit (see [`RuntimeOptions::queue_limit`]) —
    /// kept here so repartitions gate their new shards identically.
    queue_limit: usize,
    /// The shed ladder of bounded admission.
    shed: ShedPolicy,
    /// The worker pool: placement table, parkers, the slot bench, and the
    /// rebalancer state.  Shards are scheduling units; workers are the OS
    /// threads that serve them (see the worker-pool section of
    /// ARCHITECTURE.md).
    pool: Arc<PoolCtl>,
    /// Automatic checkpoint period in logical ticks (0 = off); mirrors
    /// [`RuntimeOptions::checkpoint_every`].
    checkpoint_every: u64,
    /// Checkpoints cut by the timer wheel (diagnostics).
    auto_checkpoints: AtomicU64,
}

/// Enqueue-instant stamp of a submission: taken when queueing-delay
/// sampling *or* bounded admission is on (the gate EWMAs feed the
/// retry-after hints), skipped otherwise — the two clock reads stay off the
/// default path.
fn stamp_submitted(shared: &RuntimeShared) -> Option<Instant> {
    (shared.queue_metrics || shared.queue_limit > 0).then(Instant::now)
}

/// Counters of the conditional-vote cascade (all relaxed).
#[derive(Default)]
struct CascadeCounters {
    /// Conditional votes deposited.
    conditional_votes: AtomicU64,
    /// Conditional votes promoted to unconditional yes by a verified tag.
    promoted_votes: AtomicU64,
    /// Conditional votes cleared because a task they assumed was denied.
    invalidated_votes: AtomicU64,
    /// Commit decisions completed by at least one promoted vote — chains
    /// that skipped a rendezvous round trip.
    cascaded_commits: AtomicU64,
}

/// Snapshot of the conditional-vote cascade counters
/// ([`ManagerRuntime::cascade_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CascadeStats {
    /// Conditional votes deposited.
    pub conditional_votes: u64,
    /// Conditional votes promoted to unconditional yes by a verified tag.
    pub promoted_votes: u64,
    /// Conditional votes cleared because a task they assumed was denied.
    pub invalidated_votes: u64,
    /// Commit decisions that included at least one promoted vote.
    pub cascaded_commits: u64,
}

/// Sort key of a per-shard log entry.  Cross-shard commits act as epoch
/// boundaries: their key is `(own seq, 0, 0)`, and a single-owner commit is
/// keyed by `(seq of the last cross-shard commit applied on its shard, 1,
/// unique sub-sequence)`.  Sorting the merged segments by this key yields a
/// legal linearization even though shard workers run (and speculate) at
/// different speeds: per-shard commit order is preserved exactly, and
/// single-owner commits of *different* shards within the same epoch have
/// disjoint alphabets (they belong to different sync-components), so any
/// relative order replays.
pub(crate) type LogKey = (u64, u8, u64);

/// One shard's state, exclusively owned by its worker thread — no lock.
struct ShardState {
    id: usize,
    engine: Engine,
    reservations: BTreeMap<u64, Reservation>,
    subscriptions: SubscriptionRegistry,
    log: Vec<(LogKey, Action)>,
    /// Sequence number of the last cross-shard commit applied on this shard
    /// — the epoch component of single-owner log keys.
    epoch: u64,
    /// Write-ahead hub of the durable runtime (`None` = durability off).
    /// This worker is the *only* writer of its shard stream, so appends need
    /// no coordination.
    wal: Option<Arc<DurabilityHub>>,
    /// Sum of the statistics deltas of every record this shard's stream ever
    /// carried — including records a checkpoint has since truncated.
    /// Snapshotted with the shard; recovery sums the bases plus the live
    /// tails to rebuild the global counters.
    stat_base: StatDelta,
}

impl ShardState {
    fn permitted_considering_reservations(&self, action: &Action) -> bool {
        self.engine.permitted_after(self.reservations.values().map(|r| &r.action), action)
    }

    /// Appends one record to this shard's write-ahead stream and folds its
    /// statistics delta into the shard's base.  No-op when durability is off.
    fn journal(&mut self, record: WalRecord) {
        if let Some(hub) = &self.wal {
            self.stat_base.add(&record.delta());
            hub.log_shard(self.id, &record);
        }
    }

    fn journal_commit(&mut self, key: LogKey, action: &Action, is_primary: bool, delta: StatDelta) {
        if self.wal.is_some() {
            self.journal(WalRecord::Commit { key, action: action.clone(), is_primary, delta });
        }
    }

    fn journal_reserve(&mut self, reservation: &Reservation, delta: StatDelta) {
        if self.wal.is_some() {
            self.journal(WalRecord::Reserve { reservation: reservation.clone(), delta });
        }
    }

    fn journal_release(&mut self, id: u64, delta: StatDelta) {
        if self.wal.is_some() {
            self.journal(WalRecord::Release { id, delta });
        }
    }

    /// The checkpoint capture of this shard: the CoW state handle, the
    /// tables, and the stream offset the snapshot covers — taken at a task
    /// boundary, so state and offset are exactly consistent.
    fn capture(&self) -> Option<ShardCapture> {
        let hub = self.wal.as_ref()?;
        Some(ShardCapture {
            shard: self.id,
            covered: hub.vault().stream_len(DurabilityHub::shard_stream(self.id)),
            epoch: self.epoch,
            accepted: self.engine.accepted(),
            rejected: self.engine.rejected(),
            state: self.engine.state_handle().clone(),
            log: self.log.clone(),
            reservations: self.reservations.values().cloned().collect(),
            subscriptions: self.subscriptions.export(),
            stat_base: self.stat_base,
            tier: self.engine.tier_tables(),
        })
    }
}

// ---------------------------------------------------------------------------
// The worker pool: shards are scheduling units, workers are OS threads.
//
// A `PoolCtl` owns one `ShardSlot` per shard (the *bench*) plus the
// placement table and parkers of `PoolCore`.  A worker pass walks the
// shards the placement table assigns it and serves each in a bounded
// run-to-completion slice: it *checks the shard state out* of its slot
// (phase Live → Busy), drains up to `SLICE_BUDGET` tasks in queue order,
// and checks it back in.  Exclusivity is a slot-phase property, not a
// thread identity: exactly one worker can hold a slot Busy, so a shard's
// tasks still execute in queue order on one worker at a time even while
// the placement table is being rewritten under it — a rebalance is a
// table write, and the new owner simply finds the slot Live on its next
// pass.  `worker_threads = shards` reproduces the historical
// thread-per-shard layout (1:1 placement, every slice uninterrupted).
// ---------------------------------------------------------------------------

/// Where one shard's serving state currently is, from the pool's point of
/// view.
enum SlotPhase {
    /// At rest on the bench, ready to be served by whoever the placement
    /// table names.
    Live(Box<ShardState>),
    /// Checked out by a worker — either actively serving a slice or the
    /// outer frame of a help-while-waiting excursion.  Marks the slot
    /// non-reentrant: a helping worker never recurses into a shard that is
    /// already being served, which bounds the help depth by the number of
    /// shards a worker owns.
    Busy,
    /// Surrendered to a migration coordinator ([`Task::Pause`]); the
    /// receiver yields the (possibly migrated) state back when the
    /// coordinator resumes the shard.  Unlike the thread-per-shard design
    /// the worker does **not** block here — it keeps serving its other
    /// shards and polls the receiver on later visits, so one worker owning
    /// two quiesced shards cannot deadlock a migration.
    Suspended(Receiver<ShardState>),
    /// The shard is finished (stop marker or disconnected queue); its final
    /// state was harvested into [`PoolCtl::finished`].
    Done,
}

/// The mutable part of a shard's slot, guarded by the slot mutex.  The
/// mutex is held only for phase transitions — never while tasks run.
struct SlotServe {
    phase: SlotPhase,
    /// The one-slot pushback buffer of the exec-coalescing loop, carried
    /// across slices (its queue credit was already released).
    pushback: Option<Task>,
    /// The stale-route divert watermark, carried across slices.
    divert_below: u64,
}

/// One shard's pool-visible serving context.
struct ShardSlot {
    /// The shard's ordered task queue.  Only the worker holding the slot
    /// Busy receives from it, so queue order is preserved.
    rx: Receiver<Task>,
    /// The shard's admission gate (same `Arc` as the topology's).
    gate: Arc<ShardGate>,
    serve: Mutex<SlotServe>,
}

/// Scratch state of the hot-shard rebalancer.
#[derive(Default)]
struct RebalanceState {
    /// Per-shard backlog EWMA (×16 fixed point, α = 1/4) of the sampled
    /// signal — gate depth when admission is bounded, raw channel length
    /// otherwise.
    ewma: Vec<u64>,
    /// Consecutive passes `candidate` ran at ≥ 2× the mean backlog.
    streak: usize,
    /// The shard the streak is tracking.
    candidate: usize,
}

/// Everything the worker pool shares: the placement table and parkers
/// ([`PoolCore`]), the slot bench, the rebalancer state, and the harvested
/// final shard states.
struct PoolCtl {
    core: PoolCore,
    /// The bench, indexed by shard id; append-only (repartitions push).
    slots: RwLock<Vec<Arc<ShardSlot>>>,
    rebalance: Mutex<RebalanceState>,
    /// Final shard states of finished slots, collected by
    /// [`ManagerRuntime::shutdown`] for the merged log.
    finished: Mutex<Vec<ShardState>>,
    /// Global rendezvous-task sequence, allocated under the cross-enqueue
    /// lock, so multi-owner tasks are totally ordered *across* queues (each
    /// queue holds them in ascending sequence).  Help-while-waiting leans on
    /// this: a worker blocked on task `S` may only serve rendezvous tasks
    /// with sequence ≤ `S` from its other shards — picking up a later one
    /// could block beneath the earlier frame while holding a shard that
    /// task's quorum needs, a deadlock.  Serving an earlier one is always
    /// safe: every frame above is blocked on a later task and has therefore
    /// already voted on everything earlier it owns.
    seq: AtomicU64,
}

impl PoolCtl {
    fn slot(&self, shard: usize) -> Option<Arc<ShardSlot>> {
        self.slots.read().unwrap_or_else(|e| e.into_inner()).get(shard).cloned()
    }

    fn slot_snapshot(&self) -> Vec<Arc<ShardSlot>> {
        self.slots.read().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// What a worker's visit to one shard slot accomplished.
enum SliceOutcome {
    /// At least one task was served (or the shard was suspended mid-pause).
    Progressed,
    /// The slot was checked out but its queue was empty.
    Idle,
    /// The slot was unavailable: busy in another frame, suspended, or not
    /// on the bench yet.
    Skip,
    /// The shard is done (stop marker, disconnect, or already finished).
    Finished,
}

/// Result of taking a shard state off the bench.
enum Checkout {
    /// The state plus the carried pushback buffer and divert watermark.
    State(Box<ShardState>, Option<Task>, u64),
    Skip,
    Done,
}

fn checkout(slot: &ShardSlot) -> Checkout {
    let mut serve = lock(&slot.serve);
    match &mut serve.phase {
        SlotPhase::Busy => Checkout::Skip,
        SlotPhase::Done => Checkout::Done,
        SlotPhase::Suspended(rx) => match rx.try_recv() {
            Ok(st) => {
                serve.phase = SlotPhase::Busy;
                Checkout::State(Box::new(st), serve.pushback.take(), serve.divert_below)
            }
            Err(TryRecvError::Empty) => Checkout::Skip,
            Err(TryRecvError::Disconnected) => {
                panic!("migration coordinator always returns the shard state")
            }
        },
        SlotPhase::Live(_) => {
            let SlotPhase::Live(st) = std::mem::replace(&mut serve.phase, SlotPhase::Busy) else {
                unreachable!("matched Live above")
            };
            Checkout::State(st, serve.pushback.take(), serve.divert_below)
        }
    }
}

fn checkin(slot: &ShardSlot, st: Box<ShardState>, pushback: Option<Task>, divert_below: u64) {
    let mut serve = lock(&slot.serve);
    serve.phase = SlotPhase::Live(st);
    serve.pushback = pushback;
    serve.divert_below = divert_below;
}

/// Parks a finished shard's state for [`ManagerRuntime::shutdown`] and
/// retires the slot.  The last shard to finish wakes every worker so they
/// observe `live == 0` and exit.
fn finish_slot(pool: &PoolCtl, slot: &ShardSlot, st: Box<ShardState>) {
    {
        let mut serve = lock(&slot.serve);
        serve.phase = SlotPhase::Done;
        serve.pushback = None;
    }
    lock(&pool.finished).push(*st);
    if pool.core.live.fetch_sub(1, Ordering::AcqRel) == 1 {
        pool.core.wake_all();
    }
}

/// Appends one statistics-only event to the meta stream — the journal of
/// counter bumps that have no deterministic owner shard (inline denials,
/// cross-shard decision counters, notification fan-outs).  Skips zero
/// deltas; no-op when durability is off.
fn meta_event(shared: &RuntimeShared, delta: StatDelta) {
    if delta == StatDelta::ZERO {
        return;
    }
    if let Some(hub) = &shared.durability {
        hub.log_meta(&WalRecord::Event { delta });
    }
}

/// Read-only facts a snapshot task reports about one shard.
#[derive(Clone, Debug, Default)]
struct ShardSnapshot {
    log: Vec<(LogKey, Action)>,
    subscriptions: usize,
    is_final: bool,
    tier: TierStats,
}

enum Task {
    Single(SingleTask),
    /// A session-side submission window: consecutive same-shard executes
    /// batched into one channel send (see [`Session::submit_batch`]).
    Batch(Vec<SingleTask>),
    Cross(Arc<CrossTask>),
    Exec(Arc<ExecTask>),
    /// A quiescence barrier of a live migration: the worker hands its whole
    /// shard state to the coordinator and blocks until it is returned.
    Pause(PauseTask),
    Snapshot(TicketIssuer<ShardSnapshot>),
    /// Forces a tier compilation pass on the shard engine (workers also
    /// compile hot engines on their own before parking).
    Compile(TicketIssuer<TierStats>),
    /// A checkpoint cut: the worker captures its CoW state handle plus the
    /// covered stream offset at this task boundary and keeps serving —
    /// encoding and blob writes happen on the coordinator, off the shard's
    /// critical path.  Completes `None` on a non-durable runtime.
    Checkpoint(TicketIssuer<Option<ShardCapture>>),
    Stop,
}

/// The rendezvous of one paused shard: the worker sends its [`ShardState`]
/// through `state_tx` and parks on `resume_rx` until the migration
/// coordinator hands the (possibly migrated) state back.
struct PauseTask {
    state_tx: Sender<ShardState>,
    resume_rx: Receiver<ShardState>,
}

struct SingleTask {
    /// The topology epoch the submission was routed under.
    epoch: u64,
    client: ClientId,
    op: Op,
    ticket: TicketIssuer<Completion>,
    /// Submission instant (queue-metrics mode only).
    submitted: Option<Instant>,
}

#[derive(Debug)]
enum Op {
    Execute { action: Action },
    Ask { action: Action },
    Confirm { id: u64 },
    Abort { id: u64 },
    Expire { id: u64, now: u64 },
    Subscribe { action: Action },
    Unsubscribe { action: Action },
    Query { action: Action },
}

/// A multi-owner task: enqueued onto every owner's queue (in ascending
/// order, under the enqueue lock); the owners rendezvous on `sync` to vote,
/// decide, and apply — the queue-based incarnation of the two-phase commit.
struct CrossTask {
    /// The topology epoch the submission was routed under.
    epoch: u64,
    /// Global rendezvous sequence ([`PoolCtl::seq`]) — the help-while-
    /// waiting ordering bound.
    seq: u64,
    owners: Vec<usize>,
    op: CrossOp,
    sync: Mutex<CrossSync>,
    barrier: Condvar,
}

#[derive(Clone)]
enum CrossOp {
    Ask { client: ClientId, action: Action },
    Confirm { id: u64 },
    Abort { id: u64 },
    Expire { id: u64, now: u64 },
    Subscribe { client: ClientId, action: Action },
    Query { action: Action },
}

/// A multi-owner combined execute — the hot cross-shard task, carried by its
/// own rendezvous object so that *consecutive runs* of them coalesce.
///
/// A worker that dequeues one drains the whole already-queued run of
/// same-owner-set executes (plus the single-owner executes interleaved
/// between them) and walks it in one speculative pass, maintaining a chain
/// of tentative successor states.  Votes come in two strengths:
///
/// * an **unconditional no** decides the task as denied on the spot — the
///   conjunction is already false, no rendezvous happens at all, and a
///   mid-case shard insta-denies an entire run of barrier attempts in one
///   pass;
/// * an **unconditional yes** — deposited while the voter's chain has run
///   only through *known* outcomes — counts toward the commit; the vote
///   that completes the count decides `Commit` and assigns the log
///   sequence number;
/// * a **conditional yes** ([`Vote::Conditional`], cascade mode only) —
///   deposited when the chain has advanced through still-undecided
///   predecessors on the *assumption* that they commit.  The vote carries a
///   [`ValidityTag`] naming exactly those assumptions plus the epoch and
///   reservation fingerprint the probe ran under; it counts toward the
///   commit only once the tag *verifies* (every assumed task decided
///   commit, epoch unchanged, the voter's published reservation
///   fingerprint unchanged), at which point it is **promoted** to an
///   unconditional yes.  Promotion happens at every later vote deposit and
///   along the explicit [`cascade_from`] walk a fresh commit triggers — so
///   an all-commit chain cascades to decided with no additional rendezvous
///   round trips.  A denial anywhere in the assumed prefix makes the tag
///   permanently unverifiable (the denied task is named in it);
///   [`invalidate_downstream`] clears such votes eagerly, and the voter
///   re-deposits from the recomputed true state when its in-order
///   resolution pass reaches the task.
/// * a **conditional no** is never deposited: the voter stays silent and
///   votes at resolution.  Its task can never commit early (a commit needs
///   this owner's yes), so the chain's assumption that it denies is
///   self-fulfilling *given the voter's own prefix assumptions* — which
///   later conditional-yes tags carry anyway.
///
/// In cascade-off mode every conditional deposit is simply withheld and the
/// protocol degenerates to the strictly-ordered unconditional one.  Either
/// way each vote that decides a task was computed against that task's true
/// predecessor state (promotion verifies exactly this), so per-action
/// outcomes, the merged log and the statistics are identical to an
/// unbatched rendezvous; what changes is that owners park only on
/// commit-pending tasks whose outcome genuinely awaits another shard's
/// *first* vote, instead of once per barrier in a chain.
struct ExecTask {
    /// The topology epoch the submission was routed under.
    epoch: u64,
    /// Global rendezvous sequence ([`PoolCtl::seq`]) — the help-while-
    /// waiting ordering bound.
    seq: u64,
    owners: Vec<usize>,
    // The client is not part of a combined execute's semantics (exactly as
    // in the blocking manager, which ignores it on this path).
    action: Action,
    /// Submission instant (queue-metrics mode only).
    submitted: Option<Instant>,
    /// Lock-free mirror of the decision (`EXEC_UNDECIDED` /
    /// `EXEC_COMMITTED` / `EXEC_DENIED`), written under the `sync` lock when
    /// the decision is made.  Tag verification reads it without taking the
    /// predecessor's lock — promotion only ever locks *forward* along the
    /// chain, so the cascade cannot deadlock with a voter walking the same
    /// chain.
    decided: AtomicU8,
    sync: Mutex<ExecSync>,
    barrier: Condvar,
}

/// `ExecTask::decided` values.
const EXEC_UNDECIDED: u8 = 0;
const EXEC_COMMITTED: u8 = 1;
const EXEC_DENIED: u8 = 2;

/// One owner's vote on an [`ExecTask`].
enum Vote {
    /// Not deposited yet.
    Pending,
    /// Unconditional yes (deposited, or promoted from a verified
    /// conditional vote).
    Yes,
    /// Yes, assuming the tag's prefix outcomes — counts only once promoted.
    Conditional(ValidityTag),
}

/// The compact witness a conditional vote carries: the exact assumptions
/// its speculative probe ran under.  The vote may be promoted to an
/// unconditional yes iff every field still verifies at decide time.
struct ValidityTag {
    /// Topology epoch the probe ran under; a repartition in between makes
    /// the tag unverifiable and the voter re-votes through the re-routed
    /// task (stale-route machinery).
    epoch: u64,
    /// The voting shard (key of its published reservation fingerprint).
    shard: usize,
    /// Fingerprint of the voter's reservation table at probe time
    /// ([`Engine::reservation_fingerprint`]); promotion requires the
    /// shard's currently published fingerprint to match, proving the
    /// reservation-aware part of the probe still holds.
    reservation_fp: u64,
    /// Every same-owner-set predecessor the chain advanced through on an
    /// assumed *commit* (full prefix, not a delta — one membership check
    /// suffices to invalidate).  Weak: tags must not keep dead tasks alive;
    /// an unupgradable entry makes the tag unverifiable, never a false
    /// promotion.  Assumed *denials* are not listed: each is the voter's
    /// own withheld no, whose base assumptions are a subset of this list.
    assumed: Option<Arc<AssumedLink>>,
}

/// One link of a validity tag's assumed-commit prefix.  The prefix is a
/// persistent cons list shared structurally between the tags of one
/// speculative pass: advancing the chain conses one link, and every tag
/// snapshot is an O(1) `Arc` clone of the current head — without the
/// sharing, a depth-`d` coalesced chain would clone O(d²) `Weak` handles
/// per owner, which dominated the cascade's cost on deep batches.
struct AssumedLink {
    /// The assumed-committed predecessor.
    task: std::sync::Weak<ExecTask>,
    /// The assumptions made before it, in reverse queue order.
    prev: Option<Arc<AssumedLink>>,
}

/// Iterates a tag's assumed-commit prefix (most recent assumption first).
fn assumed_iter(
    head: &Option<Arc<AssumedLink>>,
) -> impl Iterator<Item = &std::sync::Weak<ExecTask>> {
    let mut cursor = head.as_ref();
    std::iter::from_fn(move || {
        let link = cursor?;
        cursor = link.prev.as_ref();
        Some(&link.task)
    })
}

struct ExecSync {
    /// Stale-route verdict, recorded by the first owner that examines an
    /// epoch-stale task; the other owners follow it so the rendezvous can
    /// never be half-retried.  `Some(true)` means the owner set widened and
    /// the task was re-dispatched through the current topology.
    stale: Option<bool>,
    /// Per-owner votes, aligned with `owners`.  No-votes are never stored —
    /// an unconditional no decides the task as denied immediately, a
    /// conditional no is withheld entirely.
    votes: Vec<Vote>,
    /// Number of unconditional (deposited or promoted) yes votes; the task
    /// commits at `owners.len()`.
    yes_votes: usize,
    /// Whether any vote was ever promoted from a conditional — a commit
    /// with this set counts as a cascaded commit in the diagnostics.
    promoted_any: bool,
    /// Next same-owner-set execute in queue order, linked idempotently by
    /// every owner that coalesces the two into one batch (queue order is
    /// identical on every shared queue, so the links agree).  Forward Arcs
    /// only — the backward references of the validity tags are Weak, so the
    /// chain is cycle-free.
    cascade_next: Option<Arc<ExecTask>>,
    /// The verdict, set exactly once (mirrored in [`ExecTask::decided`]).
    decision: Option<ExecDecision>,
    /// Owners that have applied a commit decision so far.
    applied: usize,
    /// Local subscription notifications, tagged with the owner position so
    /// the merged order matches the blocking manager.
    notes: Vec<(usize, Vec<Notification>)>,
    /// Refreshed cross-subscription bits deposited by the owners.
    cross_bits: Vec<(Action, usize, bool)>,
    ticket: Option<TicketIssuer<Completion>>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ExecDecision {
    /// All owners voted yes: install the prepared successors under sequence
    /// number `seq`.
    Commit {
        /// The global log sequence number of the commit.
        seq: u64,
    },
    /// Some owner voted an unconditional no.
    Deny,
}

struct CrossSync {
    /// Stale-route verdict (see [`ExecSync::stale`]).
    stale: Option<bool>,
    ticket: Option<TicketIssuer<Completion>>,
    /// Owners that have voted so far.
    votes: usize,
    /// Conjunction of the votes.
    ok: bool,
    /// True if any owner held the referenced reservation (confirm/abort).
    any_reservation: bool,
    /// The removed reservation (identical copies on every owner).
    removed: Option<Reservation>,
    /// Per-owner status bits (query/subscribe), aligned with `owners`.
    bits: Vec<bool>,
    /// The verdict, set exactly once by the last voter.
    decision: Option<Decision>,
    /// The reservation created by a granted ask.
    granted: Option<Reservation>,
    /// Owners that have applied the decision so far.
    applied: usize,
    /// Per-owner local subscription notifications, aligned with `owners`
    /// (kept per owner so the merged order matches the blocking manager).
    notes: Vec<Vec<Notification>>,
    /// Refreshed cross-subscription bits deposited by the owners:
    /// (action, owner shard id, permitted).
    cross_bits: Vec<(Action, usize, bool)>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Decision {
    /// All owners voted yes: install the prepared successors under sequence
    /// number `seq`.
    Commit { seq: u64 },
    /// All owners voted yes on an ask: replicate the reservation.
    Reserve,
    /// Some owner voted no.
    Deny,
    /// The referenced reservation is unknown everywhere.
    Unknown,
    /// A confirmed action was not executable (reservations consumed).
    Rejected,
    /// A reservation was released (abort/expiry), or there was nothing to
    /// release.
    Released,
    /// A read-only rendezvous (query/subscribe) resolved.
    Done,
}

/// The session-oriented runtime.  Create it once, hand [`Session`]s to
/// clients, grow it live with [`ManagerRuntime::add_constraint`] /
/// [`ManagerRuntime::couple`], and drop or [`ManagerRuntime::shutdown`] it
/// when done.
pub struct ManagerRuntime {
    shared: Arc<RuntimeShared>,
    topology: Arc<TopologySlot>,
    /// The live (epoch-versioned) partition; the mutex also serializes
    /// repartitions — at most one migration is in flight at a time.
    partition: Mutex<Partition>,
    /// The pool worker threads (final shard states are harvested through
    /// `shared.pool.finished`, not the join handles).
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Service threads: the wall-clock ticker and/or the rebalancer, both
    /// stopped by `ticker_stop`.
    ticker: Mutex<Vec<JoinHandle<()>>>,
    ticker_stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for ManagerRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let topo = read_topology(&self.topology);
        f.debug_struct("ManagerRuntime")
            .field("shards", &topo.queues.len())
            .field("epoch", &topo.epoch())
            .field("variant", &self.shared.variant)
            .finish()
    }
}

/// What one [`ManagerRuntime::add_constraint`] / [`ManagerRuntime::couple`]
/// call did: the shards it created, the shards it had to quiesce, and the
/// migration volume.  A disjoint addition reports `migrated_shards` empty
/// and zero replay — the O(1) pure-append path.
#[derive(Clone, Debug)]
pub struct RepartitionReport {
    /// The topology epoch installed by this update.
    pub epoch: u64,
    /// Ids of the shards created for the new constraint's components.
    pub added_shards: Vec<usize>,
    /// Ids of the existing shards that were paused and migrated (empty for
    /// a disjoint addition; unaffected shards kept serving either way).
    pub migrated_shards: Vec<usize>,
    /// Number of abstract actions whose owner set widened.
    pub widened_actions: usize,
    /// Log entries replayed into the new components (covered history).
    pub replayed_actions: usize,
    /// Reservations replicated onto new owners.
    pub migrated_reservations: usize,
    /// Shard-local subscriptions promoted to cross-shard entries.
    pub migrated_subscriptions: usize,
}

/// What [`ManagerRuntime::shutdown`] hands back after the workers drained
/// their queues: the merged log, the final statistics, and the clock.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Confirmed actions in commit order (merged across the shard segments).
    pub log: Vec<Action>,
    /// Final statistics.
    pub stats: ManagerStats,
    /// Final logical time.
    pub clock: u64,
    /// Number of shards the runtime ran.
    pub shards: usize,
}

/// What [`ManagerRuntime::checkpoint`] reports about one completed cut.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Number of shard queues the cut was offered to.
    pub shards: usize,
    /// Number of shards that produced a capture (all of them, absent a
    /// racing shutdown).
    pub captured: usize,
    /// Total size of the written snapshot blobs in bytes.
    pub bytes: u64,
}

/// Serializes the cross-shard subscription registry into manifest rows.
fn export_cross(cross: &CrossSubscriptions) -> Vec<durability::CrossRow> {
    cross
        .entries
        .iter()
        .map(|(action, e)| {
            (action.clone(), e.owners.clone(), e.bits.clone(), e.clients.clone(), e.permitted)
        })
        .collect()
}

/// Rebuilds the cross-shard subscription registry from manifest rows.
fn import_cross(rows: Vec<durability::CrossRow>) -> CrossSubscriptions {
    let mut cross = CrossSubscriptions::default();
    for (action, owners, bits, clients, permitted) in rows {
        for &owner in &owners {
            cross.by_shard.entry(owner).or_default().insert(action.clone());
        }
        cross.entries.insert(action, CrossEntry { owners, bits, clients, permitted });
    }
    cross
}

/// One cross-shard commit seen while replaying the log tails: which owners'
/// streams already carry its echo record, and whether the primary's (the
/// one whose statistics delta counts) was among them.
struct TailCommit {
    key: LogKey,
    action: Action,
    present: HashSet<usize>,
    primary_present: bool,
}

/// The recovery driver behind [`ManagerRuntime::recover`].
fn recover_runtime(
    vault: Arc<dyn Vault>,
    options: RuntimeOptions,
) -> ManagerResult<ManagerRuntime> {
    let hub = Arc::new(DurabilityHub::new(vault));
    let topo_blob = hub
        .vault()
        .load_blob(durability::TOPOLOGY_BLOB)
        .ok_or_else(|| durability_err("vault has no topology blob — nothing to recover"))?;
    let topo = durability::decode_topology(&topo_blob)?;
    let expr = parse(&topo.expr)
        .map_err(|e| durability_err(format!("stored expression does not parse: {e}")))?;
    let mut components = Vec::with_capacity(topo.components.len());
    for (source, alphabet) in topo.components {
        let component = parse(&source)
            .map_err(|e| durability_err(format!("stored component does not parse: {e}")))?;
        components.push(Component { expr: component, alphabet });
    }
    let partition = Partition::from_components(components, topo.epoch);
    let alphabets: Vec<Alphabet> =
        partition.components().iter().map(|c| c.alphabet.clone()).collect();
    let router = ShardRouter::with_epoch(alphabets, partition.epoch());
    let manifest = match hub.vault().load_blob(durability::MANIFEST_BLOB) {
        Some(blob) => durability::decode_manifest(&blob)?,
        None => Manifest {
            clock: 0,
            meta_covered: 0,
            meta_base: StatDelta::ZERO,
            log_seq: 0,
            next_reservation: 1,
            cross: Vec::new(),
            orphans: Vec::new(),
            placement: Vec::new(),
        },
    };

    // Per-shard restore: latest snapshot (or fresh state), then the tail.
    let mut seeds = Vec::with_capacity(partition.len());
    let mut next_seq = manifest.log_seq;
    let mut next_reservation = manifest.next_reservation;
    let mut tail_commits: BTreeMap<u64, TailCommit> = BTreeMap::new();
    let mut tail_reserved: HashSet<u64> = HashSet::new();
    let mut tail_released: HashSet<u64> = HashSet::new();
    for (id, component) in partition.components().iter().enumerate() {
        let mut seed = ShardSeed {
            engine: Engine::new(&component.expr).map_err(ManagerError::State)?,
            reservations: BTreeMap::new(),
            subscriptions: SubscriptionRegistry::new(),
            log: Vec::new(),
            epoch: 0,
            stat_base: StatDelta::ZERO,
        };
        let mut covered = 0;
        if let Some(blob) = hub.vault().load_blob(&durability::snap_blob(id)) {
            let cp = durability::decode_shard_checkpoint(&blob)?;
            seed.engine = Engine::restore(&component.expr, cp.state, cp.accepted, cp.rejected)
                .map_err(ManagerError::State)?;
            // Budget and auto-compile mode must be set before adoption:
            // `set_tier_budget` invalidates an armed tier, which would drop
            // the adopted tables again.
            seed.engine.set_tier_budget(options.tier_budget);
            seed.engine.set_tier_auto(false);
            // Compiled DFA tiles re-attach from the snapshot — keyed by the
            // stored fingerprints, counted as zero compiles.
            seed.engine.adopt_tier(cp.tier);
            seed.reservations = cp.reservations.into_iter().map(|r| (r.id, r)).collect();
            seed.subscriptions = SubscriptionRegistry::import(cp.subscriptions);
            seed.log = cp.log;
            seed.epoch = cp.epoch;
            seed.stat_base = cp.stat_base;
            covered = cp.covered;
        } else {
            seed.engine.set_tier_budget(options.tier_budget);
            seed.engine.set_tier_auto(false);
        }
        for (key, _) in &seed.log {
            next_seq = next_seq.max(key.0 + 1).max(key.2 + 1);
        }
        for rid in seed.reservations.keys() {
            next_reservation = next_reservation.max(rid + 1);
        }
        for (index, payload) in hub.vault().read_from(DurabilityHub::shard_stream(id), covered) {
            let record = WalRecord::decode(&payload)
                .map_err(|e| durability::codec_err("shard log record", e))?;
            seed.stat_base.add(&record.delta());
            match record {
                WalRecord::Commit { key, action, is_primary, .. } => {
                    if !seed.engine.try_execute(&action) {
                        return Err(durability_err(format!(
                            "log record {index} of shard {id} does not replay: {action}"
                        )));
                    }
                    if is_primary {
                        seed.log.push((key, action.clone()));
                    }
                    if key.1 == 0 {
                        // A cross-shard commit: an epoch boundary on this
                        // shard, and a candidate for roll-forward on owners
                        // whose echo record the crash swallowed.
                        seed.epoch = key.0;
                        let entry = tail_commits.entry(key.0).or_insert_with(|| TailCommit {
                            key,
                            action: action.clone(),
                            present: HashSet::new(),
                            primary_present: false,
                        });
                        entry.present.insert(id);
                        entry.primary_present |= is_primary;
                    }
                    next_seq = next_seq.max(key.0 + 1).max(key.2 + 1);
                }
                WalRecord::Reserve { reservation, .. } => {
                    next_reservation = next_reservation.max(reservation.id + 1);
                    tail_reserved.insert(reservation.id);
                    seed.reservations.insert(reservation.id, reservation);
                }
                WalRecord::Release { id: rid, .. } => {
                    tail_released.insert(rid);
                    seed.reservations.remove(&rid);
                }
                WalRecord::Subscribe { client, action, permitted } => {
                    let key = router
                        .alphabet(id)
                        .actions()
                        .find(|a| a.matches_concrete(&action))
                        .cloned()
                        .unwrap_or_else(|| action.clone());
                    seed.subscriptions.subscribe(client, action, key, permitted);
                }
                WalRecord::Unsubscribe { client, action } => {
                    seed.subscriptions.unsubscribe(client, &action);
                }
                WalRecord::Event { .. } | WalRecord::Clock { .. } => {
                    return Err(durability_err(format!(
                        "meta-stream record in shard stream {id} at {index}"
                    )));
                }
            }
        }
        seeds.push(seed);
    }

    // Roll torn cross-shard commits forward, in sequence order.  A decision
    // journaled on at least one owner's stream is durable; an owner whose
    // echo record is missing has applied *nothing* after that commit (the
    // rendezvous parks owners until the decision), so applying it at the
    // shard's tail is exactly the order the crash interrupted.
    for commit in tail_commits.values() {
        let owners = router.owners(&commit.action);
        for (pos, &owner) in owners.iter().enumerate() {
            if commit.present.contains(&owner) {
                continue;
            }
            let seed = &mut seeds[owner];
            // An echo missing from the *tail* may still be covered by the
            // owner's snapshot — checkpoints cut per shard, and a fault can
            // persist one owner's snapshot while losing another's.  The
            // shard epoch is the sequence of its last applied cross-shard
            // commit (owners park at the rendezvous, so per-owner application
            // order equals sequence order): at or past this commit means it
            // is already in the snapshot state, and re-applying would
            // duplicate it.  Sequence 0 is excluded: commit sequences start
            // at 0, so for the very first commit an epoch of 0 is ambiguous
            // between "covered" and "never applied", and we must err on the
            // side of replaying.
            if commit.key.0 > 0 && seed.epoch >= commit.key.0 {
                continue;
            }
            if !seed.engine.try_execute(&commit.action) {
                return Err(durability_err(format!(
                    "torn commit {} does not replay on shard {owner}: {}",
                    commit.key.0, commit.action
                )));
            }
            let is_primary = pos == 0;
            if is_primary {
                seed.log.push((commit.key, commit.action.clone()));
            }
            seed.epoch = seed.epoch.max(commit.key.0);
            // Re-journal the missing echo (zero delta — the statistics of a
            // torn record whose primary echo is lost are lost with it), so
            // the streams are self-contained again for the next crash.
            hub.log_shard(
                owner,
                &WalRecord::Commit {
                    key: commit.key,
                    action: commit.action.clone(),
                    is_primary,
                    delta: StatDelta::ZERO,
                },
            );
        }
    }

    // Resolve torn reservations.  A grant visible in a tail with no visible
    // release completes everywhere; anything else partial (a torn removal,
    // or a partial holder set with no tail record at all) is dropped
    // everywhere — observably equivalent to an immediate lease expiry,
    // which the protocol already tolerates.
    let mut holder_map: BTreeMap<u64, (Reservation, Vec<usize>)> = BTreeMap::new();
    for (id, seed) in seeds.iter().enumerate() {
        for r in seed.reservations.values() {
            holder_map.entry(r.id).or_insert_with(|| (r.clone(), Vec::new())).1.push(id);
        }
    }
    for (rid, (reservation, holding)) in &holder_map {
        let owners = router.owners(&reservation.action);
        if owners.iter().all(|o| holding.contains(o)) {
            continue;
        }
        if tail_reserved.contains(rid) && !tail_released.contains(rid) {
            for &owner in owners.iter().filter(|o| !holding.contains(o)) {
                seeds[owner].reservations.insert(*rid, reservation.clone());
                hub.log_shard(
                    owner,
                    &WalRecord::Reserve {
                        reservation: reservation.clone(),
                        delta: StatDelta::ZERO,
                    },
                );
            }
        } else {
            for &owner in holding {
                seeds[owner].reservations.remove(rid);
                hub.log_shard(owner, &WalRecord::Release { id: *rid, delta: StatDelta::ZERO });
            }
        }
    }

    // Meta-stream tail: order-independent statistics events, the clock
    // high-water mark, and cross-shard/orphan subscription echoes routed
    // through the recovered router.
    let mut clock = manifest.clock;
    let mut stat_total = manifest.meta_base;
    let mut cross_subscriptions = import_cross(manifest.cross);
    let mut orphan_subscriptions = SubscriptionRegistry::import(manifest.orphans);
    for (index, payload) in hub.vault().read_from(META_STREAM, manifest.meta_covered) {
        let record =
            WalRecord::decode(&payload).map_err(|e| durability::codec_err("meta record", e))?;
        match record {
            WalRecord::Event { delta } => stat_total.add(&delta),
            WalRecord::Clock { now } => clock = clock.max(now),
            WalRecord::Subscribe { client, action, permitted } => match router.classify(&action) {
                Route::Multi(owners) => {
                    for &owner in &owners {
                        cross_subscriptions
                            .by_shard
                            .entry(owner)
                            .or_default()
                            .insert(action.clone());
                    }
                    let entry =
                        cross_subscriptions.entries.entry(action.clone()).or_insert_with(|| {
                            let bits: Vec<bool> = owners
                                .iter()
                                .map(|&o| seeds[o].engine.is_permitted(&action))
                                .collect();
                            let permitted = bits.iter().all(|b| *b);
                            crate::manager::CrossEntry {
                                owners: owners.clone(),
                                bits,
                                clients: Vec::new(),
                                permitted,
                            }
                        });
                    if !entry.clients.contains(&client) {
                        entry.clients.push(client);
                        entry.clients.sort_unstable();
                    }
                }
                Route::Single(owner) => {
                    let key = router
                        .alphabet(owner)
                        .actions()
                        .find(|a| a.matches_concrete(&action))
                        .cloned()
                        .unwrap_or_else(|| action.clone());
                    seeds[owner].subscriptions.subscribe(client, action, key, permitted);
                }
                Route::None => {
                    orphan_subscriptions.subscribe(client, action.clone(), action, false);
                }
            },
            WalRecord::Unsubscribe { client, action } => match router.classify(&action) {
                Route::Multi(_) => {
                    let remove = match cross_subscriptions.entries.get_mut(&action) {
                        Some(entry) => {
                            entry.clients.retain(|c| *c != client);
                            entry.clients.is_empty()
                        }
                        None => false,
                    };
                    if remove {
                        cross_subscriptions.entries.remove(&action);
                        for actions in cross_subscriptions.by_shard.values_mut() {
                            actions.remove(&action);
                        }
                        cross_subscriptions.by_shard.retain(|_, actions| !actions.is_empty());
                    }
                }
                Route::Single(owner) => seeds[owner].subscriptions.unsubscribe(client, &action),
                Route::None => orphan_subscriptions.unsubscribe(client, &action),
            },
            _ => {
                return Err(durability_err(format!(
                    "shard-stream record in meta stream at {index}"
                )))
            }
        }
    }
    for seed in &seeds {
        stat_total.add(&seed.stat_base);
    }

    // Silent subscription refresh: a Subscribe echo carries the cache as of
    // registration, and checkpointed registries carry it as of the cut;
    // commits replayed afterwards may have flipped the status.  The
    // uncrashed runtime kept every cache current through notifications, so
    // recomputing against the recovered engines — and discarding the
    // notifications, whose deliveries were never durable — restores exactly
    // the caches the crash interrupted.
    for seed in seeds.iter_mut() {
        let ShardSeed { engine, subscriptions, .. } = seed;
        let _ = subscriptions.refresh(|a| engine.is_permitted(a));
    }
    for (action, entry) in cross_subscriptions.entries.iter_mut() {
        for (pos, &owner) in entry.owners.iter().enumerate() {
            entry.bits[pos] = seeds[owner].engine.is_permitted(action);
        }
        entry.permitted = entry.bits.iter().all(|b| *b);
    }

    // Reservation index + timer wheel: every surviving lease re-arms; an
    // already-overdue one fires on the first clock advance.
    let mut reservation_index = HashMap::new();
    let mut timers = TimerWheel::new(clock);
    for (rid, (reservation, _)) in &holder_map {
        let owners = router.owners(&reservation.action);
        if owners.is_empty() || !seeds[owners[0]].reservations.contains_key(rid) {
            continue;
        }
        if reservation.expires_at != u64::MAX {
            let at = reservation.expires_at.max(clock + 1);
            timers
                .schedule(at, TimerEvent::Expiry(ExpiryEvent { id: *rid, owners: owners.clone() }));
        }
        reservation_index.insert(*rid, owners);
    }

    // The durable submission journal: checkpointed pending list plus the
    // queue-stream tail.
    let mut queue_pending = VecDeque::new();
    if options.durable {
        let mut covered = 0;
        if let Some(blob) = hub.vault().load_blob(durability::QUEUE_BLOB) {
            let cp = durability::decode_queue_checkpoint(&blob)?;
            queue_pending = cp.pending.into();
            covered = cp.covered;
        }
        durability::replay_queue_tail(&mut queue_pending, hub.vault(), covered)?;
    }

    let globals = RecoveredGlobals {
        clock,
        log_seq: next_seq,
        next_reservation,
        stats: stat_total.as_stats(),
        reservation_index,
        timers,
        cross_subscriptions,
        orphan_subscriptions,
        queue_pending,
        placement: manifest.placement,
    };
    hub.vault().sync();
    spawn_runtime(&expr, partition, options, Some(hub), seeds, globals)
}

/// Construction seed of one shard worker: the engine plus the recovered (or
/// empty) shard-local state it starts from.
struct ShardSeed {
    engine: Engine,
    reservations: BTreeMap<u64, Reservation>,
    subscriptions: SubscriptionRegistry,
    log: Vec<(LogKey, Action)>,
    epoch: u64,
    stat_base: StatDelta,
}

/// Runtime-global state a recovery seeds the shared block with; the default
/// is the fresh-construction state.
struct RecoveredGlobals {
    clock: u64,
    log_seq: u64,
    next_reservation: u64,
    stats: ManagerStats,
    reservation_index: HashMap<u64, Vec<usize>>,
    timers: TimerWheel<TimerEvent>,
    cross_subscriptions: CrossSubscriptions,
    orphan_subscriptions: SubscriptionRegistry,
    queue_pending: VecDeque<SubmissionRecord>,
    /// The checkpointed placement table (`placement[shard]` = worker), so a
    /// hot shard isolated before the crash stays isolated after it.  Empty
    /// or malformed tables fall back to round-robin at spawn.
    placement: Vec<usize>,
}

impl Default for RecoveredGlobals {
    fn default() -> RecoveredGlobals {
        RecoveredGlobals {
            clock: 0,
            log_seq: 0,
            next_reservation: 1,
            stats: ManagerStats::default(),
            reservation_index: HashMap::new(),
            timers: TimerWheel::new(0),
            cross_subscriptions: CrossSubscriptions::default(),
            orphan_subscriptions: SubscriptionRegistry::new(),
            queue_pending: VecDeque::new(),
            placement: Vec::new(),
        }
    }
}

/// Fresh shard seeds for a partition: one new engine per component, empty
/// shard-local state.
fn fresh_seeds(partition: &Partition, options: &RuntimeOptions) -> ManagerResult<Vec<ShardSeed>> {
    let mut seeds = Vec::with_capacity(partition.len());
    for component in partition.components() {
        let mut engine = Engine::new(&component.expr).map_err(ManagerError::State)?;
        // Workers compile in their idle slots, never mid-transition.
        engine.set_tier_budget(options.tier_budget);
        engine.set_tier_auto(false);
        seeds.push(ShardSeed {
            engine,
            reservations: BTreeMap::new(),
            subscriptions: SubscriptionRegistry::new(),
            log: Vec::new(),
            epoch: 0,
            stat_base: StatDelta::ZERO,
        });
    }
    Ok(seeds)
}

/// Persists the partition's component table plus the joined expression —
/// the routing ground truth every recovery starts from.
fn write_topology_blob(hub: &DurabilityHub, expr: &Expr, partition: &Partition) {
    let components =
        partition.components().iter().map(|c| (c.expr.to_string(), c.alphabet.clone())).collect();
    let topo = TopologyCheckpoint { epoch: partition.epoch(), expr: expr.to_string(), components };
    hub.vault().save_blob(durability::TOPOLOGY_BLOB, &durability::encode_topology(&topo));
}

/// The one runtime constructor: wires the topology, the shared block, and
/// the worker threads from per-shard seeds — fresh construction, durable
/// construction, and crash recovery all funnel through here.
fn spawn_runtime(
    expr: &Expr,
    partition: Partition,
    options: RuntimeOptions,
    hub: Option<Arc<DurabilityHub>>,
    seeds: Vec<ShardSeed>,
    globals: RecoveredGlobals,
) -> ManagerResult<ManagerRuntime> {
    let alphabets: Vec<Alphabet> =
        partition.components().iter().map(|c| c.alphabet.clone()).collect();
    let epoch = partition.epoch();
    let mut senders = Vec::with_capacity(seeds.len());
    let mut receivers = Vec::with_capacity(seeds.len());
    for _ in 0..seeds.len() {
        let (tx, rx): (Sender<Task>, Receiver<Task>) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let gates: Vec<Arc<ShardGate>> = (0..senders.len())
        .map(|_| Arc::new(ShardGate::new(options.queue_limit, options.shed)))
        .collect();

    // ---- The worker pool: size, placement, and the slot bench. ----
    let workers_n = match options.worker_threads {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    };
    let shards_n = seeds.len();
    // Recovery seeds placement (a hot shard isolated before a crash stays
    // isolated after it); anything malformed falls back to round-robin.
    let placement: Vec<usize> = if globals.placement.len() == shards_n
        && globals.placement.iter().all(|&w| w < workers_n)
    {
        globals.placement.clone()
    } else {
        (0..shards_n).map(|s| s % workers_n).collect()
    };
    let cells: Vec<Arc<ShardSlot>> = seeds
        .into_iter()
        .zip(receivers)
        .zip(gates.iter())
        .enumerate()
        .map(|(id, ((seed, rx), gate))| {
            let state = ShardState {
                id,
                engine: seed.engine,
                reservations: seed.reservations,
                subscriptions: seed.subscriptions,
                log: seed.log,
                epoch: seed.epoch,
                wal: hub.clone(),
                stat_base: seed.stat_base,
            };
            Arc::new(ShardSlot {
                rx,
                gate: Arc::clone(gate),
                serve: Mutex::new(SlotServe {
                    phase: SlotPhase::Live(Box::new(state)),
                    pushback: None,
                    divert_below: 0,
                }),
            })
        })
        .collect();
    let pool = Arc::new(PoolCtl {
        core: PoolCore::new(workers_n, placement),
        slots: RwLock::new(cells),
        rebalance: Mutex::new(RebalanceState::default()),
        finished: Mutex::new(Vec::new()),
        seq: AtomicU64::new(0),
    });

    let topology = Arc::new(RwLock::new(Arc::new(Topology {
        router: ShardRouter::with_epoch(alphabets, epoch),
        queues: senders,
        gates: gates.clone(),
        bounded: options.queue_limit > 0,
        pool: Arc::clone(&pool),
        expr: expr.clone(),
        alphabet: expr.alphabet(),
    })));
    let stats = SharedStats::default();
    stats.restore(globals.stats);
    let cross_entries = globals.cross_subscriptions.entries.len() as u64;
    let durable = options.durable.then(|| {
        let backend = hub.as_ref().map(|hub| {
            Box::new(VaultQueueBackend::new(Arc::clone(hub.vault())))
                as Box<dyn QueueBackend<SubmissionRecord>>
        });
        Mutex::new(DurableQueue::restore(globals.queue_pending.into(), backend))
    });
    let shared = Arc::new(RuntimeShared {
        variant: options.variant,
        topology: Arc::downgrade(&topology),
        epoch: AtomicU64::new(epoch),
        cross_enqueue: Mutex::new(()),
        reservation_index: Mutex::new(globals.reservation_index),
        cross_subscriptions: Mutex::new(globals.cross_subscriptions),
        orphan_subscriptions: Mutex::new(globals.orphan_subscriptions),
        notification_channels: Mutex::new(HashMap::new()),
        cross_entry_count: AtomicU64::new(cross_entries),
        timers: Mutex::new(globals.timers),
        tier_budget: options.tier_budget,
        durable,
        durability: hub.clone(),
        clock: AtomicU64::new(globals.clock),
        log_seq: AtomicU64::new(globals.log_seq),
        next_reservation: AtomicU64::new(globals.next_reservation),
        stats,
        repart: RepartCounters::default(),
        cascade: options.cascade,
        reservation_fps: Mutex::new(HashMap::new()),
        cascade_counters: CascadeCounters::default(),
        queue_metrics: options.queue_metrics,
        queue_samples: Mutex::new(Vec::new()),
        queue_limit: options.queue_limit,
        shed: options.shed,
        pool: Arc::clone(&pool),
        checkpoint_every: options.checkpoint_every,
        auto_checkpoints: AtomicU64::new(0),
    });
    // Conditional-vote verification reads the published fingerprints, so
    // recovered reservation tables must be visible before any worker serves
    // its first task.
    for cell in pool.slot_snapshot() {
        if let SlotPhase::Live(state) = &lock(&cell.serve).phase {
            publish_reservation_fp(&shared, state);
        }
    }
    // Arm the periodic checkpoint timer (durable runtimes only — a
    // checkpoint without a vault has nowhere to go).
    if options.checkpoint_every > 0 && shared.durability.is_some() {
        let now = shared.clock.load(Ordering::Relaxed);
        lock(&shared.timers).schedule(now + options.checkpoint_every, TimerEvent::Checkpoint);
    }
    let mut workers = Vec::with_capacity(workers_n);
    for me in 0..workers_n {
        let shared = Arc::clone(&shared);
        workers.push(std::thread::spawn(move || pool_worker(shared, me)));
    }
    let ticker_stop = Arc::new(AtomicBool::new(false));
    let mut service = Vec::new();
    if let ClockMode::Wall { tick } = options.clock {
        let shared = Arc::clone(&shared);
        let topology = Arc::clone(&topology);
        let stop = Arc::clone(&ticker_stop);
        service.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(tick);
                advance_clock(&shared, &topology, 1);
            }
        }));
    }
    if let Some(every) = options.rebalance_every {
        let shared = Arc::clone(&shared);
        let stop = Arc::clone(&ticker_stop);
        service.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(every);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                rebalance_pass(&shared);
            }
        }));
    }
    Ok(ManagerRuntime {
        shared,
        topology,
        partition: Mutex::new(partition),
        workers: Mutex::new(workers),
        ticker: Mutex::new(service),
        ticker_stop,
    })
}

impl ManagerRuntime {
    /// Creates a runtime enforcing the expression with the simple protocol,
    /// a virtual clock, and no durability.
    pub fn new(expr: &Expr) -> ManagerResult<ManagerRuntime> {
        ManagerRuntime::with_options(expr, RuntimeOptions::default())
    }

    /// Creates a runtime with an explicit protocol variant.
    pub fn with_protocol(expr: &Expr, variant: ProtocolVariant) -> ManagerResult<ManagerRuntime> {
        ManagerRuntime::with_options(expr, RuntimeOptions { variant, ..RuntimeOptions::default() })
    }

    /// Creates a runtime with explicit options.  The expression is
    /// partitioned into its fine-grained sync-components; each component
    /// gets one worker thread and one ordered task queue.
    pub fn with_options(expr: &Expr, options: RuntimeOptions) -> ManagerResult<ManagerRuntime> {
        let partition = Partition::of(expr);
        let seeds = fresh_seeds(&partition, &options)?;
        spawn_runtime(expr, partition, options, None, seeds, RecoveredGlobals::default())
    }

    /// Creates a *durable* runtime journaling into the given vault: every
    /// commit, reservation grant, and release is written ahead to its owner
    /// shard's log stream, statistics events go to the meta stream, and
    /// durable submissions ([`RuntimeOptions::durable`]) are journaled in
    /// the vault-backed queue stream.  [`ManagerRuntime::checkpoint`] cuts
    /// sharded snapshots without stopping the world, and
    /// [`ManagerRuntime::recover`] rebuilds an equivalent runtime from the
    /// latest snapshots plus the log tails.
    pub fn with_durability(
        expr: &Expr,
        options: RuntimeOptions,
        vault: Arc<dyn Vault>,
    ) -> ManagerResult<ManagerRuntime> {
        let hub = Arc::new(DurabilityHub::new(vault));
        let partition = Partition::of(expr);
        // Persist the topology before anything journals against it: the log
        // streams are meaningless without the component table that routed
        // them.
        write_topology_blob(&hub, expr, &partition);
        hub.vault().sync();
        let seeds = fresh_seeds(&partition, &options)?;
        spawn_runtime(expr, partition, options, Some(hub), seeds, RecoveredGlobals::default())
    }

    /// [`ManagerRuntime::with_durability`] over a [`FileVault`] rooted at
    /// `path`, flushing per [`RuntimeOptions::fsync`].
    pub fn with_durability_path(
        expr: &Expr,
        options: RuntimeOptions,
        path: impl AsRef<std::path::Path>,
    ) -> ManagerResult<ManagerRuntime> {
        let vault = FileVault::open(path, options.fsync)
            .map_err(|e| durability_err(format!("opening vault: {e}")))?;
        ManagerRuntime::with_durability(expr, options, Arc::new(vault))
    }

    /// Opens a session for a client: its submissions return completion
    /// tickets, and subscription notifications arrive on the session's own
    /// channel.
    pub fn session(&self, client: ClientId) -> Session {
        let (tx, rx) = unbounded();
        lock(&self.shared.notification_channels).insert(client, tx);
        Session {
            client,
            shared: Arc::clone(&self.shared),
            topology: Arc::clone(&self.topology),
            notifications: rx,
        }
    }

    /// The protocol variant in use.
    pub fn protocol(&self) -> ProtocolVariant {
        self.shared.variant
    }

    /// The expression the runtime currently enforces, including every
    /// constraint added live.
    pub fn expr(&self) -> Expr {
        read_topology(&self.topology).expr.clone()
    }

    /// The current partition epoch (0 at construction, +1 per live
    /// extension).
    pub fn epoch(&self) -> u64 {
        read_topology(&self.topology).epoch()
    }

    /// Number of shard workers (1 when the expression does not decompose).
    pub fn shard_count(&self) -> usize {
        read_topology(&self.topology).queues.len()
    }

    /// The primary (lowest-id) shard an action is routed to, if any.
    pub fn shard_of(&self, action: &Action) -> Option<usize> {
        read_topology(&self.topology).router.route(action)
    }

    /// All shards owning an action, ascending (the enqueue order of a
    /// cross-shard task).
    pub fn owners_of(&self, action: &Action) -> Vec<usize> {
        read_topology(&self.topology).router.owners(action)
    }

    /// True if the action is owned by more than one shard.
    pub fn is_cross_shard(&self, action: &Action) -> bool {
        read_topology(&self.topology).router.is_shared(action)
    }

    /// True if the runtime's interaction expression mentions the action.
    pub fn controls(&self, action: &Action) -> bool {
        read_topology(&self.topology).alphabet.covers(action)
    }

    /// Statistics so far.
    pub fn stats(&self) -> ManagerStats {
        self.shared.stats.snapshot()
    }

    /// Counters of the conditional-vote cascade.  Kept outside
    /// [`ManagerStats`] deliberately: cascade-on and cascade-off runs must
    /// produce *identical* manager statistics (the lockstep equivalence the
    /// property tests check); these counters describe how the decisions
    /// were reached, not what was decided.
    pub fn cascade_stats(&self) -> CascadeStats {
        let c = &self.shared.cascade_counters;
        CascadeStats {
            conditional_votes: c.conditional_votes.load(Ordering::Relaxed),
            promoted_votes: c.promoted_votes.load(Ordering::Relaxed),
            invalidated_votes: c.invalidated_votes.load(Ordering::Relaxed),
            cascaded_commits: c.cascaded_commits.load(Ordering::Relaxed),
        }
    }

    /// Drains the queueing-delay samples collected so far (queue-metrics
    /// mode): one `(enqueue_wait, service)` nanosecond pair per completed
    /// task, in no particular order.  Empty unless
    /// [`RuntimeOptions::queue_metrics`] was set.
    pub fn drain_queue_samples(&self) -> Vec<(u64, u64)> {
        std::mem::take(&mut *lock(&self.shared.queue_samples))
    }

    /// Per-shard load snapshot: queue depths, high-water marks, shed
    /// counters, and the wait/service EWMAs behind the retry-after hints.
    /// Cheap (a handful of relaxed loads per shard) and meaningful on
    /// bounded runtimes; on unbounded ones depths read 0 — the gates are
    /// inert.  [`LoadReport::hottest`] is the hot-shard detector the
    /// repartitioning machinery keys off.
    pub fn load_report(&self) -> LoadReport {
        let topo = read_topology(&self.topology);
        LoadReport {
            queue_limit: self.shared.queue_limit,
            shards: topo.gates.iter().enumerate().map(|(i, g)| g.load(i)).collect(),
        }
    }

    /// Scheduling counters of the worker pool: pool size, the current
    /// placement table, and what the rebalancer has done so far.
    pub fn sched_stats(&self) -> SchedStats {
        let core = &self.shared.pool.core;
        let last = core.last_isolated.load(Ordering::Relaxed);
        SchedStats {
            workers: core.workers(),
            placement: core.placement(),
            rebalances: core.rebalances.load(Ordering::Relaxed),
            last_isolated: (last != usize::MAX).then_some(last),
            auto_checkpoints: self.shared.auto_checkpoints.load(Ordering::Relaxed),
        }
    }

    /// Runs one rebalancer sampling pass right now (the same pass
    /// [`RuntimeOptions::rebalance_every`] runs on a timer): fold current
    /// backlogs into the EWMAs and isolate the hottest shard if it has been
    /// sustained-hot for three consecutive passes.  Returns whether an
    /// isolation happened.
    pub fn rebalance_now(&self) -> bool {
        rebalance_pass(&self.shared)
    }

    /// Moves `shard` onto `worker` in the placement table — the manual
    /// override behind the rebalancer (operational pinning, tests).  The
    /// move is purely a table write: the shard's queue and state stay put,
    /// the old owner finishes any slice in progress, and the new owner
    /// picks the slot up on its next pass.  Returns false if either index
    /// is out of range.
    pub fn place_shard(&self, shard: usize, worker: usize) -> bool {
        let core = &self.shared.pool.core;
        if worker >= core.workers() || shard >= core.placement().len() {
            return false;
        }
        core.assign(shard, worker);
        true
    }

    /// Counters of the repartitioning machinery.  Test suites use
    /// `migrated_shard_states` to assert that disjoint additions migrate
    /// nothing.
    pub fn repartition_stats(&self) -> RepartitionStats {
        let repart = &self.shared.repart;
        RepartitionStats {
            repartitions: repart.repartitions.load(Ordering::Relaxed),
            migrated_shard_states: repart.migrated_shard_states.load(Ordering::Relaxed),
            replayed_actions: repart.replayed_actions.load(Ordering::Relaxed),
            migrated_reservations: repart.migrated_reservations.load(Ordering::Relaxed),
            migrated_subscriptions: repart.migrated_subscriptions.load(Ordering::Relaxed),
            rerouted_tasks: repart.rerouted_tasks.load(Ordering::Relaxed),
        }
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.shared.clock.load(Ordering::Relaxed)
    }

    /// The merged log of confirmed actions in commit order.  Each shard
    /// reports its segment through its own queue, so the snapshot reflects
    /// every commit that completed before this call.
    pub fn log(&self) -> Vec<Action> {
        let mut entries: Vec<(LogKey, Action)> = Vec::new();
        for snapshot in self.snapshots() {
            entries.extend(snapshot.log);
        }
        entries.sort_by_key(|(key, _)| *key);
        entries.into_iter().map(|(_, action)| action).collect()
    }

    /// True if the interaction state is final on every shard.
    pub fn is_final(&self) -> bool {
        self.snapshots().iter().all(|s| s.is_final)
    }

    /// Number of active subscriptions across shard registries, cross-shard
    /// entries, and orphan registrations.
    pub fn subscription_count(&self) -> usize {
        let owned: usize = self.snapshots().iter().map(|s| s.subscriptions).sum();
        owned
            + lock(&self.shared.cross_subscriptions).len()
            + lock(&self.shared.orphan_subscriptions).len()
    }

    fn snapshots(&self) -> Vec<ShardSnapshot> {
        let topo = read_topology(&self.topology);
        let tickets: Vec<Ticket<ShardSnapshot>> = topo
            .queues
            .iter()
            .enumerate()
            .map(|(shard, q)| {
                let (issuer, t) = ticket();
                match q.send(Task::Snapshot(issuer)) {
                    Ok(()) => topo.pool.core.wake_shard(shard),
                    Err(SendError(Task::Snapshot(issuer))) => {
                        issuer.complete(ShardSnapshot::default())
                    }
                    Err(_) => unreachable!("send returns the task it was given"),
                }
                t
            })
            .collect();
        tickets.iter().map(|t| t.wait()).collect()
    }

    /// Compiles every shard engine's execution tier now (ordinary tasks on
    /// the shard queues, serialized with in-flight submissions) and returns
    /// the per-shard tier stats.  Workers also compile hot engines on their
    /// own in idle slots; this forces the matter — benches and tests use it
    /// to reach the table tier deterministically.
    pub fn compile_tiers(&self) -> Vec<TierStats> {
        let topo = read_topology(&self.topology);
        let tickets: Vec<Ticket<TierStats>> = topo
            .queues
            .iter()
            .enumerate()
            .map(|(shard, q)| {
                let (issuer, t) = ticket();
                match q.send(Task::Compile(issuer)) {
                    Ok(()) => topo.pool.core.wake_shard(shard),
                    Err(SendError(Task::Compile(issuer))) => issuer.complete(TierStats::default()),
                    Err(_) => unreachable!("send returns the task it was given"),
                }
                t
            })
            .collect();
        tickets.iter().map(|t| t.wait()).collect()
    }

    /// Aggregated execution-tier stats across the shard engines.
    pub fn tier_stats(&self) -> TierStats {
        let mut total = TierStats::default();
        for s in self.snapshots() {
            let t = s.tier;
            total.tables += t.tables;
            total.states += t.states;
            total.hits += t.hits;
            total.fallbacks += t.fallbacks;
            total.compiles += t.compiles;
            total.bailouts += t.bailouts;
            total.invalidations += t.invalidations;
            total.compile_nanos += t.compile_nanos;
            total.epoch = total.epoch.max(t.epoch);
        }
        total
    }

    /// Advances logical time by `delta`, firing the due lease timers and
    /// returning the reservations that expired (in deadline order).  Expiry
    /// runs as ordinary tasks on the owning shards' queues, so it is
    /// serialized with the submissions it races — a confirm enqueued before
    /// the expiry wins on every owner, one enqueued after loses on every
    /// owner.
    pub fn advance_time(&self, delta: u64) -> Vec<Reservation> {
        advance_clock(&self.shared, &self.topology, delta)
    }

    /// Grows the running ensemble with an additional constraint — without
    /// stopping the world.
    ///
    /// The constraint's flattened operands become new shards (semantically
    /// the runtime now enforces `old ⊗ constraint`).  If the constraint's
    /// alphabet is disjoint from every existing shard's, the update is a
    /// **pure shard-append**: new workers spawn, the topology epoch bumps,
    /// and no existing shard is paused, probed, or migrated — O(new
    /// constraint), independent of the running system's size.  If the
    /// constraint *couples* (shares actions with existing shards), exactly
    /// the affected shards are quiesced: each drains its queue to a pause
    /// barrier and hands its state to this coordinator, which replays the
    /// covered history into the new components, widens the shared actions'
    /// reservation owner sets, promotes their shard-local subscriptions to
    /// cross-shard entries, installs the next topology epoch, and resumes
    /// the paused workers.  Unaffected shards keep serving throughout, and
    /// submissions racing the update are retried through the new topology
    /// rather than misdelivered.
    ///
    /// Fails with [`ManagerError::IncompatibleExtension`] — leaving the
    /// runtime exactly as it was — if the new constraint rejects the
    /// projection of the committed log onto its alphabet, because accepting
    /// it would break replayability of the log on the grown expression.
    pub fn add_constraint(&self, constraint: &Expr) -> ManagerResult<RepartitionReport> {
        self.repartition(constraint, false)
    }

    /// [`ManagerRuntime::add_constraint`] for constraints that deliberately
    /// share actions with the running ensemble (a new audit barrier, an
    /// inter-workflow ordering rule).  Fails with
    /// [`ManagerError::DisjointCoupling`] when the constraint shares
    /// nothing — a disjoint addition should go through `add_constraint`.
    pub fn couple(&self, coupling: &Expr) -> ManagerResult<RepartitionReport> {
        self.repartition(coupling, true)
    }

    fn repartition(
        &self,
        constraint: &Expr,
        require_overlap: bool,
    ) -> ManagerResult<RepartitionReport> {
        let shared = &self.shared;
        // Serializes migrations and guards the live partition.
        let mut partition = lock(&self.partition);
        let old_len = partition.len();
        let (new_partition, delta) = partition.extend(std::slice::from_ref(constraint));
        if require_overlap && delta.widened.is_empty() {
            // The overlap test runs on the delta *under the partition
            // lock*, so a `couple` serialized behind a concurrent
            // `add_constraint` judges the ensemble it will actually
            // extend — no topology-snapshot TOCTOU.
            return Err(ManagerError::DisjointCoupling);
        }
        let affected = delta.affected_existing(old_len);

        // Build the new components' engines first: a malformed constraint
        // must fail before anything is paused.
        let mut new_engines: Vec<(usize, Engine, Alphabet)> = Vec::with_capacity(delta.added.len());
        for &idx in &delta.added {
            let component = &new_partition.components()[idx];
            let mut engine = Engine::new(&component.expr).map_err(ManagerError::State)?;
            engine.set_tier_budget(shared.tier_budget);
            engine.set_tier_auto(false);
            new_engines.push((idx, engine, component.alphabet.clone()));
        }
        let new_alphabets: Vec<Alphabet> = new_engines.iter().map(|(_, _, a)| a.clone()).collect();

        let topo = read_topology(&self.topology);
        let new_router = topo.router.extended(&new_alphabets);
        let mut replayed = 0usize;
        let mut migrated_reservations = 0usize;
        let mut migrated_subscriptions = 0usize;
        let mut new_reservations: Vec<BTreeMap<u64, Reservation>> =
            (0..new_engines.len()).map(|_| BTreeMap::new()).collect();
        let mut new_epochs: Vec<u64> = vec![0; new_engines.len()];
        let mut flips: Vec<Notification> = Vec::new();
        let mut paused: Vec<(usize, ShardState, Sender<ShardState>)> = Vec::new();

        if !affected.is_empty() {
            // ---- Quiesce exactly the affected shards.  The pause barriers
            // are sent under the enqueue lock, so any multi-owner task is
            // ordered entirely before or entirely after the quiescence
            // point on every queue it shares with a barrier — the owners of
            // a widened action can therefore never straddle the migration.
            let mut waits = Vec::new();
            let mut barrier_failed = false;
            {
                let _guard = lock(&shared.cross_enqueue);
                for &s in &affected {
                    let (state_tx, state_rx) = unbounded();
                    let (resume_tx, resume_rx) = unbounded();
                    if topo.queues[s].send(Task::Pause(PauseTask { state_tx, resume_rx })).is_err()
                    {
                        // Shard gone (runtime tearing down concurrently).
                        // The migration must not proceed with a partially
                        // quiesced set; abort after resuming whoever did
                        // pause.
                        barrier_failed = true;
                        break;
                    }
                    topo.pool.core.wake_shard(s);
                    waits.push((s, state_rx, resume_tx));
                }
            }
            for (s, state_rx, resume_tx) in waits {
                match state_rx.recv() {
                    Ok(state) => paused.push((s, state, resume_tx)),
                    Err(_) => barrier_failed = true,
                }
            }
            if barrier_failed {
                resume_paused(&shared.pool, paused);
                return Err(ManagerError::Disconnected);
            }

            // ---- Replay the covered history into the new components.  The
            // merged affected segments sorted by log key are a legal
            // linearization of everything the new components can cover (a
            // shared action's primary owner is itself affected, so its
            // entries are all here).
            let mut entries: Vec<&(LogKey, Action)> =
                paused.iter().flat_map(|(_, st, _)| st.log.iter()).collect();
            entries.sort_by_key(|(key, _)| *key);
            for (i, (_, engine, alphabet)) in new_engines.iter_mut().enumerate() {
                for (key, action) in entries.iter().filter(|(_, a)| alphabet.covers(a)) {
                    if !engine.try_execute(action) {
                        let action = action.to_string();
                        resume_paused(&shared.pool, paused);
                        return Err(ManagerError::IncompatibleExtension { action });
                    }
                    replayed += 1;
                    // Future single-owner commits of this new shard must
                    // sort after every covered entry it replayed: track the
                    // largest epoch/sequence component seen.
                    new_epochs[i] = new_epochs[i].max(key.0);
                }
            }

            // ---- Nothing can fail from here on: migrate reservations and
            // subscriptions.  A reservation whose action a new component
            // covers is replicated into that shard's table (identical
            // copies on every owner, as for cross-shard asks) and its index
            // entry widens, so confirm/abort/expiry reach the new owner.
            {
                let mut index = lock(&shared.reservation_index);
                for (_, st, _) in &paused {
                    for reservation in st.reservations.values() {
                        for (i, (idx, _, alphabet)) in new_engines.iter().enumerate() {
                            if alphabet.covers(&reservation.action)
                                && !new_reservations[i].contains_key(&reservation.id)
                            {
                                new_reservations[i].insert(reservation.id, reservation.clone());
                                if let Some(owners) = index.get_mut(&reservation.id) {
                                    if !owners.contains(idx) {
                                        owners.push(*idx);
                                        owners.sort_unstable();
                                    }
                                }
                                migrated_reservations += 1;
                            }
                        }
                    }
                }
            }

            // ---- Promote shard-local subscriptions of widened actions to
            // cross-shard entries: their permissibility is a conjunction
            // now.  Every owner of a widened action is quiesced right here,
            // so the per-owner bits are a consistent snapshot — the same
            // guarantee a cross-shard subscribe gets from its rendezvous.
            for (sid, st, _) in &mut paused {
                let router = &new_router;
                let old_router = &topo.router;
                let moved = st
                    .subscriptions
                    .extract(|action| router.owners(action) != old_router.owners(action));
                for (action, clients, cached) in moved {
                    // A shard-local subscription exists only for actions the
                    // shard owned alone, so the widened owner set is this
                    // shard plus new shards.
                    let owners = new_router.owners(&action);
                    let bits: Vec<bool> = owners
                        .iter()
                        .map(|&o| {
                            if o == *sid {
                                st.engine.is_permitted(&action)
                            } else {
                                debug_assert!(o >= old_len, "widened single-owner action");
                                new_engines[o - old_len].1.is_permitted(&action)
                            }
                        })
                        .collect();
                    migrated_subscriptions += clients.len();
                    flips.extend(promote_subscription(
                        shared, &action, owners, bits, clients, cached,
                    ));
                }
            }

            // ---- Widen existing cross-shard entries whose action gained
            // owners: append the new owners' bits and re-evaluate the
            // conjunction.
            {
                let mut cross = lock(&shared.cross_subscriptions);
                let widened: Vec<Action> = cross
                    .entries
                    .keys()
                    .filter(|a| new_router.owners(a) != topo.router.owners(a))
                    .cloned()
                    .collect();
                for action in widened {
                    let owners = new_router.owners(&action);
                    let entry = cross.entries.get_mut(&action).expect("key just listed");
                    let bits: Vec<bool> = owners
                        .iter()
                        .map(|&o| match entry.owners.iter().position(|&x| x == o) {
                            // Existing owners' engines did not move during
                            // the migration; their cached bits stand.
                            Some(pos) => entry.bits[pos],
                            None => {
                                debug_assert!(o >= old_len, "owner sets only widen");
                                new_engines[o - old_len].1.is_permitted(&action)
                            }
                        })
                        .collect();
                    entry.owners = owners.clone();
                    entry.bits = bits;
                    let now = entry.bits.iter().all(|b| *b);
                    if now != entry.permitted {
                        entry.permitted = now;
                        for client in &entry.clients {
                            flips.push(Notification {
                                client: *client,
                                action: action.clone(),
                                permitted: now,
                            });
                        }
                    }
                    for o in owners {
                        cross.by_shard.entry(o).or_default().insert(action.clone());
                    }
                }
            }
        }

        // ---- Re-home orphan subscriptions the new constraint makes live.
        // A subscription to an action no shard owned parks in the orphan
        // registry (cached not-permitted); if the grown partition covers
        // the action, it becomes a real shard-local or cross-shard
        // subscription now — its owners can only be new shards, because
        // existing alphabets did not change.  A status flip notifies.
        let mut new_subscriptions: Vec<SubscriptionRegistry> =
            (0..new_engines.len()).map(|_| SubscriptionRegistry::new()).collect();
        let rehomed = lock(&shared.orphan_subscriptions)
            .extract(|action| !new_router.owners(action).is_empty());
        for (action, clients, cached) in rehomed {
            let owners = new_router.owners(&action);
            debug_assert!(owners.iter().all(|&o| o >= old_len), "orphans were unowned");
            if let [owner] = owners.as_slice() {
                let i = owner - old_len;
                let key = new_router
                    .alphabet(*owner)
                    .actions()
                    .find(|a| a.matches_concrete(&action))
                    .cloned()
                    .unwrap_or_else(|| action.clone());
                for &client in &clients {
                    new_subscriptions[i].subscribe(client, action.clone(), key.clone(), cached);
                }
            } else {
                let bits: Vec<bool> = owners
                    .iter()
                    .map(|&o| new_engines[o - old_len].1.is_permitted(&action))
                    .collect();
                flips.extend(promote_subscription(shared, &action, owners, bits, clients, cached));
            }
        }
        for (i, registry) in new_subscriptions.iter_mut().enumerate() {
            let engine = &new_engines[i].1;
            flips.extend(registry.refresh(|a| engine.is_permitted(a)));
        }

        // ---- Assemble the new shards: slot cells on the bench plus
        // placement-table entries.  No threads spawn — the pool workers the
        // placement names pick the new shards up on their next pass.  The
        // slots register *before* the topology installs, so no enqueue can
        // ever race a missing slot.
        let mut new_senders = Vec::with_capacity(new_engines.len());
        let mut new_gates = Vec::with_capacity(new_engines.len());
        {
            let pool = &shared.pool;
            for (i, (idx, engine, _)) in new_engines.into_iter().enumerate() {
                let (tx, rx): (Sender<Task>, Receiver<Task>) = unbounded();
                new_senders.push(tx);
                let gate = Arc::new(ShardGate::new(shared.queue_limit, shared.shed));
                new_gates.push(Arc::clone(&gate));
                let state = ShardState {
                    id: idx,
                    engine,
                    reservations: std::mem::take(&mut new_reservations[i]),
                    subscriptions: std::mem::take(&mut new_subscriptions[i]),
                    log: Vec::new(),
                    epoch: new_epochs[i],
                    wal: shared.durability.clone(),
                    stat_base: StatDelta::ZERO,
                };
                // Seed the new shard's published reservation fingerprint so
                // post-migration conditional votes verify against the
                // migrated table, not the empty default.
                publish_reservation_fp(shared, &state);
                // A new shard is born with replayed history its (empty) log
                // stream does not cover: snapshot it before it serves.
                if let Some(cap) = state.capture() {
                    let hub = shared.durability.as_ref().expect("capture implies a hub");
                    hub.vault().save_blob(
                        &durability::snap_blob(idx),
                        &durability::encode_shard_checkpoint(&cap),
                    );
                }
                let cell = Arc::new(ShardSlot {
                    rx,
                    gate,
                    serve: Mutex::new(SlotServe {
                        phase: SlotPhase::Live(Box::new(state)),
                        pushback: None,
                        divert_below: 0,
                    }),
                });
                {
                    let mut slots = pool.slots.write().unwrap_or_else(|e| e.into_inner());
                    debug_assert_eq!(slots.len(), idx, "new shard slots register in id order");
                    slots.push(cell);
                }
                pool.core.push_shard(idx % pool.core.workers());
            }
        }

        // ---- Install the next epoch.  The store of the epoch mirror
        // happens before any paused worker resumes, and every task routed
        // to a widened action targets a still-paused shard, so no worker
        // can act on a stale route between the swap and the resume.
        let mut queues = topo.queues.clone();
        queues.extend(new_senders);
        let mut gates = topo.gates.clone();
        gates.extend(new_gates);
        let epoch = new_router.epoch();
        let joined_expr = Expr::sync(topo.expr.clone(), constraint.clone());
        let new_topology = Arc::new(Topology {
            router: new_router,
            queues,
            gates,
            bounded: shared.queue_limit > 0,
            pool: Arc::clone(&topo.pool),
            expr: joined_expr.clone(),
            alphabet: topo.alphabet.union(&constraint.alphabet()),
        });
        {
            let mut slot = self.topology.write().unwrap_or_else(|e| e.into_inner());
            *slot = new_topology;
            shared.epoch.store(epoch, Ordering::Release);
        }

        // ---- Resume the quiesced workers and commit the bookkeeping.  A
        // tile compiled against the pre-migration ensemble must never serve
        // a post-migration step: drop every affected engine's tables (and
        // bump its tier epoch) before the worker resumes.
        let migrated_shards: Vec<usize> = paused.iter().map(|(s, _, _)| *s).collect();
        for (_, state, _) in paused.iter_mut() {
            state.engine.invalidate_tier();
        }
        // ---- Make the repartition durable before any worker resumes.  The
        // migrated shards are re-snapshotted (their snapshots must stop
        // carrying the subscriptions promoted above), the topology blob
        // switches recovery over to the widened partition, and the
        // manifest's cross/orphan registries follow the promotion.  Order
        // matters for crash safety: a per-shard snapshot is valid under
        // either topology (migration never touches an existing shard's
        // engine or alphabet), so a crash before the blob rewrite simply
        // recovers the old partition.
        if let Some(hub) = &shared.durability {
            for (_, state, _) in paused.iter() {
                if let Some(cap) = state.capture() {
                    hub.vault().save_blob(
                        &durability::snap_blob(cap.shard),
                        &durability::encode_shard_checkpoint(&cap),
                    );
                    hub.vault().truncate(DurabilityHub::shard_stream(cap.shard), cap.covered);
                }
            }
            write_topology_blob(hub, &joined_expr, &new_partition);
            if let Some(blob) = hub.vault().load_blob(durability::MANIFEST_BLOB) {
                let mut manifest = durability::decode_manifest(&blob)?;
                manifest.cross = export_cross(&lock(&shared.cross_subscriptions));
                manifest.orphans = lock(&shared.orphan_subscriptions).export();
                hub.vault()
                    .save_blob(durability::MANIFEST_BLOB, &durability::encode_manifest(&manifest));
            }
            hub.vault().sync();
        }
        resume_paused(&shared.pool, paused);
        let repart = &shared.repart;
        repart.repartitions.fetch_add(1, Ordering::Relaxed);
        repart.migrated_shard_states.fetch_add(migrated_shards.len() as u64, Ordering::Relaxed);
        repart.replayed_actions.fetch_add(replayed as u64, Ordering::Relaxed);
        repart.migrated_reservations.fetch_add(migrated_reservations as u64, Ordering::Relaxed);
        repart.migrated_subscriptions.fetch_add(migrated_subscriptions as u64, Ordering::Relaxed);
        shared.stats.notifications.fetch_add(flips.len() as u64, Ordering::Relaxed);
        if !flips.is_empty() {
            meta_event(shared, StatDelta { notifications: flips.len() as u64, ..StatDelta::ZERO });
        }
        deliver(shared, &flips);
        let report = RepartitionReport {
            epoch,
            added_shards: delta.added.clone(),
            migrated_shards,
            widened_actions: delta.widened.len(),
            replayed_actions: replayed,
            migrated_reservations,
            migrated_subscriptions,
        };
        *partition = new_partition;
        Ok(report)
    }

    /// Acknowledges the oldest processed durable submission (the client has
    /// durably recorded its completion).  Returns false when durability is
    /// off or nothing is unacknowledged.
    pub fn acknowledge_submission(&self) -> bool {
        match &self.shared.durable {
            Some(d) => lock(d).acknowledge(),
            None => false,
        }
    }

    /// Number of journaled submissions not yet acknowledged.
    pub fn unacknowledged_submissions(&self) -> usize {
        match &self.shared.durable {
            Some(d) => lock(d).len(),
            None => 0,
        }
    }

    /// Simulates a crash of the submission path: the volatile delivery
    /// cursor of the durable journal is lost, and every unacknowledged
    /// submission is delivered *again* (at-least-once).  Returns the
    /// completion tickets of the redelivered submissions.
    pub fn crash_redeliver(&self) -> Vec<Ticket<Completion>> {
        let Some(durable) = &self.shared.durable else {
            return Vec::new();
        };
        let records = {
            let mut journal = lock(durable);
            journal.crash_recover();
            let mut out = Vec::new();
            while let Some(record) = journal.dequeue() {
                out.push(record);
            }
            out
        };
        let topo = read_topology(&self.topology);
        records
            .into_iter()
            .map(|record| match record.op {
                DurableOp::Ask { ref action } => {
                    submit_ask(&self.shared, &topo, record.client, action, Credit::Charge)
                }
                DurableOp::Execute { ref action } => {
                    submit_execute(&self.shared, &topo, record.client, action, Credit::Charge)
                }
                DurableOp::Confirm { id } => submit_confirm(&self.shared, &self.topology, id),
                DurableOp::Abort { id } => submit_abort(&self.shared, &self.topology, id),
            })
            .collect()
    }

    /// The write-ahead vault of a durable runtime (`None` when the runtime
    /// was built without one).
    pub fn vault(&self) -> Option<Arc<dyn Vault>> {
        self.shared.durability.as_ref().map(|hub| Arc::clone(hub.vault()))
    }

    /// Cuts a checkpoint without stopping the world: each shard worker
    /// captures its CoW state handle plus the log offset the capture covers
    /// at one of its own task boundaries (a `Checkpoint` task, ordinary
    /// queue order — no global barrier, unaffected shards keep serving),
    /// and the coordinator encodes the captures, writes the snapshot blobs,
    /// the manifest, and the queue checkpoint, then truncates the covered
    /// log prefixes — the `ContinueAsNew`-style rollover that keeps
    /// recovery time proportional to the log *tail*, not the history.
    ///
    /// Crash-safe in every interleaving: snapshot blobs are atomic and
    /// self-describing (each carries the offset it covers), the manifest is
    /// written before any stream is truncated, and a crash between the two
    /// merely replays a longer tail.
    pub fn checkpoint(&self) -> ManagerResult<CheckpointReport> {
        run_checkpoint(&self.shared, &self.topology)
    }

    /// Rebuilds a runtime from a vault: loads the persisted topology, the
    /// latest snapshot of every shard, and replays only each shard's log
    /// *tail* (the records past the snapshot's covered offset).  Cross-shard
    /// commits torn by the crash — journaled by some owners but not others —
    /// are rolled forward on the missing owners (the decision was durable on
    /// at least one stream); reservations granted or released on only part
    /// of their owner set are resolved conservatively (a torn grant with no
    /// visible release completes; anything ambiguous is dropped everywhere,
    /// equivalent to an immediate lease expiry).  Leases still pending
    /// rejoin the timer wheel, overdue ones fire on the next clock advance.
    ///
    /// Durable submissions recovered as unacknowledged are *not* redelivered
    /// automatically — call [`ManagerRuntime::crash_redeliver`] to redeliver
    /// them and collect fresh completion tickets.
    pub fn recover(
        vault: Arc<dyn Vault>,
        options: RuntimeOptions,
    ) -> ManagerResult<ManagerRuntime> {
        recover_runtime(vault, options)
    }

    /// [`ManagerRuntime::recover`] over a [`FileVault`] rooted at `path`.
    pub fn recover_path(
        path: impl AsRef<std::path::Path>,
        options: RuntimeOptions,
    ) -> ManagerResult<ManagerRuntime> {
        let vault = FileVault::open(path, options.fsync)
            .map_err(|e| durability_err(format!("opening vault: {e}")))?;
        ManagerRuntime::recover(Arc::new(vault), options)
    }

    /// Stops the ticker (if any), lets every worker drain its queue, joins
    /// them, and returns the merged log plus final statistics.  Submissions
    /// racing the shutdown complete with [`ManagerError::Disconnected`] —
    /// either failed inline (queue already closed) or failed during the
    /// worker's final drain.  A submission that lands in the narrow window
    /// after a worker's drain but before its queue closes is abandoned, and
    /// a `wait()` on its ticket panics; callers should quiesce their
    /// sessions before shutting down (`wait_timeout`/`poll` never panic).
    pub fn shutdown(self) -> ManagerResult<RuntimeReport> {
        self.ticker_stop.store(true, Ordering::Relaxed);
        for handle in std::mem::take(&mut *lock(&self.ticker)) {
            let _ = handle.join();
        }
        {
            // The enqueue lock makes the Stop markers atomic w.r.t.
            // cross-shard enqueues: a cross task is ordered either before
            // the Stop on *all* of its owners (processed normally) or after
            // it on all of them (failed during the drain) — never half/half,
            // which would strand owners at the rendezvous.
            let topo = read_topology(&self.topology);
            let _guard = lock(&self.shared.cross_enqueue);
            for q in topo.queues.iter() {
                let _ = q.send(Task::Stop);
            }
            topo.pool.core.wake_all();
        }
        let workers = std::mem::take(&mut *lock(&self.workers));
        for handle in workers {
            handle.join().map_err(|_| ManagerError::Disconnected)?;
        }
        // The slot cells keep the queue receivers alive past the workers
        // that served them, so a dropped-worker disconnect never happens on
        // its own: close each queue explicitly so surviving sessions get
        // their submissions failed inline instead of enqueued for nobody.
        for slot in self.shared.pool.slot_snapshot() {
            slot.rx.close();
        }
        let mut entries: Vec<(LogKey, Action)> = Vec::new();
        let mut shards = 0usize;
        for state in lock(&self.shared.pool.finished).drain(..) {
            entries.extend(state.log);
            shards += 1;
        }
        entries.sort_by_key(|(key, _)| *key);
        Ok(RuntimeReport {
            log: entries.into_iter().map(|(_, action)| action).collect(),
            stats: self.shared.stats.snapshot(),
            clock: self.shared.clock.load(Ordering::Relaxed),
            shards,
        })
    }
}

impl Drop for ManagerRuntime {
    /// Dropping without [`ManagerRuntime::shutdown`] must not leak threads:
    /// stopping the service threads releases their clones of the queue
    /// senders, so once the sessions are gone too the channels disconnect
    /// and every pool worker retires its shards and exits — a parked worker
    /// re-polls within [`IDLE_PARK`], the wake below just shortens that.
    fn drop(&mut self) {
        self.ticker_stop.store(true, Ordering::Relaxed);
        self.shared.pool.core.wake_all();
    }
}

/// A client's handle onto the runtime.  Every method submits a task and
/// returns a completion ticket immediately; the `*_blocking` conveniences
/// wait and translate to the blocking manager's result types.
pub struct Session {
    client: ClientId,
    shared: Arc<RuntimeShared>,
    topology: Arc<TopologySlot>,
    notifications: Receiver<Notification>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("client", &self.client).finish()
    }
}

impl Clone for Session {
    /// Clones share the client id *and* the notification stream (a
    /// notification is delivered to whichever clone polls first); open a
    /// fresh session for an independent stream.
    fn clone(&self) -> Session {
        Session {
            client: self.client,
            shared: Arc::clone(&self.shared),
            topology: Arc::clone(&self.topology),
            notifications: self.notifications.clone(),
        }
    }
}

impl Session {
    /// This session's client identifier.
    pub fn client(&self) -> ClientId {
        self.client
    }

    fn snapshot(&self) -> Arc<Topology> {
        read_topology(&self.topology)
    }

    /// Step 1/2 of the coordination protocol: ask for permission.  Resolves
    /// to [`Completion::Granted`] or [`Completion::Denied`]; on a bounded
    /// runtime a shed ask resolves inline to [`Completion::Failed`] with
    /// [`ManagerError::Overloaded`].
    pub fn ask(&self, action: &Action) -> Ticket<Completion> {
        let topo = self.snapshot();
        if let Err(e) = admit_submission(&topo, action, AdmitClass::Commit, AdmitClass::Commit) {
            return completed(Completion::Failed { error: e.into() });
        }
        self.journal(DurableOp::Ask { action: action.clone() });
        submit_ask(&self.shared, &topo, self.client, action, Credit::Held)
    }

    /// The combined ask-and-execute round trip.  Resolves to
    /// [`Completion::Executed`] or [`Completion::Denied`]; a shed execute
    /// resolves inline to [`Completion::Failed`] with
    /// [`ManagerError::Overloaded`] (use [`Session::submit`] for the typed
    /// backpressure surface).
    pub fn execute(&self, action: &Action) -> Ticket<Completion> {
        match self.submit(action) {
            Ok(t) => t,
            Err(e) => completed(Completion::Failed { error: e.into() }),
        }
    }

    /// The typed submission path of bounded admission: like
    /// [`Session::execute`], but a shed submission returns the
    /// [`SubmitError::Overloaded`] backpressure ticket directly — nothing
    /// was journaled or enqueued anywhere, and the submission is safe to
    /// retry after the hinted backoff.  On unbounded runtimes this never
    /// errs.
    pub fn submit(&self, action: &Action) -> Result<Ticket<Completion>, SubmitError> {
        let topo = self.snapshot();
        admit_submission(&topo, action, AdmitClass::Commit, AdmitClass::Speculative)?;
        self.journal(DurableOp::Execute { action: action.clone() });
        Ok(submit_execute(&self.shared, &topo, self.client, action, Credit::Held))
    }

    /// Submits a whole *window* of combined executes with one topology
    /// snapshot, one enqueue-lock acquisition, and one channel send per
    /// consecutive same-shard run — the session-side batching that closes
    /// most of the per-action queue overhead of the runtime on low-core
    /// hosts.  The returned tickets align with `actions`; per-action
    /// outcomes, the merged log, and the statistics are identical to
    /// submitting the window action by action ([`Session::execute`]), since
    /// per-queue enqueue order is preserved.
    ///
    /// Actions outside every shard alphabet (and non-concrete actions)
    /// resolve inline, before any lock is taken.
    pub fn submit_batch(&self, actions: &[Action]) -> Vec<Ticket<Completion>> {
        let shared = &self.shared;
        let topo = self.snapshot();
        let mut out = Vec::with_capacity(actions.len());
        // Plan phase: classify lock-free; inline the denials.  On a bounded
        // runtime each action passes admission *before* it is journaled —
        // a shed action resolves inline to `Overloaded`, leaves no journal
        // entry, and holds no credit; an admitted one holds one credit on
        // each owning shard until its worker dequeues it.
        let mut pending: Vec<(Action, Route, TicketIssuer<Completion>)> = Vec::new();
        for action in actions {
            let route = action.is_concrete().then(|| topo.router.classify(action));
            if topo.bounded {
                if let Some(route) = &route {
                    let class = match route {
                        Route::Multi(_) => AdmitClass::Speculative,
                        _ => AdmitClass::Commit,
                    };
                    if let Err(e) = admit_route(&topo, route, class) {
                        out.push(completed(Completion::Failed { error: e.into() }));
                        continue;
                    }
                }
            }
            shared.stats.asks.fetch_add(1, Ordering::Relaxed);
            self.journal(DurableOp::Execute { action: action.clone() });
            match route {
                None => {
                    meta_event(shared, StatDelta { asks: 1, ..StatDelta::ZERO });
                    out.push(completed(Completion::Failed {
                        error: ManagerError::NonConcreteAction { action: action.to_string() },
                    }));
                }
                Some(Route::None) => {
                    shared.stats.denials.fetch_add(1, Ordering::Relaxed);
                    meta_event(shared, StatDelta { asks: 1, denials: 1, ..StatDelta::ZERO });
                    out.push(completed(Completion::Denied));
                }
                Some(route) => {
                    let (issuer, t) = ticket();
                    pending.push((action.clone(), route, issuer));
                    out.push(t);
                }
            }
        }
        if pending.is_empty() {
            return out;
        }
        // Dispatch phase: one enqueue-lock acquisition for the window;
        // consecutive same-shard singles coalesce into one Task::Batch.
        let submitted = stamp_submitted(shared);
        let mut run: Vec<SingleTask> = Vec::new();
        let mut run_shard = usize::MAX;
        let _guard = lock(&shared.cross_enqueue);
        for (action, route, issuer) in pending {
            match route {
                Route::None => unreachable!("denied in the plan phase"),
                Route::Single(shard) => {
                    if shard != run_shard {
                        flush_run(&topo, run_shard, &mut run);
                        run_shard = shard;
                    }
                    run.push(SingleTask {
                        epoch: topo.epoch(),
                        client: self.client,
                        op: Op::Execute { action },
                        ticket: issuer,
                        submitted,
                    });
                }
                Route::Multi(owners) => {
                    flush_run(&topo, run_shard, &mut run);
                    enqueue_exec(&topo, owners, action, issuer, submitted, Credit::Held);
                }
            }
        }
        flush_run(&topo, run_shard, &mut run);
        out
    }

    /// Step 4/5: confirm a granted reservation.  Resolves to
    /// [`Completion::Confirmed`] or [`Completion::Failed`].
    pub fn confirm(&self, reservation: u64) -> Ticket<Completion> {
        self.journal(DurableOp::Confirm { id: reservation });
        submit_confirm(&self.shared, &self.topology, reservation)
    }

    /// Explicitly releases a granted reservation without executing it.
    pub fn abort(&self, reservation: u64) -> Ticket<Completion> {
        self.journal(DurableOp::Abort { id: reservation });
        submit_abort(&self.shared, &self.topology, reservation)
    }

    /// Subscribes to permissibility changes of an action; the completion
    /// carries the current status, later changes arrive via
    /// [`Session::poll_notifications`].  Registrations are probe-class
    /// traffic: a bounded runtime sheds them first.
    pub fn subscribe(&self, action: &Action) -> Ticket<Completion> {
        let shared = &self.shared;
        let topo = self.snapshot();
        if let Err(e) = admit_submission(&topo, action, AdmitClass::Probe, AdmitClass::Probe) {
            return completed(Completion::Failed { error: e.into() });
        }
        match topo.router.classify(action) {
            Route::None => {
                lock(&shared.orphan_subscriptions).subscribe(
                    self.client,
                    action.clone(),
                    action.clone(),
                    false,
                );
                if let Some(hub) = &shared.durability {
                    hub.log_meta(&WalRecord::Subscribe {
                        client: self.client,
                        action: action.clone(),
                        permitted: false,
                    });
                }
                completed(Completion::Subscribed { permitted: false })
            }
            Route::Single(shard) => dispatch_single(
                shared,
                &topo,
                shard,
                self.client,
                Op::Subscribe { action: action.clone() },
                Credit::Held,
            ),
            Route::Multi(owners) => dispatch_cross(
                shared,
                &topo,
                owners,
                CrossOp::Subscribe { client: self.client, action: action.clone() },
                Credit::Held,
            ),
        }
    }

    /// Removes a subscription.
    pub fn unsubscribe(&self, action: &Action) -> Ticket<Completion> {
        let shared = &self.shared;
        let topo = self.snapshot();
        match topo.router.classify(action) {
            Route::None => {
                lock(&shared.orphan_subscriptions).unsubscribe(self.client, action);
                if let Some(hub) = &shared.durability {
                    hub.log_meta(&WalRecord::Unsubscribe {
                        client: self.client,
                        action: action.clone(),
                    });
                }
                completed(Completion::Unsubscribed)
            }
            // Unsubscribes are never shed: dropping one would leak the
            // registry entry the client believes is gone.
            Route::Single(shard) => dispatch_single(
                shared,
                &topo,
                shard,
                self.client,
                Op::Unsubscribe { action: action.clone() },
                Credit::Charge,
            ),
            Route::Multi(_) => {
                cross_unsubscribe(shared, self.client, action);
                completed(Completion::Unsubscribed)
            }
        }
    }

    /// Queries whether the action is currently permitted (ignoring
    /// outstanding reservations), evaluated on the owning shards.
    pub fn is_permitted(&self, action: &Action) -> Ticket<Completion> {
        let topo = self.snapshot();
        if let Err(e) = admit_submission(&topo, action, AdmitClass::Probe, AdmitClass::Probe) {
            return completed(Completion::Failed { error: e.into() });
        }
        match topo.router.classify(action) {
            Route::None => completed(Completion::Status { permitted: false }),
            Route::Single(shard) => dispatch_single(
                &self.shared,
                &topo,
                shard,
                self.client,
                Op::Query { action: action.clone() },
                Credit::Held,
            ),
            Route::Multi(owners) => dispatch_cross(
                &self.shared,
                &topo,
                owners,
                CrossOp::Query { action: action.clone() },
                Credit::Held,
            ),
        }
    }

    /// Drains the subscription notifications received so far.
    pub fn poll_notifications(&self) -> Vec<Notification> {
        self.notifications.try_iter().collect()
    }

    /// Advances the runtime's logical clock (see
    /// [`ManagerRuntime::advance_time`]); any session may drive the virtual
    /// clock, exactly as any client could send a tick to the old server.
    pub fn advance_time(&self, delta: u64) -> Vec<Reservation> {
        advance_clock(&self.shared, &self.topology, delta)
    }

    /// Blocking [`Session::ask`] with the blocking manager's result type.
    pub fn ask_blocking(&self, action: &Action) -> ManagerResult<Option<u64>> {
        match self.ask(action).wait() {
            Completion::Granted { reservation } => Ok(Some(reservation)),
            Completion::Denied => Ok(None),
            Completion::Failed { error } => Err(error),
            other => Err(ManagerError::RejectedConfirmation { action: format!("{other:?}") }),
        }
    }

    /// Blocking [`Session::execute`] with the blocking manager's result
    /// type.
    pub fn execute_blocking(&self, action: &Action) -> ManagerResult<Option<Vec<Notification>>> {
        match self.execute(action).wait() {
            Completion::Executed { notifications } => Ok(Some(notifications)),
            Completion::Denied => Ok(None),
            Completion::Failed { error } => Err(error),
            other => Err(ManagerError::RejectedConfirmation { action: format!("{other:?}") }),
        }
    }

    /// Blocking [`Session::confirm`].
    pub fn confirm_blocking(&self, reservation: u64) -> ManagerResult<Vec<Notification>> {
        match self.confirm(reservation).wait() {
            Completion::Confirmed { notifications } => Ok(notifications),
            Completion::Failed { error } => Err(error),
            other => Err(ManagerError::RejectedConfirmation { action: format!("{other:?}") }),
        }
    }

    /// Blocking [`Session::abort`].
    pub fn abort_blocking(&self, reservation: u64) -> ManagerResult<Reservation> {
        match self.abort(reservation).wait() {
            Completion::Aborted { reservation } => Ok(reservation),
            Completion::Failed { error } => Err(error),
            other => Err(ManagerError::RejectedConfirmation { action: format!("{other:?}") }),
        }
    }

    /// Blocking [`Session::subscribe`].
    pub fn subscribe_blocking(&self, action: &Action) -> ManagerResult<bool> {
        match self.subscribe(action).wait() {
            Completion::Subscribed { permitted } => Ok(permitted),
            Completion::Failed { error } => Err(error),
            other => Err(ManagerError::RejectedConfirmation { action: format!("{other:?}") }),
        }
    }

    /// Blocking [`Session::is_permitted`].
    pub fn is_permitted_blocking(&self, action: &Action) -> bool {
        matches!(self.is_permitted(action).wait(), Completion::Status { permitted: true })
    }

    fn journal(&self, op: DurableOp) {
        if let Some(durable) = &self.shared.durable {
            let mut journal = lock(durable);
            journal.enqueue(SubmissionRecord { client: self.client, op });
            // The runtime delivers the submission immediately; the journal
            // entry stays until the client acknowledges the completion.
            let _ = journal.dequeue();
        }
    }
}

// ---------------------------------------------------------------------------
// Submission paths (shared by sessions and durable redelivery).
// ---------------------------------------------------------------------------

fn submit_ask(
    shared: &Arc<RuntimeShared>,
    topo: &Arc<Topology>,
    client: ClientId,
    action: &Action,
    credit: Credit,
) -> Ticket<Completion> {
    shared.stats.asks.fetch_add(1, Ordering::Relaxed);
    if !action.is_concrete() {
        meta_event(shared, StatDelta { asks: 1, ..StatDelta::ZERO });
        return completed(Completion::Failed {
            error: ManagerError::NonConcreteAction { action: action.to_string() },
        });
    }
    match topo.router.classify(action) {
        Route::None => {
            // Unknown to every shard: denied inline, before any queue or
            // lock is touched (the signature-level miss in the router).
            shared.stats.denials.fetch_add(1, Ordering::Relaxed);
            meta_event(shared, StatDelta { asks: 1, denials: 1, ..StatDelta::ZERO });
            completed(Completion::Denied)
        }
        Route::Single(shard) => {
            dispatch_single(shared, topo, shard, client, Op::Ask { action: action.clone() }, credit)
        }
        Route::Multi(owners) => dispatch_cross(
            shared,
            topo,
            owners,
            CrossOp::Ask { client, action: action.clone() },
            credit,
        ),
    }
}

fn submit_execute(
    shared: &Arc<RuntimeShared>,
    topo: &Arc<Topology>,
    client: ClientId,
    action: &Action,
    credit: Credit,
) -> Ticket<Completion> {
    shared.stats.asks.fetch_add(1, Ordering::Relaxed);
    if !action.is_concrete() {
        meta_event(shared, StatDelta { asks: 1, ..StatDelta::ZERO });
        return completed(Completion::Failed {
            error: ManagerError::NonConcreteAction { action: action.to_string() },
        });
    }
    match topo.router.classify(action) {
        Route::None => {
            shared.stats.denials.fetch_add(1, Ordering::Relaxed);
            meta_event(shared, StatDelta { asks: 1, denials: 1, ..StatDelta::ZERO });
            completed(Completion::Denied)
        }
        Route::Single(shard) => dispatch_single(
            shared,
            topo,
            shard,
            client,
            Op::Execute { action: action.clone() },
            credit,
        ),
        Route::Multi(owners) => {
            let (issuer, t) = ticket();
            let submitted = stamp_submitted(shared);
            let _guard = lock(&shared.cross_enqueue);
            enqueue_exec(topo, owners, action.clone(), issuer, submitted, credit);
            t
        }
    }
}

fn submit_confirm(shared: &Arc<RuntimeShared>, slot: &TopologySlot, id: u64) -> Ticket<Completion> {
    let owners = match lock(&shared.reservation_index).get(&id) {
        Some(owners) => owners.clone(),
        None => {
            return completed(Completion::Failed { error: ManagerError::UnknownReservation { id } })
        }
    };
    let topo = covering_topology(slot, &owners);
    match owners.as_slice() {
        [shard] => dispatch_single(shared, &topo, *shard, 0, Op::Confirm { id }, Credit::Charge),
        _ => dispatch_cross(shared, &topo, owners, CrossOp::Confirm { id }, Credit::Charge),
    }
}

fn submit_abort(shared: &Arc<RuntimeShared>, slot: &TopologySlot, id: u64) -> Ticket<Completion> {
    let owners = match lock(&shared.reservation_index).get(&id) {
        Some(owners) => owners.clone(),
        None => {
            return completed(Completion::Failed { error: ManagerError::UnknownReservation { id } })
        }
    };
    let topo = covering_topology(slot, &owners);
    match owners.as_slice() {
        [shard] => dispatch_single(shared, &topo, *shard, 0, Op::Abort { id }, Credit::Charge),
        _ => dispatch_cross(shared, &topo, owners, CrossOp::Abort { id }, Credit::Charge),
    }
}

/// Removes a cross-shard subscription from the runtime-level registry (no
/// shard state is involved).
fn cross_unsubscribe(shared: &RuntimeShared, client: ClientId, action: &Action) {
    if let Some(hub) = &shared.durability {
        hub.log_meta(&WalRecord::Unsubscribe { client, action: action.clone() });
    }
    let mut cross = lock(&shared.cross_subscriptions);
    let remove = match cross.entries.get_mut(action) {
        Some(entry) => {
            entry.clients.retain(|c| *c != client);
            entry.clients.is_empty()
        }
        None => false,
    };
    if remove {
        cross.entries.remove(action);
        shared.cross_entry_count.fetch_sub(1, Ordering::Relaxed);
        for actions in cross.by_shard.values_mut() {
            actions.remove(action);
        }
        cross.by_shard.retain(|_, actions| !actions.is_empty());
    }
}

/// Enqueues an already-issued task on one shard's queue.  `Credit::Charge`
/// callers (forced traffic) take their queue credit here; `Credit::Held`
/// callers reserved it through admission already.
fn enqueue_single(
    topo: &Topology,
    shard: usize,
    client: ClientId,
    op: Op,
    issuer: TicketIssuer<Completion>,
    submitted: Option<Instant>,
    credit: Credit,
) {
    if credit == Credit::Charge {
        topo.gates[shard].charge(1);
    }
    let task =
        Task::Single(SingleTask { epoch: topo.epoch(), client, op, ticket: issuer, submitted });
    match topo.queues[shard].send(task) {
        Ok(()) => topo.pool.core.wake_shard(shard),
        Err(SendError(Task::Single(task))) => {
            task.ticket.complete(Completion::Failed { error: ManagerError::Disconnected });
        }
        Err(_) => unreachable!("send returns the task it was given"),
    }
}

/// Enqueues a task on one shard's queue and returns its ticket.
fn dispatch_single(
    shared: &RuntimeShared,
    topo: &Topology,
    shard: usize,
    client: ClientId,
    op: Op,
    credit: Credit,
) -> Ticket<Completion> {
    let (issuer, t) = ticket();
    enqueue_single(topo, shard, client, op, issuer, stamp_submitted(shared), credit);
    t
}

/// Sends a batched run of same-shard single tasks as one channel message
/// (one [`Task::Single`] when the run has a single element).  The caller
/// holds the enqueue lock and already holds one queue credit per run
/// element (the batch path admits per action); `run` is left empty.
fn flush_run(topo: &Topology, shard: usize, run: &mut Vec<SingleTask>) {
    if run.is_empty() {
        return;
    }
    let task = if run.len() == 1 {
        Task::Single(run.pop().expect("len checked"))
    } else {
        Task::Batch(std::mem::take(run))
    };
    match topo.queues[shard].send(task) {
        Ok(()) => topo.pool.core.wake_shard(shard),
        Err(SendError(task)) => fail_task(task),
    }
    run.clear();
}

/// Enqueues a multi-owner combined execute onto every owner's queue in
/// ascending order.  The caller must hold the cross-enqueue lock; the task
/// (rendezvous state, ticket, action) is built entirely outside of it in
/// the dispatch wrappers — the critical section is exactly the send loop
/// that fixes the task's relative order.
fn enqueue_exec(
    topo: &Topology,
    owners: Vec<usize>,
    action: Action,
    issuer: TicketIssuer<Completion>,
    submitted: Option<Instant>,
    credit: Credit,
) {
    if credit == Credit::Charge {
        for &owner in &owners {
            topo.gates[owner].charge(1);
        }
    }
    let n = owners.len();
    let task = Arc::new(ExecTask {
        epoch: topo.epoch(),
        seq: topo.pool.seq.fetch_add(1, Ordering::Relaxed) + 1,
        owners,
        action,
        submitted,
        decided: AtomicU8::new(EXEC_UNDECIDED),
        sync: Mutex::new(ExecSync {
            stale: None,
            votes: (0..n).map(|_| Vote::Pending).collect(),
            yes_votes: 0,
            promoted_any: false,
            cascade_next: None,
            decision: None,
            applied: 0,
            notes: Vec::new(),
            cross_bits: Vec::new(),
            ticket: Some(issuer),
        }),
        barrier: Condvar::new(),
    });
    let mut failed = false;
    for &owner in &task.owners {
        if topo.queues[owner].send(Task::Exec(Arc::clone(&task))).is_err() {
            failed = true;
            break;
        }
        topo.pool.core.wake_shard(owner);
    }
    if failed {
        // Queues only disconnect when the runtime is gone; nobody will ever
        // rendezvous, so fail the ticket here.
        if let Some(issuer) = lock(&task.sync).ticket.take() {
            issuer.complete(Completion::Failed { error: ManagerError::Disconnected });
        }
    }
}

/// Enqueues an already-issued cross-shard task onto every owner's queue in
/// ascending order.  The caller must hold the cross-enqueue lock — the
/// ordered-enqueue incarnation of the 2PC lock order.
fn enqueue_cross(
    topo: &Topology,
    owners: Vec<usize>,
    op: CrossOp,
    issuer: TicketIssuer<Completion>,
    credit: Credit,
) {
    if credit == Credit::Charge {
        for &owner in &owners {
            topo.gates[owner].charge(1);
        }
    }
    let n = owners.len();
    let task = Arc::new(CrossTask {
        epoch: topo.epoch(),
        seq: topo.pool.seq.fetch_add(1, Ordering::Relaxed) + 1,
        owners,
        op,
        sync: Mutex::new(CrossSync {
            stale: None,
            ticket: Some(issuer),
            votes: 0,
            ok: true,
            any_reservation: false,
            removed: None,
            bits: vec![false; n],
            decision: None,
            granted: None,
            applied: 0,
            notes: vec![Vec::new(); n],
            cross_bits: Vec::new(),
        }),
        barrier: Condvar::new(),
    });
    let mut failed = false;
    for &owner in &task.owners {
        if topo.queues[owner].send(Task::Cross(Arc::clone(&task))).is_err() {
            failed = true;
            break;
        }
        topo.pool.core.wake_shard(owner);
    }
    if failed {
        if let Some(issuer) = lock(&task.sync).ticket.take() {
            issuer.complete(Completion::Failed { error: ManagerError::Disconnected });
        }
    }
}

/// Enqueues a cross-shard task under the enqueue lock and returns its
/// ticket.
fn dispatch_cross(
    shared: &RuntimeShared,
    topo: &Topology,
    owners: Vec<usize>,
    op: CrossOp,
    credit: Credit,
) -> Ticket<Completion> {
    let (issuer, t) = ticket();
    let _guard = lock(&shared.cross_enqueue);
    enqueue_cross(topo, owners, op, issuer, credit);
    t
}

/// Hands every quiesced shard state back to its worker (used on both the
/// success and the abort path of a migration — a paused worker is always
/// resumed).
fn resume_paused(pool: &PoolCtl, paused: Vec<(usize, ShardState, Sender<ShardState>)>) {
    for (_, state, resume_tx) in paused {
        let _ = resume_tx.send(state);
    }
    // A Suspended slot is polled on its owning worker's next visit; make
    // that visit happen now.
    pool.core.wake_all();
}

/// The checkpoint cut ([`ManagerRuntime::checkpoint`]); also invoked by the
/// timer wheel when [`RuntimeOptions::checkpoint_every`] arms the periodic
/// entry, which is why it is a free function over the shared block rather
/// than a method on the runtime handle.
fn run_checkpoint(
    shared: &Arc<RuntimeShared>,
    slot: &TopologySlot,
) -> ManagerResult<CheckpointReport> {
    let hub = shared
        .durability
        .as_ref()
        .ok_or_else(|| durability_err("checkpoint requires a runtime with a vault"))?;
    let topo = read_topology(slot);
    let mut pending = Vec::with_capacity(topo.queues.len());
    for (shard, queue) in topo.queues.iter().enumerate() {
        let (issuer, t) = ticket();
        if queue.send(Task::Checkpoint(issuer)).is_ok() {
            topo.pool.core.wake_shard(shard);
            pending.push(t);
        }
    }
    let shards = pending.len();
    let mut captures: Vec<ShardCapture> = pending.into_iter().filter_map(|t| t.wait()).collect();
    captures.sort_by_key(|c| c.shard);
    let mut bytes = 0u64;
    for cap in &captures {
        let blob = durability::encode_shard_checkpoint(cap);
        bytes += blob.len() as u64;
        hub.vault().save_blob(&durability::snap_blob(cap.shard), &blob);
    }
    // Fold the covered meta-stream prefix into the manifest's statistics
    // base.  Records racing in *after* the captured length keep an index
    // >= `meta_len`, survive the truncation, and replay as tail — the
    // event deltas are order-independent, so the cut is race-free.
    let previous = match hub.vault().load_blob(durability::MANIFEST_BLOB) {
        Some(blob) => Some(durability::decode_manifest(&blob)?),
        None => None,
    };
    let (mut meta_base, old_covered) =
        previous.map_or((StatDelta::ZERO, 0), |m| (m.meta_base, m.meta_covered));
    let meta_len = hub.vault().stream_len(META_STREAM);
    let mut clock = shared.clock.load(Ordering::Relaxed);
    for (index, payload) in hub.vault().read_from(META_STREAM, old_covered) {
        if index >= meta_len {
            break;
        }
        let record =
            WalRecord::decode(&payload).map_err(|e| durability::codec_err("meta record", e))?;
        if let WalRecord::Clock { now } = record {
            clock = clock.max(now);
        }
        meta_base.add(&record.delta());
    }
    let manifest = Manifest {
        clock,
        meta_covered: meta_len,
        meta_base,
        log_seq: shared.log_seq.load(Ordering::Relaxed),
        next_reservation: shared.next_reservation.load(Ordering::Relaxed),
        cross: export_cross(&lock(&shared.cross_subscriptions)),
        orphans: lock(&shared.orphan_subscriptions).export(),
        placement: shared.pool.core.placement(),
    };
    hub.vault().save_blob(durability::MANIFEST_BLOB, &durability::encode_manifest(&manifest));
    // Queue checkpoint under the journal lock: the backend appends
    // before the in-memory push, so pending list and stream length are
    // consistent exactly while the lock is held.
    if let Some(durable) = &shared.durable {
        let journal = lock(durable);
        let covered = hub.vault().stream_len(QUEUE_STREAM);
        let cp = QueueCheckpoint { covered, pending: journal.pending() };
        hub.vault().save_blob(durability::QUEUE_BLOB, &durability::encode_queue_checkpoint(&cp));
        drop(journal);
        hub.vault().truncate(QUEUE_STREAM, covered);
    }
    for cap in &captures {
        hub.vault().truncate(DurabilityHub::shard_stream(cap.shard), cap.covered);
    }
    hub.vault().truncate(META_STREAM, meta_len);
    hub.vault().sync();
    Ok(CheckpointReport { shards, captured: captures.len(), bytes })
}

/// One pass of the hot-shard rebalancer: sample every shard's backlog into
/// the EWMA table and, when the hottest shard has run at ≥ 2× the mean for
/// three consecutive passes, isolate it onto its own worker.  Returns
/// whether an isolation happened.
fn rebalance_pass(shared: &RuntimeShared) -> bool {
    let pool = &shared.pool;
    let slots = pool.slot_snapshot();
    if slots.len() < 2 || pool.core.workers() < 2 {
        return false;
    }
    let mut rb = lock(&pool.rebalance);
    rb.ewma.resize(slots.len(), 0);
    for (i, slot) in slots.iter().enumerate() {
        // The backlog signal: admitted queue units when the gate is
        // bounded, raw channel length otherwise — whichever is larger.
        let depth = slot.gate.queued_depth().max(slot.rx.len()) as u64;
        let e = rb.ewma[i];
        rb.ewma[i] = e - e / 4 + depth * 4;
    }
    let (hot, hot_ewma) =
        rb.ewma.iter().copied().enumerate().max_by_key(|&(_, e)| e).expect("at least two shards");
    let mean = rb.ewma.iter().sum::<u64>() / rb.ewma.len() as u64;
    // Sustained-hot test: a real backlog (≥ 2 tasks smoothed) running at
    // twice the fleet mean.
    if hot_ewma < 2 * 16 || hot_ewma < mean.saturating_mul(2) {
        rb.streak = 0;
        return false;
    }
    if rb.candidate != hot {
        rb.candidate = hot;
        rb.streak = 0;
    }
    rb.streak += 1;
    if rb.streak < 3 {
        return false;
    }
    rb.streak = 0;
    drop(rb);
    isolate_shard(pool, hot)
}

/// Isolates `hot` onto its own worker by moving every co-located shard to
/// the *other* workers, round-robin.  The hot shard itself never moves —
/// its queue, gate, and slot stay put, so the migration is a placement-
/// table write plus wakeups: no history replay, no epoch bump, no task ever
/// in flight between workers (exclusivity lives in the slot phase, not the
/// table).  Returns whether any shard actually moved.
fn isolate_shard(pool: &PoolCtl, hot: usize) -> bool {
    let placement = pool.core.placement();
    let workers = pool.core.workers();
    if workers < 2 {
        return false;
    }
    let Some(&hot_worker) = placement.get(hot) else { return false };
    let siblings: Vec<usize> = placement
        .iter()
        .enumerate()
        .filter(|&(s, &w)| w == hot_worker && s != hot)
        .map(|(s, _)| s)
        .collect();
    if siblings.is_empty() {
        // Already isolated.
        pool.core.last_isolated.store(hot, Ordering::Relaxed);
        return false;
    }
    let mut target = (hot_worker + 1) % workers;
    for s in siblings {
        pool.core.assign(s, target);
        target = (target + 1) % workers;
        if target == hot_worker {
            target = (target + 1) % workers;
        }
    }
    pool.core.rebalances.fetch_add(1, Ordering::Relaxed);
    pool.core.last_isolated.store(hot, Ordering::Relaxed);
    pool.core.wake_all();
    true
}

/// Installs a promoted (previously shard-local) subscription as a
/// cross-shard entry and returns the flip notifications if the conjunction
/// disagrees with the shard-local cached status.
fn promote_subscription(
    shared: &RuntimeShared,
    action: &Action,
    owners: Vec<usize>,
    bits: Vec<bool>,
    clients: Vec<ClientId>,
    cached: bool,
) -> Vec<Notification> {
    let permitted = bits.iter().all(|b| *b);
    let mut cross = lock(&shared.cross_subscriptions);
    for &owner in &owners {
        cross.by_shard.entry(owner).or_default().insert(action.clone());
    }
    let entry = cross.entries.entry(action.clone()).or_insert_with(|| {
        shared.cross_entry_count.fetch_add(1, Ordering::Relaxed);
        crate::manager::CrossEntry {
            owners: owners.clone(),
            bits: bits.clone(),
            clients: Vec::new(),
            permitted: cached,
        }
    });
    entry.owners = owners;
    entry.bits = bits;
    for client in clients {
        if !entry.clients.contains(&client) {
            entry.clients.push(client);
        }
    }
    entry.clients.sort_unstable();
    let mut out = Vec::new();
    if permitted != entry.permitted {
        entry.permitted = permitted;
        for client in &entry.clients {
            out.push(Notification { client: *client, action: action.clone(), permitted });
        }
    }
    out
}

/// Advances the clock and runs the due lease expirations as shard tasks.
///
/// The timer payload's owner list is the one recorded at grant time; a
/// migration may since have widened the reservation onto new shards.  The
/// authoritative owner set therefore comes from the reservation index at
/// fire time — this is how a scheduled lease *re-arms* across a
/// repartition without rewriting wheel entries.
fn advance_clock(shared: &Arc<RuntimeShared>, slot: &TopologySlot, delta: u64) -> Vec<Reservation> {
    let now = shared.clock.fetch_add(delta, Ordering::Relaxed) + delta;
    if let Some(hub) = &shared.durability {
        hub.log_meta(&WalRecord::Clock { now });
    }
    let events = lock(&shared.timers).advance(now);
    let mut checkpoint_due = false;
    let tickets: Vec<Ticket<Completion>> = events
        .into_iter()
        .filter_map(|event| {
            let event = match event {
                TimerEvent::Expiry(event) => event,
                TimerEvent::Checkpoint => {
                    // Coalesce however many periods `delta` skipped over
                    // into one cut, taken after the expiries dispatch.
                    checkpoint_due = true;
                    return None;
                }
            };
            let owners =
                lock(&shared.reservation_index).get(&event.id).cloned().unwrap_or(event.owners);
            let topo = covering_topology(slot, &owners);
            Some(match owners.as_slice() {
                [shard] => dispatch_single(
                    shared,
                    &topo,
                    *shard,
                    0,
                    Op::Expire { id: event.id, now },
                    Credit::Charge,
                ),
                _ => dispatch_cross(
                    shared,
                    &topo,
                    owners,
                    CrossOp::Expire { id: event.id, now },
                    Credit::Charge,
                ),
            })
        })
        .collect();
    let expired = tickets
        .into_iter()
        .filter_map(|t| match t.wait() {
            Completion::Expired { reservation } => reservation,
            _ => None,
        })
        .collect();
    if checkpoint_due {
        // Re-arm first: a failed cut (e.g. vault error) must not disarm the
        // period.  The caller is the ticker or a session advancing virtual
        // time — never a pool worker — so waiting on the capture tickets
        // inside run_checkpoint cannot self-deadlock.
        lock(&shared.timers).schedule(now + shared.checkpoint_every, TimerEvent::Checkpoint);
        if run_checkpoint(shared, slot).is_ok() {
            shared.auto_checkpoints.fetch_add(1, Ordering::Relaxed);
        }
    }
    expired
}

// ---------------------------------------------------------------------------
// The worker: one pool thread serving the shard slots placement assigns it.
// ---------------------------------------------------------------------------

/// True on hosts with a single hardware thread (cached).  One worker policy
/// flips there: ticket wakeups are deferred and flushed in batches so a
/// client/worker pair context-switches per drained queue instead of per
/// completion.
fn single_core() -> bool {
    static CORES: AtomicU64 = AtomicU64::new(0);
    let cached = CORES.load(Ordering::Relaxed);
    if cached != 0 {
        return cached == 1;
    }
    let parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    CORES.store(parallelism as u64, Ordering::Relaxed);
    parallelism == 1
}

/// Tasks a worker serves from one shard before moving to the next — the
/// bounded run-to-completion slice that keeps a hot shard from starving its
/// co-located siblings.
const SLICE_BUDGET: usize = 128;

/// How long a rendezvous waiter parks between help attempts.  A vote
/// deposit wakes the barrier immediately; the timeout only bounds how long
/// a worker can miss *new enqueues* on its other shards while it waits
/// (those wake the worker parker, not the barrier).
const HELP_PARK: Duration = Duration::from_micros(200);

/// Idle-worker park backstop.  Wakeups route through the placement table;
/// events that bypass it (a queue disconnecting on runtime drop, a
/// placement write racing a park) are caught by this periodic re-poll.
const IDLE_PARK: Duration = Duration::from_millis(10);

/// Per-drain context a shard worker threads through its task processing:
/// the deferred ticket-wakeup batch (single-core hosts) plus, when enabled,
/// the queueing-delay samples of the drain.
struct WorkerCtx {
    /// Deferred ticket wakeups — flushed before every park and on exit, so
    /// waiters are never stranded, and a whole queue drain costs one
    /// client/worker context-switch round instead of one per completion.
    wakes: WakeBatch,
    /// Queueing-delay sampling enabled ([`RuntimeOptions::queue_metrics`]).
    metrics: bool,
    /// This shard's admission gate; completed executes feed its
    /// wait/service EWMAs whenever the gate is active.
    gate: Arc<ShardGate>,
    /// Instant the worker dequeued the task (or drained the batch) it is
    /// currently processing — the boundary between enqueue wait and
    /// service time.
    dequeued: Instant,
    /// (enqueue-wait, service) nanosecond pairs of this drain.
    samples: Vec<(u64, u64)>,
}

impl WorkerCtx {
    fn new(metrics: bool, gate: Arc<ShardGate>) -> WorkerCtx {
        WorkerCtx {
            wakes: WakeBatch::new(),
            metrics,
            gate,
            dequeued: Instant::now(),
            samples: Vec::new(),
        }
    }

    /// Whether completed tasks are timed at all (sampling or gate EWMAs).
    fn timing(&self) -> bool {
        self.metrics || self.gate.active()
    }

    /// Stamps the dequeue boundary of the next task (timed modes only).
    fn stamp_dequeue(&mut self) {
        if self.timing() {
            self.dequeued = Instant::now();
        }
    }

    /// Records one completed execute: how long it sat in the queue before
    /// this worker picked it up vs how long the worker spent on it.  For a
    /// cross-shard execute the recording owner's own drain boundary is the
    /// reference — the honest per-shard view of the rendezvous cost.
    fn record(&mut self, submitted: Option<Instant>) {
        if !self.timing() {
            return;
        }
        let wait =
            submitted.map_or(0, |s| self.dequeued.saturating_duration_since(s).as_nanos() as u64);
        let service = self.dequeued.elapsed().as_nanos() as u64;
        self.gate.observe(wait, service);
        if self.metrics {
            self.samples.push((wait, service));
        }
    }

    /// Delivers every deferred wakeup and publishes the drain's samples.
    fn flush(&mut self, shared: &RuntimeShared) {
        self.wakes.flush();
        if !self.samples.is_empty() {
            lock(&shared.queue_samples).append(&mut self.samples);
        }
    }
}

/// Fulfils a completion ticket from a shard worker.  On single-core hosts
/// the waiter wakeup is deferred into the drain's wake batch (flushed
/// before every park and on worker exit); elsewhere the completion wakes
/// immediately.
fn fulfil(ticket: TicketIssuer<Completion>, value: Completion, cx: &mut WorkerCtx) {
    if single_core() {
        cx.wakes.push(ticket.complete_deferred(value));
    } else {
        ticket.complete(value);
    }
}

/// The help-while-waiting context a worker threads into its rendezvous
/// waits: which worker it is, and the pool whose placement table names its
/// other shards.
struct Help<'a> {
    pool: &'a Arc<PoolCtl>,
    me: usize,
}

/// Serves one task from one of this worker's *other* owned shards while the
/// current frame is parked on a rendezvous.  The shard being waited on is
/// marked Busy, so checkout skips it; each nested frame claims a distinct
/// slot, bounding the recursion depth by the number of shards the worker
/// owns.  `limit` is the sequence of the rendezvous the caller is blocked
/// on: only tasks ordered at or before it may be served (see
/// [`PoolCtl::seq`] — a later task could block beneath this frame while its
/// quorum needs the shard this frame holds).  Returns whether any task was
/// served.
fn help_one(shared: &Arc<RuntimeShared>, help: &Help<'_>, cx: &mut WorkerCtx, limit: u64) -> bool {
    for shard in help.pool.core.owned(help.me) {
        if let SliceOutcome::Progressed =
            serve_slice(shared, help.pool, help.me, shard, cx, 1, limit)
        {
            return true;
        }
    }
    false
}

/// The pool worker loop: walk the shards the placement table assigns this
/// worker, serve each a bounded slice, park when a full pass makes no
/// progress, exit when every shard has finished.
fn pool_worker(shared: Arc<RuntimeShared>, me: usize) {
    let pool = Arc::clone(&shared.pool);
    // The inert placeholder gate; serve_slice swaps the served shard's own
    // gate in for the duration of each slice.
    let idle_gate = Arc::new(ShardGate::new(0, shared.shed));
    let mut cx = WorkerCtx::new(shared.queue_metrics, idle_gate);
    loop {
        let mut progressed = false;
        for shard in pool.core.owned(me) {
            if let SliceOutcome::Progressed =
                serve_slice(&shared, &pool, me, shard, &mut cx, SLICE_BUDGET, u64::MAX)
            {
                progressed = true;
            }
        }
        if pool.core.live.load(Ordering::Acquire) == 0 {
            break;
        }
        if !progressed {
            // Going idle: deliver the banked wakeups first — the woken
            // clients are exactly who refills the queues — then compile one
            // hot engine's execution tier off the submission path, and only
            // then park.
            cx.flush(&shared);
            if !compile_one_idle(&pool, me) {
                pool.core.park(me, IDLE_PARK);
            }
        }
    }
    cx.flush(&shared);
}

/// Compiles the execution tier of at most one owned shard that wants it,
/// checking states out through the normal slot protocol.  Returns whether
/// any compile ran (in which case the worker skips its park — fresh work
/// may have arrived meanwhile).
fn compile_one_idle(pool: &Arc<PoolCtl>, me: usize) -> bool {
    for shard in pool.core.owned(me) {
        let Some(slot) = pool.slot(shard) else { continue };
        let Checkout::State(mut st, pushback, divert_below) = checkout(&slot) else { continue };
        let compiled = if st.engine.tier_wants_compile() {
            st.engine.compile_tier();
            true
        } else {
            false
        };
        checkin(&slot, st, pushback, divert_below);
        if compiled {
            return true;
        }
    }
    false
}

/// Serves up to `budget` tasks from `shard`'s queue, checking its state out
/// of the slot for the duration.  Queue order is preserved because only the
/// Busy-holder pops the shard's queue; run-to-completion per task is
/// preserved because the state never leaves this frame mid-task.  `limit`
/// bounds which rendezvous tasks may start (`u64::MAX` at top level; the
/// blocked task's sequence in help frames — see [`help_one`]).
fn serve_slice(
    shared: &Arc<RuntimeShared>,
    pool: &Arc<PoolCtl>,
    me: usize,
    shard: usize,
    cx: &mut WorkerCtx,
    budget: usize,
    limit: u64,
) -> SliceOutcome {
    let Some(slot) = pool.slot(shard) else { return SliceOutcome::Skip };
    let (mut st, mut pushback, mut divert_below) = match checkout(&slot) {
        Checkout::State(st, pushback, divert) => (st, pushback, divert),
        Checkout::Skip => return SliceOutcome::Skip,
        Checkout::Done => return SliceOutcome::Finished,
    };
    // Nested frames (help-while-waiting) serve different shards through the
    // same ctx: swap this shard's gate in, restore the caller's on exit.
    let prev_gate = std::mem::replace(&mut cx.gate, Arc::clone(&slot.gate));
    let help = Help { pool, me };
    let mut served = 0usize;
    let outcome = loop {
        if served >= budget {
            break SliceOutcome::Progressed;
        }
        // A pushback was released at its original dequeue; everything
        // freshly received returns its queue credits here, exactly once.
        let fresh = pushback.is_none();
        let task = match pushback.take() {
            Some(task) => task,
            None => match slot.rx.try_recv() {
                Ok(task) => task,
                Err(TryRecvError::Empty) => {
                    break if served > 0 { SliceOutcome::Progressed } else { SliceOutcome::Idle };
                }
                Err(TryRecvError::Disconnected) => {
                    // Every sender dropped (runtime dropped without
                    // shutdown): the shard is finished.
                    finish_slot(pool, &slot, st);
                    cx.gate = prev_gate;
                    return SliceOutcome::Finished;
                }
            },
        };
        if fresh {
            cx.gate.release(task_units(&task));
        }
        // Help-frame ordering bound: a rendezvous task ordered after the one
        // the caller is blocked on must not start beneath it.
        if task_seq(&task) > limit {
            pushback = Some(task);
            break if served > 0 { SliceOutcome::Progressed } else { SliceOutcome::Idle };
        }
        cx.stamp_dequeue();
        served += 1;
        match task {
            Task::Single(task) => {
                if let Some(task) = ensure_single_route(shared, &st, task, cx, &mut divert_below) {
                    process_single(shared, &mut st, task, cx)
                }
            }
            Task::Batch(tasks) => {
                process_batch_window(shared, &mut st, tasks, cx, &mut divert_below)
            }
            Task::Cross(task) => {
                if cross_is_live(shared, &task, &mut divert_below) {
                    cx.flush(shared);
                    process_cross(shared, &mut st, &task, &help, cx)
                }
            }
            Task::Exec(task) => {
                if !exec_is_live(shared, &task, &mut divert_below) {
                    continue;
                }
                // Coalesce the already-queued consecutive run of same-owner-
                // set executes — plus the single-owner executes interleaved
                // between them — into one speculative batch: the rendezvous
                // votes once per batch instead of once per action.
                let mut batch = Batch::new(task);
                loop {
                    match slot.rx.try_recv() {
                        Ok(Task::Exec(next))
                            if next.owners == batch.owners && next.seq <= limit =>
                        {
                            cx.gate.release(1);
                            if exec_is_live(shared, &next, &mut divert_below) {
                                batch.push_exec(shared, next)
                            }
                        }
                        Ok(Task::Single(single)) if matches!(single.op, Op::Execute { .. }) => {
                            cx.gate.release(1);
                            if let Some(single) =
                                ensure_single_route(shared, &st, single, cx, &mut divert_below)
                            {
                                batch.push_local(single)
                            }
                        }
                        Ok(other) => {
                            cx.gate.release(task_units(&other));
                            pushback = Some(other);
                            break;
                        }
                        Err(_) => break,
                    }
                    if batch.actions.len() >= MAX_BATCH {
                        break;
                    }
                }
                process_batch(shared, &mut st, batch, &help, cx);
            }
            Task::Pause(pause) => {
                // Quiescence point of a live migration: deliver the banked
                // wakeups and hand the entire shard state (engine, tables,
                // log segment) to the coordinator.  Unlike the old
                // thread-per-shard worker this frame does NOT block for the
                // state's return — the slot goes Suspended and the receiver
                // is polled on later visits, so this worker keeps serving
                // its other shards (a worker owning two paused shards would
                // otherwise deadlock the migration).
                cx.flush(shared);
                match pause.state_tx.send(*st) {
                    Ok(()) => {
                        let mut serve = lock(&slot.serve);
                        serve.phase = SlotPhase::Suspended(pause.resume_rx);
                        serve.pushback = pushback.take();
                        serve.divert_below = divert_below;
                        drop(serve);
                        cx.gate = prev_gate;
                        return SliceOutcome::Progressed;
                    }
                    // Coordinator already gone: keep the state and carry on.
                    Err(SendError(state)) => st = Box::new(state),
                }
            }
            Task::Snapshot(issuer) => issuer.complete(ShardSnapshot {
                log: st.log.clone(),
                subscriptions: st.subscriptions.len(),
                is_final: st.engine.is_final(),
                tier: st.engine.tier_stats(),
            }),
            Task::Compile(issuer) => issuer.complete(st.engine.compile_tier()),
            Task::Checkpoint(issuer) => issuer.complete(st.capture()),
            Task::Stop => {
                // Fail everything still queued behind the Stop marker; the
                // enqueue lock guarantees a cross task behind one owner's
                // Stop is behind every owner's Stop, so nobody waits for a
                // vote that never comes.
                for task in slot.rx.try_iter() {
                    cx.gate.release(task_units(&task));
                    fail_task(task);
                }
                cx.flush(shared);
                finish_slot(pool, &slot, st);
                cx.gate = prev_gate;
                return SliceOutcome::Finished;
            }
        }
        if cx.wakes.len() >= 256 {
            cx.flush(shared);
        }
    };
    checkin(&slot, st, pushback, divert_below);
    cx.gate = prev_gate;
    outcome
}

fn fail_task(task: Task) {
    let disconnected = || Completion::Failed { error: ManagerError::Disconnected };
    match task {
        Task::Single(task) => task.ticket.complete(disconnected()),
        Task::Batch(tasks) => {
            for task in tasks {
                task.ticket.complete(disconnected());
            }
        }
        Task::Cross(task) => {
            if let Some(issuer) = lock(&task.sync).ticket.take() {
                issuer.complete(disconnected());
            }
        }
        Task::Exec(task) => {
            if let Some(issuer) = lock(&task.sync).ticket.take() {
                issuer.complete(disconnected());
            }
        }
        // Dropping the pause disconnects its state channel; the coordinator
        // observes the failed recv and aborts the migration.
        Task::Pause(_) => {}
        Task::Snapshot(issuer) => issuer.complete(ShardSnapshot::default()),
        Task::Compile(issuer) => issuer.complete(TierStats::default()),
        Task::Checkpoint(issuer) => issuer.complete(None),
        Task::Stop => {}
    }
}

// ---------------------------------------------------------------------------
// Stale-route detection: tasks stamped with an older topology epoch are
// re-checked and retried through the current topology instead of being
// misdelivered.
// ---------------------------------------------------------------------------

/// Checks an epoch-stale single task's route against the current topology.
/// Returns the task when this shard is still its correct single owner (the
/// overwhelmingly common case — most epoch bumps do not touch this shard's
/// actions) *and* the task is not ordered behind an already-diverted one;
/// otherwise re-dispatches it with its original ticket, raises the divert
/// watermark, and returns `None`.
fn ensure_single_route(
    shared: &Arc<RuntimeShared>,
    st: &ShardState,
    task: SingleTask,
    cx: &mut WorkerCtx,
    divert_below: &mut u64,
) -> Option<SingleTask> {
    if task.epoch == shared.epoch.load(Ordering::Acquire) {
        return Some(task);
    }
    let Some(slot) = shared.topology.upgrade() else {
        fulfil(task.ticket, Completion::Failed { error: ManagerError::Disconnected }, cx);
        return None;
    };
    let topo = read_topology(&slot);
    let behind_divert = task.epoch < *divert_below;
    match &task.op {
        Op::Execute { action }
        | Op::Ask { action }
        | Op::Subscribe { action }
        | Op::Unsubscribe { action }
        | Op::Query { action } => match topo.router.classify(action) {
            Route::Single(shard) if shard == st.id && !behind_divert => Some(task),
            route => {
                shared.repart.rerouted_tasks.fetch_add(1, Ordering::Relaxed);
                *divert_below = topo.epoch();
                let _guard = lock(&shared.cross_enqueue);
                redispatch_single(shared, &topo, task, route, cx);
                None
            }
        },
        Op::Confirm { id } | Op::Abort { id } | Op::Expire { id, .. } => {
            let owners = lock(&shared.reservation_index).get(id).cloned();
            match owners {
                // Reservation gone (or never indexed): resolve locally —
                // the shard table is authoritative and reports Unknown.
                // (Reservation ops are never part of a pipelined execute
                // window, so the divert watermark does not apply.)
                None => Some(task),
                Some(owners) if owners.as_slice() == [st.id] => Some(task),
                Some(owners) => {
                    shared.repart.rerouted_tasks.fetch_add(1, Ordering::Relaxed);
                    *divert_below = topo.epoch();
                    let SingleTask { op, ticket, .. } = task;
                    let op = match op {
                        Op::Confirm { id } => CrossOp::Confirm { id },
                        Op::Abort { id } => CrossOp::Abort { id },
                        Op::Expire { id, now } => CrossOp::Expire { id, now },
                        _ => unreachable!("reservation ops only"),
                    };
                    let _guard = lock(&shared.cross_enqueue);
                    enqueue_cross(&topo, owners, op, ticket, Credit::Charge);
                    None
                }
            }
        }
    }
}

/// Re-dispatches a single task whose owner set widened.  Owner sets never
/// shrink, so the new route is multi-owner (the `Route::None` and foreign
/// single-owner arms are defensive).  The caller must hold the
/// cross-enqueue lock.
fn redispatch_single(
    shared: &Arc<RuntimeShared>,
    topo: &Arc<Topology>,
    task: SingleTask,
    route: Route,
    cx: &mut WorkerCtx,
) {
    let SingleTask { client, op, ticket: issuer, submitted, .. } = task;
    match (op, route) {
        (op, Route::Single(shard)) => {
            enqueue_single(topo, shard, client, op, issuer, submitted, Credit::Charge)
        }
        (Op::Execute { action }, Route::Multi(owners)) => {
            enqueue_exec(topo, owners, action, issuer, submitted, Credit::Charge);
        }
        (Op::Ask { action }, Route::Multi(owners)) => {
            enqueue_cross(topo, owners, CrossOp::Ask { client, action }, issuer, Credit::Charge)
        }
        (Op::Subscribe { action }, Route::Multi(owners)) => enqueue_cross(
            topo,
            owners,
            CrossOp::Subscribe { client, action },
            issuer,
            Credit::Charge,
        ),
        (Op::Unsubscribe { action }, Route::Multi(_)) => {
            // The migration promoted the registration to the cross-shard
            // registry; remove it there.
            cross_unsubscribe(shared, client, &action);
            fulfil(issuer, Completion::Unsubscribed, cx);
        }
        (Op::Query { action }, Route::Multi(owners)) => {
            enqueue_cross(topo, owners, CrossOp::Query { action }, issuer, Credit::Charge)
        }
        (op, Route::None) => {
            // Owner sets never shrink; complete with the outcome an
            // unknown action gets on the submission path.
            let completion = match op {
                Op::Subscribe { action } => {
                    lock(&shared.orphan_subscriptions).subscribe(
                        client,
                        action.clone(),
                        action.clone(),
                        false,
                    );
                    if let Some(hub) = &shared.durability {
                        hub.log_meta(&WalRecord::Subscribe { client, action, permitted: false });
                    }
                    Completion::Subscribed { permitted: false }
                }
                Op::Unsubscribe { action } => {
                    lock(&shared.orphan_subscriptions).unsubscribe(client, &action);
                    if let Some(hub) = &shared.durability {
                        hub.log_meta(&WalRecord::Unsubscribe { client, action });
                    }
                    Completion::Unsubscribed
                }
                Op::Query { .. } => Completion::Status { permitted: false },
                _ => {
                    shared.stats.denials.fetch_add(1, Ordering::Relaxed);
                    meta_event(shared, StatDelta { asks: 1, denials: 1, ..StatDelta::ZERO });
                    Completion::Denied
                }
            };
            fulfil(issuer, completion, cx);
        }
        (op, route) => unreachable!("unhandled stale reroute {op:?} -> {route:?}"),
    }
}

/// Processes one submission window ([`Task::Batch`]).  On the fast path
/// (epochs match) every item runs inline.  The moment one item's route is
/// found stale, the item *and every remaining item of the window* are
/// re-enqueued through the current topology in order — processing a
/// later same-window item inline while an earlier one sits re-queued
/// would invert the window's program order.
fn process_batch_window(
    shared: &Arc<RuntimeShared>,
    st: &mut ShardState,
    tasks: Vec<SingleTask>,
    cx: &mut WorkerCtx,
    divert_below: &mut u64,
) {
    let mut iter = tasks.into_iter();
    while let Some(task) = iter.next() {
        if task.epoch == shared.epoch.load(Ordering::Acquire) {
            process_single(shared, st, task, cx);
            continue;
        }
        // Stale stamp: check this item's route; if it moved (or it is
        // ordered behind an already-diverted task), divert it and the
        // whole remainder of the window in order.
        let Some(slot) = shared.topology.upgrade() else {
            fulfil(task.ticket, Completion::Failed { error: ManagerError::Disconnected }, cx);
            for task in iter {
                fulfil(task.ticket, Completion::Failed { error: ManagerError::Disconnected }, cx);
            }
            return;
        };
        let topo = read_topology(&slot);
        let Op::Execute { action } = &task.op else {
            unreachable!("submission windows carry executes only");
        };
        if task.epoch >= *divert_below
            && matches!(topo.router.classify(action), Route::Single(shard) if shard == st.id)
        {
            process_single(shared, st, task, cx);
            continue;
        }
        *divert_below = topo.epoch();
        let _guard = lock(&shared.cross_enqueue);
        for task in std::iter::once(task).chain(iter) {
            shared.repart.rerouted_tasks.fetch_add(1, Ordering::Relaxed);
            let SingleTask { client, op, ticket, submitted, .. } = task;
            let Op::Execute { action } = op else {
                unreachable!("submission windows carry executes only");
            };
            match topo.router.classify(&action) {
                Route::Single(shard) => enqueue_single(
                    &topo,
                    shard,
                    client,
                    Op::Execute { action },
                    ticket,
                    submitted,
                    Credit::Charge,
                ),
                Route::Multi(owners) => {
                    enqueue_exec(&topo, owners, action, ticket, submitted, Credit::Charge)
                }
                Route::None => {
                    shared.stats.denials.fetch_add(1, Ordering::Relaxed);
                    meta_event(shared, StatDelta { asks: 1, denials: 1, ..StatDelta::ZERO });
                    fulfil(ticket, Completion::Denied, cx);
                }
            }
        }
        return;
    }
}

/// Decides whether an epoch-stale cross task is still correctly routed.
/// The verdict is recorded in the task's rendezvous state by the **first**
/// owner that examines it, and every other owner follows that record — a
/// rendezvous is either processed by all of its owners or re-dispatched by
/// exactly one and skipped by the rest, never half/half.  (The pause
/// barriers guarantee that a task whose owner set actually widened is seen
/// by *all* of its owners only after the migration, so a recorded verdict
/// can never contradict an already-deposited vote.)
fn cross_is_live(
    shared: &Arc<RuntimeShared>,
    task: &Arc<CrossTask>,
    divert_below: &mut u64,
) -> bool {
    if task.epoch == shared.epoch.load(Ordering::Acquire) {
        return true;
    }
    let mut sync = lock(&task.sync);
    if let Some(stale) = sync.stale {
        if stale {
            // A skipped (re-dispatched) task raises this follower's divert
            // watermark too: stale-stamped tasks behind it on our queue
            // must not run ahead of the re-dispatched copy.
            *divert_below = (*divert_below).max(shared.epoch.load(Ordering::Acquire));
        }
        return !stale;
    }
    if sync.votes > 0 || sync.decision.is_some() {
        // Somebody already voted under the old epoch, so the owner set
        // cannot have changed (its owners could not straddle a migration).
        sync.stale = Some(false);
        return true;
    }
    let current = shared.topology.upgrade().map(|slot| read_topology(&slot));
    let owners = current.as_ref().and_then(|topo| match &task.op {
        CrossOp::Ask { action, .. }
        | CrossOp::Subscribe { action, .. }
        | CrossOp::Query { action } => Some(topo.router.owners(action)),
        CrossOp::Confirm { id } | CrossOp::Abort { id } | CrossOp::Expire { id, .. } => {
            lock(&shared.reservation_index).get(id).cloned()
        }
    });
    let (stale, owners) = match owners {
        Some(owners) if owners != task.owners => (true, owners),
        _ => (false, Vec::new()),
    };
    sync.stale = Some(stale);
    if !stale {
        return true;
    }
    // This owner re-dispatches with the original ticket; the rest skip.
    // The rendezvous lock is held across the re-enqueue so a follower that
    // observes the stale verdict is guaranteed the re-dispatched copy is
    // already at the queue tails — tasks it diverts afterwards land behind
    // it, preserving the backlog order.
    shared.repart.rerouted_tasks.fetch_add(1, Ordering::Relaxed);
    let issuer = sync.ticket.take();
    if let (Some(topo), Some(issuer)) = (current, issuer) {
        *divert_below = topo.epoch();
        let _guard = lock(&shared.cross_enqueue);
        enqueue_cross(&topo, owners, task.op.clone(), issuer, Credit::Charge);
    }
    false
}

/// The [`cross_is_live`] analogue for coalesced multi-owner executes.
fn exec_is_live(shared: &Arc<RuntimeShared>, task: &Arc<ExecTask>, divert_below: &mut u64) -> bool {
    if task.epoch == shared.epoch.load(Ordering::Acquire) {
        return true;
    }
    let mut sync = lock(&task.sync);
    if let Some(stale) = sync.stale {
        if stale {
            *divert_below = (*divert_below).max(shared.epoch.load(Ordering::Acquire));
        }
        return !stale;
    }
    if sync.votes.iter().any(|v| !matches!(v, Vote::Pending)) || sync.decision.is_some() {
        // Somebody already voted (even conditionally) under the old epoch,
        // so the owner set cannot have changed.
        sync.stale = Some(false);
        return true;
    }
    let current = shared.topology.upgrade().map(|slot| read_topology(&slot));
    let owners = current.as_ref().map(|topo| topo.router.owners(&task.action));
    let (stale, owners) = match owners {
        Some(owners) if owners != task.owners => (true, owners),
        _ => (false, Vec::new()),
    };
    sync.stale = Some(stale);
    if !stale {
        return true;
    }
    // Held-lock re-dispatch, as in `cross_is_live`.
    shared.repart.rerouted_tasks.fetch_add(1, Ordering::Relaxed);
    let issuer = sync.ticket.take();
    if let (Some(topo), Some(issuer)) = (current, issuer) {
        *divert_below = topo.epoch();
        let _guard = lock(&shared.cross_enqueue);
        enqueue_exec(&topo, owners, task.action.clone(), issuer, task.submitted, Credit::Charge);
    }
    false
}

// ---------------------------------------------------------------------------
// The coalesced multi-owner execute rendezvous.
// ---------------------------------------------------------------------------

/// Upper bound on the items one speculative batch may absorb — bounds the
/// cost of recomputing a speculation tail after a denial.
const MAX_BATCH: usize = 128;

/// One owner's local vote on an execute: the reservation-aware probe (only
/// when reservations are outstanding, as on the single-owner path) followed
/// by the tentative prepare, both from the speculative `base` state of the
/// run's chain.  `Some` is a yes vote carrying the prepared successor.
/// Also returns the fingerprint of the reservation table the probe ran
/// against — the witness a conditional vote built on this probe carries.
fn exec_vote(st: &ShardState, base: Option<&StateRef>, action: &Action) -> (Option<StateRef>, u64) {
    let (permitted, fp) = if st.reservations.is_empty() {
        (true, empty_reservation_fingerprint())
    } else {
        st.engine.permitted_after_from_fingerprinted(
            base,
            st.reservations.values().map(|r| &r.action),
            action,
        )
    };
    if !permitted {
        return (None, fp);
    }
    (st.engine.prepare_from(base, action), fp)
}

/// Publishes the shard's current reservation-table fingerprint, against
/// which conditional votes prove their probes still hold at promotion time.
/// Called after every mutation of `st.reservations` (cascade mode only —
/// nothing reads the table otherwise).
fn publish_reservation_fp(shared: &RuntimeShared, st: &ShardState) {
    if !shared.cascade {
        return;
    }
    let fp = Engine::reservation_fingerprint(st.reservations.values().map(|r| &r.action));
    lock(&shared.reservation_fps).insert(st.id, fp);
}

/// Records the verdict: the single place `ExecSync::decision` is set.
/// Mirrors it into the lock-free [`ExecTask::decided`] atomic (read by tag
/// verification without taking this task's lock) and wakes parked owners.
fn set_exec_decision(task: &ExecTask, sync: &mut ExecSync, decision: ExecDecision) {
    sync.decision = Some(decision);
    let mirror = match decision {
        ExecDecision::Commit { .. } => EXEC_COMMITTED,
        ExecDecision::Deny => EXEC_DENIED,
    };
    task.decided.store(mirror, Ordering::Release);
    task.barrier.notify_all();
}

/// Verifies a conditional vote's validity tag: the epoch is unchanged, the
/// voter's published reservation fingerprint still matches the one its
/// probe ran against, and every assumed predecessor actually decided
/// commit.  All three are machine-checked witnesses — a verified tag means
/// the vote equals the unconditional vote a recompute would produce.
fn tag_valid(shared: &RuntimeShared, tag: &ValidityTag) -> bool {
    if tag.epoch != shared.epoch.load(Ordering::Acquire) {
        return false;
    }
    let published = lock(&shared.reservation_fps)
        .get(&tag.shard)
        .copied()
        .unwrap_or_else(empty_reservation_fingerprint);
    if published != tag.reservation_fp {
        return false;
    }
    assumed_iter(&tag.assumed)
        .all(|w| w.upgrade().is_some_and(|t| t.decided.load(Ordering::Acquire) == EXEC_COMMITTED))
}

/// Promotes every conditional vote whose tag verifies and, when the
/// unconditional count reaches the owner count, decides `Commit`.  Returns
/// the decision *this call* made, if any — the caller propagates it along
/// the cascade links once the lock is dropped.
fn try_decide_exec(
    shared: &RuntimeShared,
    task: &ExecTask,
    sync: &mut ExecSync,
) -> Option<ExecDecision> {
    if sync.decision.is_some() {
        return None;
    }
    if shared.cascade && sync.yes_votes < task.owners.len() {
        // Promotion can only complete a decision once *every* slot holds a
        // yes or a tagged yes — with any slot still pending the commit is
        // short regardless, so verifying tags early is pure waste that the
        // next deposit would repeat.  The gate keeps the cascade's tag
        // checks linear in the chain instead of quadratic.
        let conditionals = sync.votes.iter().filter(|v| matches!(v, Vote::Conditional(_))).count();
        if sync.yes_votes + conditionals == task.owners.len() {
            let mut promoted = 0u64;
            for vote in sync.votes.iter_mut() {
                if let Vote::Conditional(tag) = vote {
                    if tag_valid(shared, tag) {
                        *vote = Vote::Yes;
                        sync.yes_votes += 1;
                        promoted += 1;
                    }
                }
            }
            if promoted > 0 {
                sync.promoted_any = true;
                shared.cascade_counters.promoted_votes.fetch_add(promoted, Ordering::Relaxed);
            }
        }
    }
    if sync.yes_votes == task.owners.len() {
        if sync.promoted_any {
            shared.cascade_counters.cascaded_commits.fetch_add(1, Ordering::Relaxed);
        }
        let decision = ExecDecision::Commit { seq: shared.log_seq.fetch_add(1, Ordering::Relaxed) };
        set_exec_decision(task, sync, decision);
        return Some(decision);
    }
    None
}

/// Deposits this owner's *unconditional* vote and decides the task when the
/// vote settles it: a no decides `Deny` immediately (the conjunction is
/// false), while a yes triggers promotion of any verifiable conditional
/// votes and decides `Commit` when the count completes.  Must only be
/// called when the outcome of every same-owner-set predecessor is known to
/// the caller and reflected in the vote's base state.  Supersedes this
/// owner's own earlier conditional vote, never an unconditional one.
fn deposit_unconditional_vote(
    shared: &RuntimeShared,
    task: &ExecTask,
    sync: &mut ExecSync,
    pos: usize,
    yes: bool,
    cx: &mut WorkerCtx,
) -> Option<ExecDecision> {
    if sync.decision.is_some() || matches!(sync.votes[pos], Vote::Yes) {
        return None;
    }
    if yes {
        sync.votes[pos] = Vote::Yes;
        sync.yes_votes += 1;
        try_decide_exec(shared, task, sync)
    } else {
        sync.votes[pos] = Vote::Pending;
        shared.stats.denials.fetch_add(1, Ordering::Relaxed);
        meta_event(shared, StatDelta { asks: 1, denials: 1, ..StatDelta::ZERO });
        if let Some(issuer) = sync.ticket.take() {
            fulfil(issuer, Completion::Denied, cx);
        }
        cx.record(task.submitted);
        set_exec_decision(task, sync, ExecDecision::Deny);
        Some(ExecDecision::Deny)
    }
}

/// Deposits this owner's *conditional* yes vote (cascade mode only): the
/// chain advanced through still-undecided predecessors, and `tag` names
/// exactly the assumptions the probe ran under.  The deposit itself runs a
/// decide attempt — the assumptions may already have resolved between the
/// probe and this lock acquisition.
fn deposit_conditional_vote(
    shared: &RuntimeShared,
    task: &ExecTask,
    sync: &mut ExecSync,
    pos: usize,
    tag: ValidityTag,
) -> Option<ExecDecision> {
    if sync.decision.is_some() || matches!(sync.votes[pos], Vote::Yes) {
        return None;
    }
    shared.cascade_counters.conditional_votes.fetch_add(1, Ordering::Relaxed);
    sync.votes[pos] = Vote::Conditional(tag);
    try_decide_exec(shared, task, sync)
}

/// Walks the cascade links forward from a freshly committed task, promoting
/// and deciding successors whose conditional votes now verify — the
/// rendezvous-free decided path.  Stops at the first task the walk leaves
/// undecided: its missing votes await a genuinely unresolved owner, not
/// this commit.  Locks strictly forward along the chain, so it cannot
/// deadlock with a voter holding an earlier task's lock.
fn cascade_from(shared: &RuntimeShared, task: &Arc<ExecTask>) {
    let mut cur = Arc::clone(task);
    loop {
        let next = lock(&cur.sync).cascade_next.clone();
        let Some(next) = next else { break };
        let decision = {
            let mut sync = lock(&next.sync);
            try_decide_exec(shared, &next, &mut sync)
        };
        match decision {
            Some(ExecDecision::Commit { .. }) => cur = next,
            _ => break,
        }
    }
}

/// Walks the cascade links forward from a denied task, clearing every
/// conditional vote whose tag assumed the denied commit.  Correctness does
/// not depend on this — such a tag names the denied task and can never
/// verify again — but eager clearing spares every later decide attempt the
/// doomed verification, and the voters re-deposit from the recomputed true
/// state when their in-order resolution passes reach the tasks.
fn invalidate_downstream(shared: &RuntimeShared, denied: &Arc<ExecTask>) {
    let denied_ptr = Arc::as_ptr(denied);
    let mut cur = Arc::clone(denied);
    loop {
        let next = lock(&cur.sync).cascade_next.clone();
        let Some(next) = next else { break };
        {
            let mut sync = lock(&next.sync);
            if sync.decision.is_none() {
                let mut cleared = 0u64;
                for vote in sync.votes.iter_mut() {
                    if let Vote::Conditional(tag) = vote {
                        if assumed_iter(&tag.assumed).any(|w| std::ptr::eq(w.as_ptr(), denied_ptr))
                        {
                            *vote = Vote::Pending;
                            cleared += 1;
                        }
                    }
                }
                if cleared > 0 {
                    shared.cascade_counters.invalidated_votes.fetch_add(cleared, Ordering::Relaxed);
                }
            }
        }
        cur = next;
    }
}

/// Cascades or invalidates along the chain links for every decision the
/// caller made while holding a task's rendezvous lock.  Must be called with
/// no rendezvous lock held — the walks lock forward along the chain.
fn propagate_decisions(shared: &RuntimeShared, decided: &mut Vec<(Arc<ExecTask>, ExecDecision)>) {
    for (task, decision) in decided.drain(..) {
        if !shared.cascade {
            continue;
        }
        match decision {
            ExecDecision::Commit { .. } => cascade_from(shared, &task),
            ExecDecision::Deny => invalidate_downstream(shared, &task),
        }
    }
}

/// Applies a commit decision on this owner and, as the last applier, merges
/// the notifications, counts the stats and fulfils the ticket — the same
/// bookkeeping as the blocking manager's per-commit path.
fn apply_exec_commit(
    shared: &RuntimeShared,
    st: &mut ShardState,
    task: &ExecTask,
    pos: usize,
    seq: u64,
    next: StateRef,
    cx: &mut WorkerCtx,
) {
    st.engine.commit_prepared(next);
    st.epoch = seq;
    let engine = &st.engine;
    let local_notes = st.subscriptions.refresh(|a| engine.is_permitted(a));
    let bits = cross_bits_for_shard(shared, st);
    if pos == 0 {
        st.log.push(((seq, 0, 0), task.action.clone()));
    }
    // Every owner echoes the commit into its own stream (self-contained
    // per-shard recovery); the statistics ride on the primary's record, the
    // nondeterministically-attributed notification count on a meta event.
    st.journal_commit(
        (seq, 0, 0),
        &task.action,
        pos == 0,
        if pos == 0 {
            StatDelta { asks: 1, grants: 1, confirmations: 1, ..StatDelta::ZERO }
        } else {
            StatDelta::ZERO
        },
    );
    let mut sync = lock(&task.sync);
    if !local_notes.is_empty() {
        sync.notes.push((pos, local_notes));
    }
    sync.cross_bits.extend(bits);
    sync.applied += 1;
    if sync.applied == task.owners.len() {
        sync.notes.sort_by_key(|(owner_pos, _)| *owner_pos);
        let mut notes: Vec<Notification> = sync.notes.drain(..).flat_map(|(_, n)| n).collect();
        notes.extend(merge_cross_bits(shared, &sync.cross_bits));
        shared.stats.confirmations.fetch_add(1, Ordering::Relaxed);
        shared.stats.grants.fetch_add(1, Ordering::Relaxed);
        shared.stats.notifications.fetch_add(notes.len() as u64, Ordering::Relaxed);
        meta_event(shared, StatDelta { notifications: notes.len() as u64, ..StatDelta::ZERO });
        deliver(shared, &notes);
        if let Some(issuer) = sync.ticket.take() {
            fulfil(issuer, Completion::Executed { notifications: notes }, cx);
        }
        cx.record(task.submitted);
    }
}

/// One speculative batch: a consecutive queue run of multi-owner executes of
/// a single owner set plus the single-owner executes interleaved between
/// them, in queue order.
struct Batch {
    owners: Vec<usize>,
    actions: Vec<Action>,
    kinds: Vec<BatchKind>,
    /// Per-item submission instants (queue-metrics mode only), aligned with
    /// `kinds`.
    submitted: Vec<Option<Instant>>,
}

enum BatchKind {
    /// A multi-owner execute (rendezvous task).
    Exec(Arc<ExecTask>),
    /// A single-owner execute; the issuer is taken when the item resolves.
    Local(Option<TicketIssuer<Completion>>),
}

impl Batch {
    fn new(first: Arc<ExecTask>) -> Batch {
        Batch {
            owners: first.owners.clone(),
            actions: vec![first.action.clone()],
            submitted: vec![first.submitted],
            kinds: vec![BatchKind::Exec(first)],
        }
    }

    fn push_exec(&mut self, shared: &RuntimeShared, task: Arc<ExecTask>) {
        if shared.cascade {
            // Link the queue-order predecessor to this task.  Every owner
            // coalesces the identical queue run (enqueue order = lock
            // order), so each sets the same link; the first write wins and
            // the rest are no-ops.
            if let Some(prev) = self.kinds.iter().rev().find_map(|k| match k {
                BatchKind::Exec(t) => Some(t),
                BatchKind::Local(_) => None,
            }) {
                let mut sync = lock(&prev.sync);
                if sync.cascade_next.is_none() {
                    sync.cascade_next = Some(Arc::clone(&task));
                }
            }
        }
        self.actions.push(task.action.clone());
        self.submitted.push(task.submitted);
        self.kinds.push(BatchKind::Exec(task));
    }

    fn push_local(&mut self, task: SingleTask) {
        let Op::Execute { action } = task.op else {
            unreachable!("only execute tasks join a batch");
        };
        self.actions.push(action);
        self.submitted.push(task.submitted);
        self.kinds.push(BatchKind::Local(Some(task.ticket)));
    }
}

/// Speculative outcome of one batch item on this shard.
enum Spec {
    /// A multi-owner execute's local vote: `prepared` carries the tentative
    /// successor of a yes vote; `assumed` is true iff the chain advanced
    /// through this task on an *assumption* (our yes vote deposited or held
    /// back while the task was undecided) rather than a known outcome —
    /// only those assumptions can fail and force a tail recompute.
    Vote { prepared: Option<StateRef>, assumed: bool },
    /// A single-owner execute accepted on the chain, with its successor.
    Accept(StateRef),
    /// A single-owner execute denied on the chain.
    Deny,
    /// Already resolved and applied.
    Done,
}

/// The speculative pass over `batch[from..]` on this shard.
///
/// Walks the items in queue order maintaining a chain of tentative
/// successors.  As long as the chain is *unconditional* — every multi-owner
/// execute so far was already decided, insta-denied by this shard's own no
/// vote, or committed by this shard's completing yes vote — votes are
/// deposited (and tasks decided) on the spot.  The first yes vote that
/// leaves a task undecided makes the rest of the chain conditional: in
/// cascade mode later yes votes are still deposited, as
/// [`Vote::Conditional`] tagged with the exact assumptions the chain ran
/// through, so the prefix resolving all-commit decides the whole chain with
/// no further rendezvous; with cascading off they are withheld and the
/// resolution pass deposits them in order, recomputing if an assumption
/// failed.  Decisions made along the way are pushed onto `decided` for the
/// caller to propagate along the cascade links once no lock is held.
/// Scratch state shared between the speculative and resolution passes of
/// [`process_batch`]: the per-item verdicts and the decisions reached while
/// a rendezvous lock was held (propagated along the cascade links once no
/// lock is held).
struct SpecPass {
    specs: Vec<Spec>,
    decided: Vec<(Arc<ExecTask>, ExecDecision)>,
}

fn compute_specs(
    shared: &RuntimeShared,
    st: &ShardState,
    batch: &Batch,
    from: usize,
    pos: usize,
    pass: &mut SpecPass,
    cx: &mut WorkerCtx,
) {
    let SpecPass { specs, decided } = pass;
    specs.truncate(from);
    let epoch = shared.epoch.load(Ordering::Acquire);
    let mut chain: Option<StateRef> = None;
    let mut unconditional = true;
    // The assumed-commit prefix of the conditional chain — a persistent
    // cons list every later conditional vote's tag snapshots in O(1).
    let mut assumed_commits: Option<Arc<AssumedLink>> = None;
    for (action, kind) in batch.actions[from..].iter().zip(&batch.kinds[from..]) {
        let (next, reservation_fp) = exec_vote(st, chain.as_ref(), action);
        match kind {
            BatchKind::Local(_) => {
                // A single-owner execute: decided by this shard alone, but
                // only *applied* at resolution, in queue order.
                match next {
                    Some(nx) => {
                        chain = Some(nx.clone());
                        specs.push(Spec::Accept(nx));
                    }
                    None => specs.push(Spec::Deny),
                }
            }
            BatchKind::Exec(task) => {
                let mut assumed = false;
                {
                    let mut sync = lock(&task.sync);
                    match sync.decision {
                        Some(ExecDecision::Deny) => {
                            // Outcome already known: the chain skips it.
                        }
                        Some(ExecDecision::Commit { .. }) => {
                            // A commit requires this shard's vote, which is
                            // deposited at most once per task — so a commit
                            // observed here carries our earlier yes, and
                            // the chain advances on the known outcome.
                            if let Some(nx) = &next {
                                chain = Some(nx.clone());
                            }
                        }
                        None => {
                            if unconditional {
                                if let Some(decision) = deposit_unconditional_vote(
                                    shared,
                                    task,
                                    &mut sync,
                                    pos,
                                    next.is_some(),
                                    cx,
                                ) {
                                    decided.push((Arc::clone(task), decision));
                                }
                            } else if shared.cascade && next.is_some() {
                                // A yes on a conditional chain: deposit it
                                // tagged with the assumptions instead of
                                // holding it back.  (A conditional *no*
                                // stays withheld — its task cannot commit
                                // without our yes, so silence is safe.)
                                let tag = ValidityTag {
                                    epoch,
                                    shard: st.id,
                                    reservation_fp,
                                    assumed: assumed_commits.clone(),
                                };
                                if let Some(decision) =
                                    deposit_conditional_vote(shared, task, &mut sync, pos, tag)
                                {
                                    decided.push((Arc::clone(task), decision));
                                }
                            }
                            match (&sync.decision, &next) {
                                (Some(ExecDecision::Commit { .. }), Some(nx)) => {
                                    // Our yes completed the commit (possibly
                                    // by promoting the other owners' tagged
                                    // votes): outcome known, chain advances.
                                    chain = Some(nx.clone());
                                }
                                (Some(ExecDecision::Deny), _) | (_, None) => {
                                    // Insta-denied by our no, or a (possibly
                                    // conditional) no vote: the chain skips
                                    // it either way.  (A commit can never
                                    // coexist with our no vote — it requires
                                    // this shard's yes.)
                                }
                                (None, Some(nx)) => {
                                    // A yes on an undecided task — deposited
                                    // (conditionally past the first) with
                                    // the chain *assuming* the commit from
                                    // here on.
                                    chain = Some(nx.clone());
                                    assumed = true;
                                    unconditional = false;
                                    assumed_commits = Some(Arc::new(AssumedLink {
                                        task: Arc::downgrade(task),
                                        prev: assumed_commits.take(),
                                    }));
                                }
                            }
                        }
                    }
                }
                specs.push(Spec::Vote { prepared: next, assumed });
            }
        }
    }
}

/// Processes one speculative batch.  The speculative pass votes for (and
/// often outright decides) the whole run without parking; the resolution
/// pass then walks the batch strictly in queue order, applying every item
/// against its true predecessor state — when a commit assumption turns out
/// wrong, the tail of the speculation is recomputed (through the transition
/// memo) before the next vote is deposited.
///
/// Per-action outcomes, the merged log and the statistics are identical to
/// unbatched queue processing; what changes is that owners park only on
/// commit-pending rendezvous instead of once per cross-shard action.
fn process_batch(
    shared: &Arc<RuntimeShared>,
    st: &mut ShardState,
    mut batch: Batch,
    help: &Help<'_>,
    cx: &mut WorkerCtx,
) {
    let pos = batch
        .owners
        .iter()
        .position(|&o| o == st.id)
        .expect("exec task routed to a non-owner shard");

    // ---- Speculative pass: one chain over the whole batch. ----
    let mut pass = SpecPass {
        specs: Vec::with_capacity(batch.actions.len()),
        // Decisions made while holding a rendezvous lock, propagated along
        // the cascade links as soon as the lock is dropped.
        decided: Vec::new(),
    };
    compute_specs(shared, st, &batch, 0, pos, &mut pass, cx);
    propagate_decisions(shared, &mut pass.decided);

    // ---- Resolution pass: strictly in queue order. ----
    // True while the outcomes observed so far match the assumptions the
    // current `specs` tail was computed under.
    let mut valid = true;
    for i in 0..batch.kinds.len() {
        if !valid {
            // A commit assumption failed at an earlier item: rebuild the
            // tail from the true committed state.  The chain is
            // unconditional again up to its first undecided yes.
            compute_specs(shared, st, &batch, i, pos, &mut pass, cx);
            propagate_decisions(shared, &mut pass.decided);
            valid = true;
        }
        match std::mem::replace(&mut pass.specs[i], Spec::Done) {
            Spec::Accept(next) => {
                let BatchKind::Local(ticket) = &mut batch.kinds[i] else {
                    unreachable!("local spec on a cross item");
                };
                let ticket = ticket.take().expect("local resolved once");
                shared.stats.grants.fetch_add(1, Ordering::Relaxed);
                let notes = install_commit(shared, st, &batch.actions[i], next, true);
                fulfil(ticket, Completion::Executed { notifications: notes }, cx);
                cx.record(batch.submitted[i]);
            }
            Spec::Deny => {
                let BatchKind::Local(ticket) = &mut batch.kinds[i] else {
                    unreachable!("local spec on a cross item");
                };
                let ticket = ticket.take().expect("local resolved once");
                shared.stats.denials.fetch_add(1, Ordering::Relaxed);
                meta_event(shared, StatDelta { asks: 1, denials: 1, ..StatDelta::ZERO });
                fulfil(ticket, Completion::Denied, cx);
                cx.record(batch.submitted[i]);
            }
            Spec::Vote { prepared, assumed } => {
                let BatchKind::Exec(task) = &batch.kinds[i] else {
                    unreachable!("vote spec on a local item");
                };
                let task = Arc::clone(task);
                let decision = {
                    let mut sync = lock(&task.sync);
                    // Reaching this item in order means every predecessor's
                    // outcome is known and reflected in `specs`: the vote is
                    // unconditional now, superseding a tagged one deposited
                    // by the speculative pass.
                    if let Some(decision) = deposit_unconditional_vote(
                        shared,
                        &task,
                        &mut sync,
                        pos,
                        prepared.is_some(),
                        cx,
                    ) {
                        pass.decided.push((Arc::clone(&task), decision));
                    }
                    let mut flushed = false;
                    loop {
                        if let Some(decision) = sync.decision {
                            break decision;
                        }
                        if !flushed {
                            // About to wait at the rendezvous: deliver the
                            // banked wakeups first so no client sleeps
                            // through the wait, and propagate our own fresh
                            // decisions so no chain stalls on them.
                            flushed = true;
                            drop(sync);
                            cx.flush(shared);
                            propagate_decisions(shared, &mut pass.decided);
                            sync = lock(&task.sync);
                            continue;
                        }
                        // Help-while-waiting: the co-owner whose vote we
                        // need may be queued behind another shard this same
                        // worker owns.  Serve one such task; park briefly
                        // only when nothing helps.
                        drop(sync);
                        let helped = help_one(shared, help, cx, task.seq);
                        sync = lock(&task.sync);
                        if sync.decision.is_none() && !helped {
                            drop(sync);
                            cx.flush(shared);
                            sync = lock(&task.sync);
                            if sync.decision.is_none() {
                                sync = task
                                    .barrier
                                    .wait_timeout(sync, HELP_PARK)
                                    .unwrap_or_else(|e| e.into_inner())
                                    .0;
                            }
                        }
                    }
                };
                propagate_decisions(shared, &mut pass.decided);
                match decision {
                    ExecDecision::Commit { seq } => {
                        let next = prepared
                            .expect("commit requires this shard's yes vote and its prepare");
                        apply_exec_commit(shared, st, &task, pos, seq, next, cx);
                    }
                    ExecDecision::Deny => {
                        if assumed {
                            // The chain assumed this commit; the tail must
                            // be recomputed against the true state.
                            valid = false;
                        }
                    }
                }
            }
            Spec::Done => unreachable!("batch items resolve exactly once"),
        }
    }
    propagate_decisions(shared, &mut pass.decided);
}

fn process_single(
    shared: &RuntimeShared,
    st: &mut ShardState,
    task: SingleTask,
    cx: &mut WorkerCtx,
) {
    let SingleTask { client, op, ticket, submitted, .. } = task;
    let completion = match op {
        Op::Execute { action } => match single_commit(shared, st, &action, true) {
            Some(notes) => Completion::Executed { notifications: notes },
            None => Completion::Denied,
        },
        Op::Ask { action } => {
            if matches!(shared.variant, ProtocolVariant::Combined) {
                // The combined protocol commits immediately; the reply
                // carries no reservation to confirm.
                match single_commit(shared, st, &action, true) {
                    Some(_) => Completion::Granted { reservation: 0 },
                    None => Completion::Denied,
                }
            } else if !st.permitted_considering_reservations(&action) {
                shared.stats.denials.fetch_add(1, Ordering::Relaxed);
                meta_event(shared, StatDelta { asks: 1, denials: 1, ..StatDelta::ZERO });
                Completion::Denied
            } else {
                shared.stats.grants.fetch_add(1, Ordering::Relaxed);
                let reservation = shared.new_reservation(client, &action);
                st.journal_reserve(
                    &reservation,
                    StatDelta { asks: 1, grants: 1, ..StatDelta::ZERO },
                );
                st.reservations.insert(reservation.id, reservation.clone());
                publish_reservation_fp(shared, st);
                lock(&shared.reservation_index).insert(reservation.id, vec![st.id]);
                if reservation.expires_at != u64::MAX {
                    lock(&shared.timers).schedule(
                        reservation.expires_at,
                        TimerEvent::Expiry(ExpiryEvent { id: reservation.id, owners: vec![st.id] }),
                    );
                }
                Completion::Granted { reservation: reservation.id }
            }
        }
        Op::Confirm { id } => {
            lock(&shared.reservation_index).remove(&id);
            let removed = st.reservations.remove(&id);
            if removed.is_some() {
                publish_reservation_fp(shared, st);
                st.journal_release(id, StatDelta::ZERO);
            }
            match removed {
                None => Completion::Failed { error: ManagerError::UnknownReservation { id } },
                Some(reservation) => match st.engine.prepare(&reservation.action) {
                    None => Completion::Failed {
                        error: ManagerError::RejectedConfirmation {
                            action: reservation.action.to_string(),
                        },
                    },
                    Some(next) => {
                        let notes = install_commit(shared, st, &reservation.action, next, false);
                        Completion::Confirmed { notifications: notes }
                    }
                },
            }
        }
        Op::Abort { id } => {
            lock(&shared.reservation_index).remove(&id);
            match st.reservations.remove(&id) {
                None => Completion::Failed { error: ManagerError::UnknownReservation { id } },
                Some(reservation) => {
                    publish_reservation_fp(shared, st);
                    st.journal_release(id, StatDelta { aborted: 1, ..StatDelta::ZERO });
                    shared.stats.aborted_reservations.fetch_add(1, Ordering::Relaxed);
                    Completion::Aborted { reservation }
                }
            }
        }
        Op::Expire { id, now } => {
            if st.reservations.get(&id).is_some_and(|r| r.expires_at <= now) {
                let reservation = st.reservations.remove(&id);
                publish_reservation_fp(shared, st);
                st.journal_release(id, StatDelta { expired: 1, ..StatDelta::ZERO });
                lock(&shared.reservation_index).remove(&id);
                shared.stats.expired_reservations.fetch_add(1, Ordering::Relaxed);
                Completion::Expired { reservation }
            } else {
                Completion::Expired { reservation: None }
            }
        }
        Op::Subscribe { action } => {
            let key = abstract_key(shared, st.id, &action);
            let permitted = st.engine.is_permitted(&action);
            let status = st.subscriptions.subscribe(client, action.clone(), key, permitted);
            if st.wal.is_some() {
                st.journal(WalRecord::Subscribe { client, action, permitted: status });
            }
            Completion::Subscribed { permitted: status }
        }
        Op::Unsubscribe { action } => {
            st.subscriptions.unsubscribe(client, &action);
            if st.wal.is_some() {
                st.journal(WalRecord::Unsubscribe { client, action });
            }
            Completion::Unsubscribed
        }
        Op::Query { action } => Completion::Status { permitted: st.engine.is_permitted(&action) },
    };
    fulfil(ticket, completion, cx);
    cx.record(submitted);
}

/// Probe + prepare + commit of a single-owner action; `None` is a denial.
fn single_commit(
    shared: &RuntimeShared,
    st: &mut ShardState,
    action: &Action,
    count_grant: bool,
) -> Option<Vec<Notification>> {
    // With no outstanding reservations the reservation-aware probe computes
    // exactly the transition `prepare` computes, so it is skipped — the
    // single-owner worker walks the state once per action, not twice.
    if !st.reservations.is_empty() && !st.permitted_considering_reservations(action) {
        shared.stats.denials.fetch_add(1, Ordering::Relaxed);
        meta_event(shared, StatDelta { asks: 1, denials: 1, ..StatDelta::ZERO });
        return None;
    }
    let Some(next) = st.engine.prepare(action) else {
        // The reservation-aware probe can pass while the immediate commit is
        // impossible; that is a denial, exactly as in the blocking manager.
        shared.stats.denials.fetch_add(1, Ordering::Relaxed);
        meta_event(shared, StatDelta { asks: 1, denials: 1, ..StatDelta::ZERO });
        return None;
    };
    if count_grant {
        shared.stats.grants.fetch_add(1, Ordering::Relaxed);
    }
    Some(install_commit(shared, st, action, next, count_grant))
}

/// Installs an already prepared successor on a single-owner shard and does
/// all commit bookkeeping (sequence number, log, subscriptions, stats,
/// delivery).
fn install_commit(
    shared: &RuntimeShared,
    st: &mut ShardState,
    action: &Action,
    next: StateRef,
    granted: bool,
) -> Vec<Notification> {
    let sub = shared.log_seq.fetch_add(1, Ordering::Relaxed);
    st.engine.commit_prepared(next);
    let engine = &st.engine;
    let mut notes = st.subscriptions.refresh(|a| engine.is_permitted(a));
    st.log.push(((st.epoch, 1, sub), action.clone()));
    notes.extend(refresh_cross_for_shard(shared, st.id, &st.engine));
    // `granted` distinguishes the combined grant-and-commit (one ask, one
    // grant) from confirming an earlier grant (already journaled with its
    // Reserve record).
    st.journal_commit(
        (st.epoch, 1, sub),
        action,
        true,
        StatDelta {
            asks: granted as u64,
            grants: granted as u64,
            confirmations: 1,
            notifications: notes.len() as u64,
            ..StatDelta::ZERO
        },
    );
    shared.stats.confirmations.fetch_add(1, Ordering::Relaxed);
    shared.stats.notifications.fetch_add(notes.len() as u64, Ordering::Relaxed);
    deliver(shared, &notes);
    notes
}

fn process_cross(
    shared: &Arc<RuntimeShared>,
    st: &mut ShardState,
    task: &CrossTask,
    help: &Help<'_>,
    cx: &mut WorkerCtx,
) {
    let pos = task
        .owners
        .iter()
        .position(|&o| o == st.id)
        .expect("cross task routed to a non-owner shard");
    let n = task.owners.len();

    // ---- Phase 1: the local vote. ----
    let mut prepared: Option<StateRef> = None;
    let mut vote = true;
    let mut removed_here: Option<Reservation> = None;
    let mut bit = false;
    match &task.op {
        CrossOp::Ask { action, .. } => {
            if matches!(shared.variant, ProtocolVariant::Combined) {
                vote = st.reservations.is_empty() || st.permitted_considering_reservations(action);
                if vote {
                    prepared = st.engine.prepare(action);
                    vote = prepared.is_some();
                }
            } else {
                vote = st.permitted_considering_reservations(action);
            }
        }
        CrossOp::Confirm { id } => {
            removed_here = st.reservations.remove(id);
            if removed_here.is_some() {
                publish_reservation_fp(shared, st);
                st.journal_release(*id, StatDelta::ZERO);
            }
            vote = match &removed_here {
                Some(reservation) => {
                    prepared = st.engine.prepare(&reservation.action);
                    prepared.is_some()
                }
                None => false,
            };
        }
        CrossOp::Abort { id } => {
            removed_here = st.reservations.remove(id);
            if removed_here.is_some() {
                publish_reservation_fp(shared, st);
                st.journal_release(*id, StatDelta::ZERO);
            }
        }
        CrossOp::Expire { id, now } => {
            if st.reservations.get(id).is_some_and(|r| r.expires_at <= *now) {
                removed_here = st.reservations.remove(id);
                publish_reservation_fp(shared, st);
                st.journal_release(*id, StatDelta::ZERO);
            }
        }
        CrossOp::Subscribe { action, .. } | CrossOp::Query { action } => {
            bit = st.engine.is_permitted(action);
        }
    }

    // ---- Rendezvous: deposit the vote; the last voter decides.  While any
    // owner is parked here its engine cannot move — the rendezvous is the
    // queue-based equivalent of holding all owner locks. ----
    let decision = {
        let mut sync = lock(&task.sync);
        sync.votes += 1;
        sync.ok &= vote;
        if let Some(reservation) = &removed_here {
            sync.any_reservation = true;
            if sync.removed.is_none() {
                sync.removed = Some(reservation.clone());
            }
        }
        sync.bits[pos] = bit;
        if sync.votes == n {
            let decision = decide(shared, task, &mut sync);
            sync.decision = Some(decision);
            task.barrier.notify_all();
            decision
        } else {
            // Help-while-waiting: a co-owner's vote may be queued behind
            // another shard this same worker owns — with fewer workers than
            // shards, parking unconditionally here would deadlock the
            // rendezvous.  Serve one task from an owned sibling shard per
            // round; park briefly only when nothing helps (a vote deposit
            // wakes the barrier immediately, the timeout just bounds how
            // long we can miss fresh enqueues on sibling shards).
            while sync.decision.is_none() {
                drop(sync);
                let helped = help_one(shared, help, cx, task.seq);
                sync = lock(&task.sync);
                if sync.decision.is_none() && !helped {
                    drop(sync);
                    cx.flush(shared);
                    sync = lock(&task.sync);
                    if sync.decision.is_none() {
                        sync = task
                            .barrier
                            .wait_timeout(sync, HELP_PARK)
                            .unwrap_or_else(|e| e.into_inner())
                            .0;
                    }
                }
            }
            sync.decision.expect("checked above")
        }
    };

    // ---- Phase 2: apply.  Only commit/reserve decisions have local work;
    // the decider already finished everything else. ----
    match decision {
        Decision::Commit { seq } => {
            let next = prepared.expect("commit decided only when every owner prepared");
            st.engine.commit_prepared(next);
            st.epoch = seq;
            let engine = &st.engine;
            let local_notes = st.subscriptions.refresh(|a| engine.is_permitted(a));
            let bits = cross_bits_for_shard(shared, st);
            if pos == 0 || st.wal.is_some() {
                let action = match &task.op {
                    CrossOp::Ask { action, .. } => action.clone(),
                    CrossOp::Confirm { .. } => removed_here
                        .as_ref()
                        .expect("confirm committed, so every owner held the reservation")
                        .action
                        .clone(),
                    _ => unreachable!("only ask/confirm commit"),
                };
                // The statistics of the decision ride on the primary's echo
                // record; the other owners journal a zero-delta echo so
                // their streams replay standalone.
                st.journal_commit(
                    (seq, 0, 0),
                    &action,
                    pos == 0,
                    match (&task.op, pos) {
                        (CrossOp::Ask { .. }, 0) => {
                            StatDelta { asks: 1, grants: 1, confirmations: 1, ..StatDelta::ZERO }
                        }
                        (_, 0) => StatDelta { confirmations: 1, ..StatDelta::ZERO },
                        _ => StatDelta::ZERO,
                    },
                );
                if pos == 0 {
                    st.log.push(((seq, 0, 0), action));
                }
            }
            let mut sync = lock(&task.sync);
            sync.notes[pos] = local_notes;
            sync.cross_bits.extend(bits);
            sync.applied += 1;
            if sync.applied == n {
                finish_commit(shared, task, &mut sync);
            }
        }
        Decision::Reserve => {
            let reservation =
                lock(&task.sync).granted.clone().expect("reserve decided with a reservation");
            st.journal_reserve(
                &reservation,
                if pos == 0 {
                    StatDelta { asks: 1, grants: 1, ..StatDelta::ZERO }
                } else {
                    StatDelta::ZERO
                },
            );
            st.reservations.insert(reservation.id, reservation);
            publish_reservation_fp(shared, st);
            let mut sync = lock(&task.sync);
            sync.applied += 1;
            if sync.applied == n {
                finish_reserve(shared, task, &mut sync);
            }
        }
        Decision::Deny
        | Decision::Unknown
        | Decision::Rejected
        | Decision::Released
        | Decision::Done => {}
    }
}

/// The last voter's verdict.  Non-commit outcomes are finished right here —
/// the other owners only need to observe the decision and move on.
fn decide(shared: &RuntimeShared, task: &CrossTask, sync: &mut CrossSync) -> Decision {
    let complete = |sync: &mut CrossSync, completion: Completion| {
        if let Some(issuer) = sync.ticket.take() {
            issuer.complete(completion);
        }
    };
    match &task.op {
        CrossOp::Ask { client, action } => {
            if !sync.ok {
                shared.stats.denials.fetch_add(1, Ordering::Relaxed);
                meta_event(shared, StatDelta { asks: 1, denials: 1, ..StatDelta::ZERO });
                complete(sync, Completion::Denied);
                Decision::Deny
            } else if matches!(shared.variant, ProtocolVariant::Combined) {
                Decision::Commit { seq: shared.log_seq.fetch_add(1, Ordering::Relaxed) }
            } else {
                shared.stats.grants.fetch_add(1, Ordering::Relaxed);
                sync.granted = Some(shared.new_reservation(*client, action));
                Decision::Reserve
            }
        }
        CrossOp::Confirm { id } => {
            lock(&shared.reservation_index).remove(id);
            if !sync.any_reservation {
                complete(
                    sync,
                    Completion::Failed { error: ManagerError::UnknownReservation { id: *id } },
                );
                Decision::Unknown
            } else if !sync.ok {
                let action =
                    sync.removed.as_ref().map(|r| r.action.to_string()).unwrap_or_default();
                complete(
                    sync,
                    Completion::Failed { error: ManagerError::RejectedConfirmation { action } },
                );
                Decision::Rejected
            } else {
                Decision::Commit { seq: shared.log_seq.fetch_add(1, Ordering::Relaxed) }
            }
        }
        CrossOp::Abort { id } => {
            lock(&shared.reservation_index).remove(id);
            match sync.removed.clone() {
                Some(reservation) => {
                    shared.stats.aborted_reservations.fetch_add(1, Ordering::Relaxed);
                    meta_event(shared, StatDelta { aborted: 1, ..StatDelta::ZERO });
                    complete(sync, Completion::Aborted { reservation });
                }
                None => complete(
                    sync,
                    Completion::Failed { error: ManagerError::UnknownReservation { id: *id } },
                ),
            }
            Decision::Released
        }
        CrossOp::Expire { id, .. } => {
            let reservation = sync.removed.clone();
            if reservation.is_some() {
                lock(&shared.reservation_index).remove(id);
                shared.stats.expired_reservations.fetch_add(1, Ordering::Relaxed);
                meta_event(shared, StatDelta { expired: 1, ..StatDelta::ZERO });
            }
            complete(sync, Completion::Expired { reservation });
            Decision::Released
        }
        CrossOp::Subscribe { client, action } => {
            // Every other owner is parked at the rendezvous, so the bits are
            // a consistent snapshot — the same guarantee the blocking
            // manager gets from holding all owner locks while registering.
            let permitted = sync.bits.iter().all(|b| *b);
            let mut cross = lock(&shared.cross_subscriptions);
            for &owner in &task.owners {
                cross.by_shard.entry(owner).or_default().insert(action.clone());
            }
            let entry = cross.entries.entry(action.clone()).or_insert_with(|| {
                shared.cross_entry_count.fetch_add(1, Ordering::Relaxed);
                crate::manager::CrossEntry {
                    owners: task.owners.clone(),
                    bits: sync.bits.clone(),
                    clients: Vec::new(),
                    permitted,
                }
            });
            if !entry.clients.contains(client) {
                entry.clients.push(*client);
                entry.clients.sort_unstable();
            }
            let status = entry.permitted;
            drop(cross);
            if let Some(hub) = &shared.durability {
                hub.log_meta(&WalRecord::Subscribe {
                    client: *client,
                    action: action.clone(),
                    permitted: status,
                });
            }
            complete(sync, Completion::Subscribed { permitted: status });
            Decision::Done
        }
        CrossOp::Query { .. } => {
            let permitted = sync.bits.iter().all(|b| *b);
            complete(sync, Completion::Status { permitted });
            Decision::Done
        }
    }
}

/// Central bookkeeping after every owner applied a commit: merge the
/// cross-subscription bits, count the stats, deliver the notifications, and
/// fulfil the ticket.
fn finish_commit(shared: &RuntimeShared, task: &CrossTask, sync: &mut CrossSync) {
    let mut notes: Vec<Notification> = sync.notes.iter_mut().flat_map(std::mem::take).collect();
    notes.extend(merge_cross_bits(shared, &sync.cross_bits));
    shared.stats.confirmations.fetch_add(1, Ordering::Relaxed);
    if matches!(task.op, CrossOp::Ask { .. }) {
        shared.stats.grants.fetch_add(1, Ordering::Relaxed);
    }
    shared.stats.notifications.fetch_add(notes.len() as u64, Ordering::Relaxed);
    meta_event(shared, StatDelta { notifications: notes.len() as u64, ..StatDelta::ZERO });
    deliver(shared, &notes);
    if let Some(issuer) = sync.ticket.take() {
        let completion = match &task.op {
            CrossOp::Ask { .. } => Completion::Granted { reservation: 0 },
            CrossOp::Confirm { .. } => Completion::Confirmed { notifications: notes },
            _ => unreachable!("only ask/confirm commit"),
        };
        issuer.complete(completion);
    }
}

/// Central bookkeeping after every owner replicated a granted reservation.
fn finish_reserve(shared: &RuntimeShared, task: &CrossTask, sync: &mut CrossSync) {
    let reservation = sync.granted.clone().expect("reserve decided with a reservation");
    lock(&shared.reservation_index).insert(reservation.id, task.owners.clone());
    if reservation.expires_at != u64::MAX {
        lock(&shared.timers).schedule(
            reservation.expires_at,
            TimerEvent::Expiry(ExpiryEvent { id: reservation.id, owners: task.owners.clone() }),
        );
    }
    if let Some(issuer) = sync.ticket.take() {
        issuer.complete(Completion::Granted { reservation: reservation.id });
    }
}

/// The refreshed (action, shard, permitted) bits for every cross-subscribed
/// action this shard co-owns — computed on the worker's own engine.
fn cross_bits_for_shard(shared: &RuntimeShared, st: &ShardState) -> Vec<(Action, usize, bool)> {
    if shared.cross_entry_count.load(Ordering::Relaxed) == 0 {
        return Vec::new();
    }
    let co_owned: Vec<Action> = {
        let cross = lock(&shared.cross_subscriptions);
        match cross.by_shard.get(&st.id) {
            Some(actions) => actions.iter().cloned().collect(),
            None => Vec::new(),
        }
    };
    co_owned
        .into_iter()
        .map(|action| {
            let permitted = st.engine.is_permitted(&action);
            (action, st.id, permitted)
        })
        .collect()
}

/// Writes deposited per-owner bits into the cross-subscription registry and
/// returns notifications for entries whose conjunction flipped.
fn merge_cross_bits(
    shared: &RuntimeShared,
    deposits: &[(Action, usize, bool)],
) -> Vec<Notification> {
    if deposits.is_empty() {
        return Vec::new();
    }
    let mut cross = lock(&shared.cross_subscriptions);
    for (action, owner, bit) in deposits {
        if let Some(entry) = cross.entries.get_mut(action) {
            if let Some(pos) = entry.owners.iter().position(|o| o == owner) {
                entry.bits[pos] = *bit;
            }
        }
    }
    let mut touched: Vec<Action> = deposits.iter().map(|(a, _, _)| a.clone()).collect();
    touched.sort();
    touched.dedup();
    let mut out = Vec::new();
    for action in touched {
        let Some(entry) = cross.entries.get_mut(&action) else { continue };
        let now = entry.bits.iter().all(|b| *b);
        if now != entry.permitted {
            entry.permitted = now;
            for client in &entry.clients {
                out.push(Notification { client: *client, action: action.clone(), permitted: now });
            }
        }
    }
    out
}

/// Single-owner version of the cross-subscription refresh: a commit on this
/// shard may flip entries it co-owns.
fn refresh_cross_for_shard(
    shared: &RuntimeShared,
    shard_id: usize,
    engine: &Engine,
) -> Vec<Notification> {
    if shared.cross_entry_count.load(Ordering::Relaxed) == 0 {
        return Vec::new();
    }
    let mut cross = lock(&shared.cross_subscriptions);
    if cross.entries.is_empty() {
        return Vec::new();
    }
    let Some(actions) = cross.by_shard.get(&shard_id).cloned() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for action in actions {
        let Some(entry) = cross.entries.get_mut(&action) else { continue };
        if let Some(pos) = entry.owners.iter().position(|&o| o == shard_id) {
            entry.bits[pos] = engine.is_permitted(&action);
        }
        let now = entry.bits.iter().all(|b| *b);
        if now != entry.permitted {
            entry.permitted = now;
            for client in &entry.clients {
                out.push(Notification { client: *client, action: action.clone(), permitted: now });
            }
        }
    }
    out
}

/// Sends notifications to the registered per-client channels.
fn deliver(shared: &RuntimeShared, notes: &[Notification]) {
    if notes.is_empty() {
        return;
    }
    let channels = lock(&shared.notification_channels);
    for note in notes {
        if let Some(channel) = channels.get(&note.client) {
            let _ = channel.send(note.clone());
        }
    }
}

impl RuntimeShared {
    fn new_reservation(&self, client: ClientId, action: &Action) -> Reservation {
        let now = self.clock.load(Ordering::Relaxed);
        let expires_at = match self.variant {
            ProtocolVariant::Simple => u64::MAX,
            ProtocolVariant::Leased { lease } => now + lease,
            ProtocolVariant::Combined => unreachable!("combined grants commit immediately"),
        };
        Reservation {
            id: self.next_reservation.fetch_add(1, Ordering::Relaxed),
            action: action.clone(),
            client,
            granted_at: now,
            expires_at,
        }
    }
}

/// The abstract alphabet entry of a shard covering the action — the index
/// key of the shard's subscription registry.  Resolved through the current
/// topology (subscriptions are rare enough that the weak upgrade does not
/// matter); the action itself is the fallback key when the runtime is
/// already tearing down.
fn abstract_key(shared: &RuntimeShared, shard_id: usize, action: &Action) -> Action {
    shared
        .topology
        .upgrade()
        .and_then(|slot| {
            read_topology(&slot)
                .router
                .alphabet(shard_id)
                .actions()
                .find(|a| a.matches_concrete(action))
                .cloned()
        })
        .unwrap_or_else(|| action.clone())
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InteractionManager;
    use ix_core::{parse, Value};

    fn call(p: i64, x: &str) -> Action {
        Action::concrete("call", [Value::int(p), Value::sym(x)])
    }

    fn perform(p: i64, x: &str) -> Action {
        Action::concrete("perform", [Value::int(p), Value::sym(x)])
    }

    fn patient_constraint() -> Expr {
        parse("all p { (some x { call(p, x) - perform(p, x) })* }").unwrap()
    }

    fn coupled_constraint() -> Expr {
        parse(
            "((some p { call_a(p) - perform_a(p) })* - audit)* \
             @ ((some p { call_b(p) - perform_b(p) })* - audit)* \
             @ ((some p { call_c(p) - perform_c(p) })* - audit)* \
             @ ((some p { call_d(p) - perform_d(p) })* - audit)*",
        )
        .unwrap()
    }

    fn dept_action(kind: &str, dept: char, p: i64) -> Action {
        Action::concrete(&format!("{kind}_{dept}"), [Value::int(p)])
    }

    fn audit() -> Action {
        Action::nullary("audit")
    }

    #[test]
    fn ask_confirm_cycle_over_tickets() {
        let runtime = ManagerRuntime::new(&patient_constraint()).unwrap();
        let session = runtime.session(1);
        let r = session.ask_blocking(&call(1, "sono")).unwrap().expect("granted");
        session.confirm_blocking(r).unwrap();
        assert_eq!(session.ask_blocking(&call(1, "endo")).unwrap(), None, "mid-examination");
        let r = session.ask_blocking(&perform(1, "sono")).unwrap().unwrap();
        session.confirm_blocking(r).unwrap();
        let report = runtime.shutdown().unwrap();
        assert_eq!(report.log, vec![call(1, "sono"), perform(1, "sono")]);
        assert_eq!(report.stats.grants, 2);
        assert_eq!(report.stats.denials, 1);
        assert_eq!(report.stats.confirmations, 2);
    }

    #[test]
    fn tickets_pipeline_without_blocking() {
        let runtime =
            ManagerRuntime::with_protocol(&patient_constraint(), ProtocolVariant::Combined)
                .unwrap();
        let session = runtime.session(1);
        // Submit a full schedule before waiting on anything.
        let tickets: Vec<Ticket<Completion>> = (1..=50)
            .flat_map(|p| [session.execute(&call(p, "sono")), session.execute(&perform(p, "sono"))])
            .collect();
        for t in &tickets {
            assert!(matches!(t.wait(), Completion::Executed { .. }));
        }
        assert_eq!(runtime.stats().confirmations, 100);
        assert_eq!(runtime.log().len(), 100);
    }

    #[test]
    fn then_callbacks_fire_on_completion() {
        let runtime =
            ManagerRuntime::with_protocol(&patient_constraint(), ProtocolVariant::Combined)
                .unwrap();
        let session = runtime.session(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let t = session.execute(&call(1, "sono"));
        t.then(move |c| {
            if matches!(c, Completion::Executed { .. }) {
                h.fetch_add(1, Ordering::SeqCst);
            }
        });
        t.wait();
        // The callback runs on the worker thread right after fulfilment;
        // give it a moment.
        for _ in 0..200 {
            if hits.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn leases_expire_through_the_timer_wheel() {
        let expr = parse("mult 1 { (some p { call(p, sono) - perform(p, sono) })* }").unwrap();
        let runtime =
            ManagerRuntime::with_protocol(&expr, ProtocolVariant::Leased { lease: 5 }).unwrap();
        let session = runtime.session(1);
        let r = session.ask_blocking(&call(1, "sono")).unwrap().unwrap();
        assert_eq!(session.ask_blocking(&call(2, "sono")).unwrap(), None, "slot reserved");
        assert!(runtime.advance_time(4).is_empty(), "lease not yet due");
        let expired = runtime.advance_time(2);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].id, r);
        assert_eq!(runtime.stats().expired_reservations, 1);
        assert!(session.ask_blocking(&call(2, "sono")).unwrap().is_some(), "slot released");
        assert!(matches!(
            session.confirm_blocking(r),
            Err(ManagerError::UnknownReservation { .. })
        ));
    }

    #[test]
    fn cross_shard_execute_commits_atomically() {
        let runtime =
            ManagerRuntime::with_protocol(&coupled_constraint(), ProtocolVariant::Combined)
                .unwrap();
        assert_eq!(runtime.shard_count(), 4);
        assert!(runtime.is_cross_shard(&audit()));
        let session = runtime.session(1);
        assert!(session.execute_blocking(&audit()).unwrap().is_some());
        assert!(session.execute_blocking(&dept_action("call", 'b', 7)).unwrap().is_some());
        assert!(session.execute_blocking(&audit()).unwrap().is_none(), "dept b mid-case");
        assert!(session.execute_blocking(&dept_action("perform", 'b', 7)).unwrap().is_some());
        assert!(session.execute_blocking(&audit()).unwrap().is_some());
        let log = runtime.log();
        assert_eq!(log.len(), 4);
        assert_eq!(log[0], audit());
        assert_eq!(log[3], audit());
        assert_eq!(runtime.stats().confirmations, 4);
    }

    /// Coupled components whose shared `audit` is terminal: once the audit
    /// runs the ensemble closes, so a pending audit reservation vetoes every
    /// later local call — the shape that makes release observable.
    fn terminal_coupled_constraint() -> Expr {
        parse(
            "((some p { call_a(p) - perform_a(p) })* - audit) \
             @ ((some p { call_b(p) - perform_b(p) })* - audit) \
             @ ((some p { call_c(p) - perform_c(p) })* - audit) \
             @ ((some p { call_d(p) - perform_d(p) })* - audit)",
        )
        .unwrap()
    }

    #[test]
    fn cross_shard_reservations_replicate_and_release() {
        let runtime = ManagerRuntime::new(&terminal_coupled_constraint()).unwrap();
        let session = runtime.session(1);
        let r = session.ask_blocking(&audit()).unwrap().expect("granted");
        // The audit reservation vetoes local grants on every owner.
        assert_eq!(session.ask_blocking(&dept_action("call", 'a', 1)).unwrap(), None);
        assert_eq!(session.ask_blocking(&dept_action("call", 'd', 1)).unwrap(), None);
        let aborted = session.abort_blocking(r).unwrap();
        assert_eq!(aborted.action, audit());
        assert_eq!(runtime.stats().aborted_reservations, 1);
        assert!(session.ask_blocking(&dept_action("call", 'a', 1)).unwrap().is_some());
        assert!(matches!(
            session.confirm_blocking(r),
            Err(ManagerError::UnknownReservation { .. })
        ));
        assert_eq!(runtime.log().len(), 0);
    }

    #[test]
    fn subscriptions_notify_via_session_channels() {
        let runtime =
            ManagerRuntime::with_protocol(&patient_constraint(), ProtocolVariant::Combined)
                .unwrap();
        let worklist = runtime.session(20);
        let actor = runtime.session(10);
        assert!(worklist.subscribe_blocking(&call(1, "endo")).unwrap());
        assert!(actor.execute_blocking(&call(1, "sono")).unwrap().is_some());
        let notes = worklist.poll_notifications();
        assert_eq!(notes.len(), 1);
        assert!(!notes[0].permitted);
        assert_eq!(notes[0].action, call(1, "endo"));
        assert_eq!(runtime.subscription_count(), 1);
        worklist.unsubscribe(&call(1, "endo")).wait();
        assert_eq!(runtime.subscription_count(), 0);
    }

    #[test]
    fn cross_shard_subscriptions_report_the_conjunction() {
        let runtime =
            ManagerRuntime::with_protocol(&coupled_constraint(), ProtocolVariant::Combined)
                .unwrap();
        let watcher = runtime.session(9);
        let actor = runtime.session(1);
        assert!(watcher.subscribe_blocking(&audit()).unwrap(), "all departments idle");
        assert!(actor.execute_blocking(&dept_action("call", 'c', 1)).unwrap().is_some());
        let notes = watcher.poll_notifications();
        assert!(notes.iter().any(|n| n.action == audit() && !n.permitted));
        assert!(actor.execute_blocking(&dept_action("perform", 'c', 1)).unwrap().is_some());
        let notes = watcher.poll_notifications();
        assert!(notes.iter().any(|n| n.action == audit() && n.permitted));
    }

    #[test]
    fn unknown_actions_and_non_concrete_actions_fail_like_the_blocking_manager() {
        let runtime = ManagerRuntime::new(&patient_constraint()).unwrap();
        let session = runtime.session(1);
        let unknown = Action::nullary("unknown");
        assert_eq!(session.ask_blocking(&unknown).unwrap(), None);
        assert_eq!(session.execute_blocking(&unknown).unwrap(), None);
        assert!(!session.is_permitted_blocking(&unknown));
        assert!(!runtime.controls(&unknown));
        let abstract_action = Action::new("call", [ix_core::Term::Param(ix_core::Param::new("p"))]);
        assert!(matches!(
            session.ask_blocking(&abstract_action),
            Err(ManagerError::NonConcreteAction { .. })
        ));
        assert!(matches!(
            session.confirm_blocking(99),
            Err(ManagerError::UnknownReservation { id: 99 })
        ));
        assert_eq!(runtime.stats().denials, 2);
    }

    #[test]
    fn durable_submissions_are_redelivered_after_a_crash() {
        let runtime = ManagerRuntime::with_options(
            &patient_constraint(),
            RuntimeOptions {
                variant: ProtocolVariant::Combined,
                durable: true,
                clock: ClockMode::Virtual,
                ..RuntimeOptions::default()
            },
        )
        .unwrap();
        let session = runtime.session(1);
        // First submission: completed AND acknowledged.
        assert!(session.execute_blocking(&call(1, "sono")).unwrap().is_some());
        assert!(runtime.acknowledge_submission());
        // Second submission: completed but the client "crashes" before
        // acknowledging the completion.
        assert!(session.execute_blocking(&perform(1, "sono")).unwrap().is_some());
        assert_eq!(runtime.unacknowledged_submissions(), 1);
        // Redelivery executes it again — at-least-once: this time the
        // perform is denied (already committed), and the log is unchanged.
        let redelivered = runtime.crash_redeliver();
        assert_eq!(redelivered.len(), 1);
        assert_eq!(redelivered[0].wait(), Completion::Denied);
        assert_eq!(runtime.log(), vec![call(1, "sono"), perform(1, "sono")]);
        assert_eq!(runtime.stats().asks, 3, "the redelivery is a real submission");
        // The redelivered completion is acknowledged now; the journal
        // drains.
        assert!(runtime.acknowledge_submission());
        assert_eq!(runtime.unacknowledged_submissions(), 0);
        assert!(runtime.crash_redeliver().is_empty());
    }

    #[test]
    fn wall_clock_mode_expires_leases_without_explicit_ticks() {
        let expr = parse("mult 1 { (some p { call(p, sono) - perform(p, sono) })* }").unwrap();
        let runtime = ManagerRuntime::with_options(
            &expr,
            RuntimeOptions {
                variant: ProtocolVariant::Leased { lease: 2 },
                durable: false,
                clock: ClockMode::Wall { tick: Duration::from_millis(2) },
                ..RuntimeOptions::default()
            },
        )
        .unwrap();
        let session = runtime.session(1);
        let _r = session.ask_blocking(&call(1, "sono")).unwrap().unwrap();
        // The ticker advances the clock; within a generous window the lease
        // must expire and release the slot.
        let mut freed = false;
        for _ in 0..500 {
            if session.ask_blocking(&call(2, "sono")).unwrap().is_some() {
                freed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(freed, "wall-clock ticker never expired the lease");
        assert_eq!(runtime.stats().expired_reservations, 1);
        runtime.shutdown().unwrap();
    }

    #[test]
    fn disjoint_add_constraint_is_a_pure_shard_append() {
        let runtime = ManagerRuntime::with_protocol(
            &parse("(a - b)* @ (c - d)*").unwrap(),
            ProtocolVariant::Combined,
        )
        .unwrap();
        let session = runtime.session(1);
        assert!(session.execute_blocking(&Action::nullary("a")).unwrap().is_some());
        assert_eq!(runtime.shard_count(), 2);
        assert_eq!(runtime.epoch(), 0);

        let report = runtime.add_constraint(&parse("(e - f)*").unwrap()).unwrap();
        assert_eq!(report.added_shards, vec![2]);
        assert!(report.migrated_shards.is_empty(), "disjoint add pauses nothing");
        assert_eq!(report.replayed_actions, 0);
        assert_eq!(report.widened_actions, 0);
        assert_eq!(runtime.shard_count(), 3);
        assert_eq!(runtime.epoch(), 1);
        let stats = runtime.repartition_stats();
        assert_eq!(stats.repartitions, 1);
        assert_eq!(stats.migrated_shard_states, 0, "zero migration for a disjoint add");

        // The new shard serves immediately; old shards kept their state.
        assert!(session.execute_blocking(&Action::nullary("e")).unwrap().is_some());
        assert!(session.execute_blocking(&Action::nullary("b")).unwrap().is_some());
        assert!(session.execute_blocking(&Action::nullary("a")).unwrap().is_some());
        assert!(runtime.controls(&Action::nullary("e")));
        let report = runtime.shutdown().unwrap();
        assert_eq!(report.shards, 3);
        assert_eq!(report.log.len(), 4);
    }

    #[test]
    fn coupling_migration_replays_history_and_widens_routes() {
        let runtime = ManagerRuntime::with_protocol(
            &parse("(a - b)* @ (c - d)*").unwrap(),
            ProtocolVariant::Combined,
        )
        .unwrap();
        let session = runtime.session(1);
        for name in ["a", "b", "a", "b", "c"] {
            assert!(session.execute_blocking(&Action::nullary(name)).unwrap().is_some());
        }
        // Couple an audit constraint onto `a`: rounds of a's, then audit.
        let report = runtime.couple(&parse("(a* - audit)*").unwrap()).unwrap();
        assert_eq!(report.added_shards, vec![2]);
        assert_eq!(report.migrated_shards, vec![0], "only a's owner is quiesced");
        assert_eq!(report.replayed_actions, 2, "the two committed a's");
        assert!(report.widened_actions >= 1);
        assert_eq!(runtime.owners_of(&Action::nullary("a")), vec![0, 2]);
        assert!(runtime.is_cross_shard(&Action::nullary("a")));
        assert_eq!(runtime.repartition_stats().migrated_shard_states, 1);

        // Semantics now match a monolithic manager built on the joined
        // expression and fed the same history.
        let joined = parse("((a - b)* @ (c - d)*) @ (a* - audit)*").unwrap();
        let mono = InteractionManager::monolithic(&joined, ProtocolVariant::Combined).unwrap();
        for action in runtime.log() {
            assert!(mono.try_execute(9, &action).unwrap().is_some(), "log must replay");
        }
        for name in ["audit", "a", "b", "audit", "d", "zzz"] {
            let action = Action::nullary(name);
            let r = session.execute_blocking(&action).unwrap().is_some();
            let m = mono.try_execute(9, &action).unwrap().is_some();
            assert_eq!(r, m, "disagreement on {name} after the migration");
        }
        assert_eq!(runtime.is_final(), mono.is_final());
    }

    #[test]
    fn incompatible_extension_is_rejected_and_the_runtime_keeps_serving() {
        let runtime =
            ManagerRuntime::with_protocol(&parse("(a - b)*").unwrap(), ProtocolVariant::Combined)
                .unwrap();
        let session = runtime.session(1);
        assert!(session.execute_blocking(&Action::nullary("a")).unwrap().is_some());
        // `b - a` demands the history's projection start with b.
        let err = runtime.couple(&parse("(b - a)#").unwrap());
        assert!(matches!(err, Err(ManagerError::IncompatibleExtension { .. })));
        assert_eq!(runtime.shard_count(), 1);
        assert_eq!(runtime.epoch(), 0);
        assert_eq!(runtime.repartition_stats().repartitions, 0);
        // The paused shard was resumed untouched.
        assert!(session.execute_blocking(&Action::nullary("b")).unwrap().is_some());
    }

    #[test]
    fn couple_rejects_disjoint_constraints() {
        let runtime = ManagerRuntime::new(&parse("(a - b)*").unwrap()).unwrap();
        assert!(matches!(
            runtime.couple(&parse("(x - y)*").unwrap()),
            Err(ManagerError::DisjointCoupling)
        ));
        // add_constraint takes it happily.
        assert!(runtime.add_constraint(&parse("(x - y)*").unwrap()).is_ok());
        assert_eq!(runtime.shard_count(), 2);
    }

    #[test]
    fn reservations_migrate_onto_new_owners() {
        // Simple protocol: take a reservation on `a`, couple a constraint
        // sharing `a`, then confirm — the commit must advance the new shard
        // too, and release must work across the widened owner set.
        let runtime = ManagerRuntime::new(&parse("(a - b)*").unwrap()).unwrap();
        let session = runtime.session(1);
        let r = session.ask_blocking(&Action::nullary("a")).unwrap().expect("granted");
        let report = runtime.couple(&parse("(a - audit)*").unwrap()).unwrap();
        assert_eq!(report.migrated_reservations, 1);
        // Confirm commits on both owners: afterwards the coupled constraint
        // has seen one `a`, so audit is permitted and a second `a` is not.
        session.confirm_blocking(r).unwrap();
        assert!(session.is_permitted_blocking(&Action::nullary("audit")));
        assert!(!session.is_permitted_blocking(&Action::nullary("a")));
        let log = runtime.log();
        assert_eq!(log, vec![Action::nullary("a")]);
        // The whole log replays on a monolithic manager of the joined
        // expression.
        let joined = parse("(a - b)* @ (a - audit)*").unwrap();
        let mono = InteractionManager::monolithic(&joined, ProtocolVariant::Simple).unwrap();
        for action in log {
            let id = mono.ask(9, &action).unwrap().expect("log must replay");
            mono.confirm(id).unwrap();
        }
        assert!(mono.is_permitted(&Action::nullary("audit")));
    }

    #[test]
    fn aborting_a_migrated_reservation_releases_every_owner() {
        let runtime = ManagerRuntime::new(&parse("(a - b)*").unwrap()).unwrap();
        let session = runtime.session(1);
        let r = session.ask_blocking(&Action::nullary("a")).unwrap().expect("granted");
        runtime.couple(&parse("(a - audit)*").unwrap()).unwrap();
        let released = session.abort_blocking(r).unwrap();
        assert_eq!(released.action, Action::nullary("a"));
        // Nothing committed; a fresh ask is granted again (both owners
        // dropped the replica).
        assert!(session.ask_blocking(&Action::nullary("a")).unwrap().is_some());
        assert_eq!(runtime.log().len(), 0);
    }

    #[test]
    fn leases_rearm_across_a_migration_and_expire_on_every_owner() {
        // A lease granted before a coupling migration carries a stale
        // owner list in its timer payload; expiry must consult the widened
        // reservation index and roll the replica back on the new owner too.
        let runtime = ManagerRuntime::with_protocol(
            &parse("(a - b)*").unwrap(),
            ProtocolVariant::Leased { lease: 5 },
        )
        .unwrap();
        let session = runtime.session(1);
        let r = session.ask_blocking(&Action::nullary("a")).unwrap().expect("granted");
        let report = runtime.couple(&parse("(a - audit)*").unwrap()).unwrap();
        assert_eq!(report.migrated_reservations, 1);
        // While reserved, a second ask is vetoed on both owners.
        assert_eq!(session.ask_blocking(&Action::nullary("a")).unwrap(), None);
        let expired = runtime.advance_time(6);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].id, r);
        assert_eq!(runtime.stats().expired_reservations, 1);
        // Both owners released the replica: a fresh ask succeeds and its
        // confirm advances the coupled constraint too.
        let r2 = session.ask_blocking(&Action::nullary("a")).unwrap().expect("slot released");
        session.confirm_blocking(r2).unwrap();
        assert!(session.is_permitted_blocking(&Action::nullary("audit")));
        assert!(matches!(
            session.confirm_blocking(r),
            Err(ManagerError::UnknownReservation { .. })
        ));
    }

    #[test]
    fn widened_subscriptions_become_cross_shard_conjunctions() {
        let runtime =
            ManagerRuntime::with_protocol(&parse("(a - b)*").unwrap(), ProtocolVariant::Combined)
                .unwrap();
        let watcher = runtime.session(7);
        let actor = runtime.session(1);
        assert!(watcher.subscribe_blocking(&Action::nullary("a")).unwrap());
        // Couple a terminal constraint: after one audit the ensemble closes.
        // Right after the migration `a` is still permitted on both owners.
        let report = runtime.couple(&parse("(a* - audit)*").unwrap()).unwrap();
        assert_eq!(report.migrated_subscriptions, 1);
        assert_eq!(runtime.subscription_count(), 1, "promoted, not duplicated");
        assert!(watcher.poll_notifications().is_empty(), "conjunction unchanged");
        // A commit on the *new* shard's side flips the conjunction when the
        // old shard blocks: execute a (both owners move), then b closes the
        // a-b round; a is permitted again...
        assert!(actor.execute_blocking(&Action::nullary("a")).unwrap().is_some());
        let notes = watcher.poll_notifications();
        assert!(notes.iter().any(|n| n.action == Action::nullary("a") && !n.permitted));
        assert!(actor.execute_blocking(&Action::nullary("b")).unwrap().is_some());
        let notes = watcher.poll_notifications();
        assert!(notes.iter().any(|n| n.action == Action::nullary("a") && n.permitted));
        // Unsubscribing after the promotion removes the cross entry.
        watcher.unsubscribe(&Action::nullary("a")).wait();
        assert_eq!(runtime.subscription_count(), 0);
    }

    #[test]
    fn orphan_subscriptions_go_live_when_a_constraint_covers_them() {
        let runtime =
            ManagerRuntime::with_protocol(&parse("(a - b)*").unwrap(), ProtocolVariant::Combined)
                .unwrap();
        let watcher = runtime.session(7);
        let actor = runtime.session(1);
        // `e` is unknown: the subscription parks in the orphan registry.
        assert!(!watcher.subscribe_blocking(&Action::nullary("e")).unwrap());
        assert_eq!(runtime.subscription_count(), 1);
        // A live extension makes `e` real; the cached not-permitted status
        // flips to permitted and notifies.
        runtime.add_constraint(&parse("(e - f)*").unwrap()).unwrap();
        let notes = watcher.poll_notifications();
        assert!(
            notes.iter().any(|n| n.action == Action::nullary("e") && n.permitted),
            "re-homed orphan must report going live, got {notes:?}"
        );
        assert_eq!(runtime.subscription_count(), 1, "moved, not duplicated");
        // The subscription is live on the new shard: committing `e` flips
        // it back to not-permitted.
        assert!(actor.execute_blocking(&Action::nullary("e")).unwrap().is_some());
        let notes = watcher.poll_notifications();
        assert!(notes.iter().any(|n| n.action == Action::nullary("e") && !n.permitted));
        watcher.unsubscribe(&Action::nullary("e")).wait();
        assert_eq!(runtime.subscription_count(), 0);
    }

    #[test]
    fn submit_batch_matches_per_action_submission() {
        let expr = coupled_constraint();
        let actions: Vec<Action> = (0..40)
            .flat_map(|i| {
                let dept = ['a', 'b', 'c', 'd'][i % 4];
                vec![
                    dept_action("call", dept, i as i64),
                    dept_action("perform", dept, i as i64),
                    audit(),
                ]
            })
            .collect();
        // Reference: one execute per action.
        let reference = ManagerRuntime::with_protocol(&expr, ProtocolVariant::Combined).unwrap();
        let session = reference.session(1);
        let expected: Vec<bool> =
            actions.iter().map(|a| session.execute_blocking(a).unwrap().is_some()).collect();
        let expected_log = reference.log();

        // Batched: one window per 16 actions.
        let batched = ManagerRuntime::with_protocol(&expr, ProtocolVariant::Combined).unwrap();
        let session = batched.session(1);
        let mut got = Vec::new();
        for window in actions.chunks(16) {
            for t in session.submit_batch(window) {
                got.push(matches!(t.wait(), Completion::Executed { .. }));
            }
        }
        assert_eq!(got, expected, "batched outcomes must match per-action submission");
        assert_eq!(batched.log(), expected_log);
        let (b, r) = (batched.stats(), reference.stats());
        assert_eq!(b.asks, r.asks);
        assert_eq!(b.grants, r.grants);
        assert_eq!(b.denials, r.denials);
        assert_eq!(b.confirmations, r.confirmations);
    }

    #[test]
    fn submit_batch_denies_unknown_actions_inline() {
        let runtime =
            ManagerRuntime::with_protocol(&parse("(a - b)*").unwrap(), ProtocolVariant::Combined)
                .unwrap();
        let session = runtime.session(1);
        let tickets = session.submit_batch(&[
            Action::nullary("zzz"),
            Action::nullary("a"),
            Action::nullary("unknown"),
        ]);
        // Unknown actions resolve before any queue is touched: the tickets
        // are complete the moment submit_batch returns.
        assert_eq!(tickets[0].poll(), Some(Completion::Denied));
        assert_eq!(tickets[2].poll(), Some(Completion::Denied));
        assert!(matches!(tickets[1].wait(), Completion::Executed { .. }));
        assert_eq!(runtime.stats().denials, 2);
    }

    #[test]
    fn in_flight_tickets_survive_a_migration() {
        // Submissions pipelined before a coupling migration complete
        // correctly after it: the affected shard drains them behind the
        // pause barrier or ahead of it, never loses them.
        let runtime = ManagerRuntime::with_protocol(
            &parse("(some p { call(p) - perform(p) })*").unwrap(),
            ProtocolVariant::Combined,
        )
        .unwrap();
        let session = runtime.session(1);
        let calls: Vec<Ticket<Completion>> = (0..64)
            .flat_map(|p| {
                [
                    session.execute(&Action::concrete("call", [Value::int(p)])),
                    session.execute(&Action::concrete("perform", [Value::int(p)])),
                ]
            })
            .collect();
        // Couple while those are in flight (call(p) widens onto the new
        // shard).
        let coupling = parse("((some p { call(p) })* - audit)*").unwrap();
        runtime.couple(&coupling).unwrap();
        for t in &calls {
            assert!(matches!(t.wait(), Completion::Executed { .. }));
        }
        // Everything the runtime committed replays monolithically.
        let joined = Expr::sync(parse("(some p { call(p) - perform(p) })*").unwrap(), coupling);
        let mono = InteractionManager::monolithic(&joined, ProtocolVariant::Combined).unwrap();
        for action in runtime.log() {
            assert!(mono.try_execute(9, &action).unwrap().is_some(), "log must replay");
        }
        assert_eq!(runtime.log().len(), 128);
    }

    #[test]
    fn shutdown_fails_straggling_submissions_instead_of_hanging() {
        let runtime = ManagerRuntime::new(&patient_constraint()).unwrap();
        let session = runtime.session(1);
        runtime.shutdown().unwrap();
        match session.execute(&call(1, "sono")).wait() {
            Completion::Failed { error: ManagerError::Disconnected } => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    /// Builds a durable four-shard runtime on a fresh shared vault, commits
    /// a pair on department `a` plus one full cross-shard audit, and shuts
    /// it down — the common preamble of the torn-log tests below.
    fn torn_test_vault() -> Arc<dyn Vault> {
        let vault: Arc<dyn Vault> = Arc::new(ix_durable::MemVault::new());
        let options =
            RuntimeOptions { variant: ProtocolVariant::Combined, ..RuntimeOptions::default() };
        let runtime =
            ManagerRuntime::with_durability(&coupled_constraint(), options, Arc::clone(&vault))
                .unwrap();
        let session = runtime.session(1);
        for action in [dept_action("call", 'a', 1), dept_action("perform", 'a', 1), audit()] {
            assert!(matches!(session.execute(&action).wait(), Completion::Executed { .. }));
        }
        runtime.shutdown().unwrap();
        vault
    }

    #[test]
    fn torn_cross_commit_rolls_forward_on_every_missing_owner() {
        let vault = torn_test_vault();
        // Hand-tear a second audit: its commit record reached shard 0's
        // stream (the primary) but the crash swallowed the other owners'
        // echoes.
        let hub = DurabilityHub::new(Arc::clone(&vault));
        hub.log_shard(
            0,
            &WalRecord::Commit {
                key: (100, 0, 0),
                action: audit(),
                is_primary: true,
                delta: StatDelta { asks: 1, grants: 1, confirmations: 1, ..StatDelta::ZERO },
            },
        );
        let recovered = ManagerRuntime::recover(
            vault,
            RuntimeOptions { variant: ProtocolVariant::Combined, ..RuntimeOptions::default() },
        )
        .unwrap();
        // The decision was durable on one stream, so it completes on all
        // four owners: the merged log gains the torn audit exactly once...
        let log = recovered.log();
        assert_eq!(log.len(), 4);
        assert_eq!(log[3], audit());
        // ...and every shard's engine advanced through it — a third audit
        // still commits, which it could not if any owner were left behind.
        let session = recovered.session(2);
        assert!(matches!(session.execute(&audit()).wait(), Completion::Executed { .. }));
        // The roll-forward re-journaled the missing echoes, so a second
        // crash right now recovers the same state from the streams alone.
        let vault = recovered.vault().unwrap();
        recovered.shutdown().unwrap();
        let again = ManagerRuntime::recover(
            vault,
            RuntimeOptions { variant: ProtocolVariant::Combined, ..RuntimeOptions::default() },
        )
        .unwrap();
        assert_eq!(again.log().len(), 5);
        again.shutdown().unwrap();
    }

    #[test]
    fn torn_reservation_grant_completes_and_torn_release_drops() {
        let vault = torn_test_vault();
        let hub = DurabilityHub::new(Arc::clone(&vault));
        let lease =
            |id: u64| Reservation { id, action: audit(), client: 9, granted_at: 0, expires_at: 50 };
        // Reservation 70: granted on shards 0 and 1, the crash swallowed
        // the other owners' grant records and there is no release in any
        // tail — the grant is durable, so recovery completes it everywhere.
        for shard in [0usize, 1] {
            hub.log_shard(
                shard,
                &WalRecord::Reserve { reservation: lease(70), delta: StatDelta::ZERO },
            );
        }
        // Reservation 71: granted everywhere, but shard 2 also journaled
        // the release before the crash — the removal is durable, so
        // recovery drops the holders that remain.
        for shard in 0..4usize {
            hub.log_shard(
                shard,
                &WalRecord::Reserve { reservation: lease(71), delta: StatDelta::ZERO },
            );
        }
        hub.log_shard(2, &WalRecord::Release { id: 71, delta: StatDelta::ZERO });
        let recovered = ManagerRuntime::recover(
            vault,
            RuntimeOptions {
                variant: ProtocolVariant::Leased { lease: 50 },
                ..RuntimeOptions::default()
            },
        )
        .unwrap();
        let session = recovered.session(3);
        // Reservation 71 was dropped everywhere: confirming it fails.
        assert!(session.confirm_blocking(71).is_err(), "torn release must drop the lease");
        // Reservation 70 completed everywhere: its lease re-armed on the
        // recovered timer wheel and fires once the clock passes it.
        let expired = recovered.advance_time(60);
        assert_eq!(expired.len(), 1, "only lease 70 survived recovery");
        assert_eq!(expired[0].id, 70);
        assert_eq!(expired[0].action, audit());
        recovered.shutdown().unwrap();
    }
}

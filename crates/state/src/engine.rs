//! The word and action problems (Fig. 9 of the paper).
//!
//! * The **word problem** classifies a finite action sequence as a complete,
//!   partial or illegal word of an expression ([`word_problem`]).
//! * The **action problem** is the on-line variant that drives real systems:
//!   actions arrive one at a time and each must be accepted or rejected
//!   immediately ([`Engine::try_execute`]).  Acceptance is decided by a
//!   *tentative* state transition: if the successor state is valid the
//!   transition is committed, otherwise the current state is kept — exactly
//!   the `action()` loop of Fig. 9.
//!
//! The [`Engine`] is the component the interaction manager of `ix-manager`
//! wraps; it also records the per-transition state metrics used by the
//! complexity experiments.
//!
//! # The transition memo
//!
//! Every coordination protocol runs the *same* transition more than once:
//! an `ask` probes τ(s, a) and the matching `confirm` recomputes it; a
//! `permitted_after` probe replays the reservation table and the next probe
//! replays it again; a subscription refresh re-probes each watched action
//! until the state moves.  Since states are immutable behind [`Shared`]
//! handles, `(state identity, action)` is an exact memo key: the engine
//! keeps a small bounded map from that key to the successor, and the
//! entry's key handle keeps the state alive, so the pointer can never be
//! reused while the entry exists.  The memo is invisible semantically — τ̂
//! is pure — and `set_memo_capacity(0)` disables it (the equivalence
//! property tests drive memo-on and memo-off engines in lockstep).

use crate::error::StateResult;
use crate::init::init;
use crate::predicates::{is_final, is_valid};
use crate::state::{Shared, State, StateMetrics};
use crate::trans::{trans_with, TransitionOptions};
use ix_core::{Action, Expr};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};

/// Classification of a word, mirroring the integer result of the paper's
/// `word()` function (0 = illegal, 1 = partial, 2 = complete).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WordStatus {
    /// The word is not a partial word of the expression.
    Illegal,
    /// The word is a partial but not a complete word.
    Partial,
    /// The word is a complete word.
    Complete,
}

impl WordStatus {
    /// The paper's integer encoding.
    pub fn code(self) -> i32 {
        match self {
            WordStatus::Illegal => 0,
            WordStatus::Partial => 1,
            WordStatus::Complete => 2,
        }
    }
}

/// Solves the word problem for a closed expression using the operational
/// state model (the efficient counterpart of
/// `ix_semantics::classify_word`).
pub fn word_problem(expr: &Expr, word: &[Action]) -> StateResult<WordStatus> {
    let mut state = init(expr)?;
    for action in word {
        state = trans_with(&state, action, TransitionOptions::default());
        if state.is_null() {
            return Ok(WordStatus::Illegal);
        }
    }
    Ok(if is_final(&state) {
        WordStatus::Complete
    } else if is_valid(&state) {
        WordStatus::Partial
    } else {
        WordStatus::Illegal
    })
}

/// Default number of `(state, action)` entries the transition memo retains.
pub const DEFAULT_MEMO_CAPACITY: usize = 256;

type MemoKey = (usize, Action);

/// The bounded transition memo: FIFO eviction, exact pointer-identity keys.
#[derive(Clone, Debug, Default)]
struct TransMemo {
    map: HashMap<MemoKey, (Shared<State>, Shared<State>)>,
    order: VecDeque<MemoKey>,
    capacity: usize,
}

impl TransMemo {
    fn with_capacity(capacity: usize) -> TransMemo {
        TransMemo { map: HashMap::new(), order: VecDeque::new(), capacity }
    }

    fn lookup(&self, base: &Shared<State>, action: &Action) -> Option<Shared<State>> {
        let key = (Shared::as_ptr(base) as usize, action.clone());
        match self.map.get(&key) {
            // The stored key handle keeps its allocation alive, so equal
            // addresses imply the same state; the ptr_eq check is cheap
            // insurance, not a correctness requirement.
            Some((stored, next)) if Shared::ptr_eq(stored, base) => Some(next.clone()),
            _ => None,
        }
    }

    fn insert(&mut self, base: &Shared<State>, action: &Action, next: Shared<State>) {
        if self.capacity == 0 {
            return;
        }
        while self.map.len() >= self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
        let key = (Shared::as_ptr(base) as usize, action.clone());
        if self.map.insert(key.clone(), (base.clone(), next)).is_none() {
            self.order.push_back(key);
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

/// An incremental evaluator of one interaction expression: the component
/// that answers "is this action currently permitted?" and tracks the state
/// across committed executions.
#[derive(Clone, Debug)]
pub struct Engine {
    expr: Expr,
    state: Shared<State>,
    options: TransitionOptions,
    memo: RefCell<TransMemo>,
    accepted: u64,
    rejected: u64,
}

impl Engine {
    /// Creates an engine with the default (optimizing) transition options.
    pub fn new(expr: &Expr) -> StateResult<Engine> {
        Engine::with_options(expr, TransitionOptions::default())
    }

    /// Creates an engine with explicit transition options.
    pub fn with_options(expr: &Expr, options: TransitionOptions) -> StateResult<Engine> {
        Ok(Engine {
            expr: expr.clone(),
            state: Shared::new(init(expr)?),
            options,
            memo: RefCell::new(TransMemo::with_capacity(DEFAULT_MEMO_CAPACITY)),
            accepted: 0,
            rejected: 0,
        })
    }

    /// The expression this engine enforces.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The current state.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// The current state as a shared handle (cheap to clone, stable
    /// identity for memo keys).
    pub fn state_handle(&self) -> &Shared<State> {
        &self.state
    }

    /// The transition memo's capacity (0 = disabled).
    pub fn memo_capacity(&self) -> usize {
        self.memo.borrow().capacity
    }

    /// Resizes (and clears) the transition memo; 0 disables memoization —
    /// used by the memo-on/memo-off equivalence property tests.
    pub fn set_memo_capacity(&mut self, capacity: usize) {
        let mut memo = self.memo.borrow_mut();
        memo.clear();
        memo.capacity = capacity;
    }

    /// The memoized transition τ̂ from an explicit base state.  Exact: the
    /// memo key is the base state's allocation identity plus the concrete
    /// action, and entries pin their key state alive.
    fn transition(&self, base: &Shared<State>, action: &Action) -> Shared<State> {
        {
            let memo = self.memo.borrow();
            if let Some(hit) = memo.lookup(base, action) {
                return hit;
            }
        }
        let next = match trans_with(base, action, self.options) {
            State::Null => crate::state::null_state(),
            other => Shared::new(other),
        };
        self.memo.borrow_mut().insert(base, action, next.clone());
        next
    }

    /// Whether a successor state counts as valid.  On the optimized path
    /// the fused τ̂ maintains "invalid ⇔ null", so ψ is a constant-time
    /// check; the unoptimized ablation path falls back to the full
    /// predicate.
    fn successor_valid(&self, next: &State) -> bool {
        if self.options.optimize {
            !next.is_null()
        } else {
            is_valid(next)
        }
    }

    /// Metrics of the current state (size, alternatives).
    pub fn metrics(&self) -> StateMetrics {
        StateMetrics::of(&self.state)
    }

    /// True if the action sequence committed so far is a partial word.
    /// (Always true unless the engine was constructed from an unsatisfiable
    /// state or fed through [`Engine::force_execute`].)
    pub fn is_valid(&self) -> bool {
        self.successor_valid(&self.state)
    }

    /// True if the action sequence committed so far is a complete word.
    pub fn is_final(&self) -> bool {
        is_final(&self.state)
    }

    /// Number of accepted (committed) actions.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of rejected action attempts.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Tentatively checks whether the action would currently be accepted,
    /// without changing the state (step 1/2 of the coordination protocol:
    /// "ask" / "reply").
    pub fn is_permitted(&self, action: &Action) -> bool {
        if !action.is_concrete() {
            return false;
        }
        let next = self.transition(&self.state, action);
        self.successor_valid(&next)
    }

    /// Filters the permitted actions out of a candidate list (used to keep
    /// worklists up to date).
    pub fn permitted<'a>(&self, candidates: &'a [Action]) -> Vec<&'a Action> {
        candidates.iter().filter(|a| self.is_permitted(a)).collect()
    }

    /// Reservation-aware permissibility probe: simulates the `reserved`
    /// actions first (in order, skipping any that are no longer executable)
    /// and then checks whether `action` is permitted in the resulting state.
    /// This is the probe a scheduler runs before granting a new reservation:
    /// a granted-but-unconfirmed action must stay executable, so the new
    /// grant is only given if the expression permits it *after* every
    /// outstanding reservation as well.
    ///
    /// The engine itself is untouched — only a speculative state walk is
    /// performed, and every transition of the walk goes through the memo, so
    /// repeated probes of a stable reservation table replay from cache.
    pub fn permitted_after<'a, I>(&self, reserved: I, action: &Action) -> bool
    where
        I: IntoIterator<Item = &'a Action>,
    {
        self.permitted_after_from(None, reserved, action)
    }

    /// [`Engine::permitted_after`] from an explicit speculative base state
    /// (`None` = the committed state).  Used by schedulers that chain
    /// several tentative actions — e.g. the coalesced cross-shard voting of
    /// the session runtime.
    pub fn permitted_after_from<'a, I>(
        &self,
        base: Option<&Shared<State>>,
        reserved: I,
        action: &Action,
    ) -> bool
    where
        I: IntoIterator<Item = &'a Action>,
    {
        let mut speculative: Option<Shared<State>> = base.cloned();
        for r in reserved {
            if !r.is_concrete() {
                continue;
            }
            let base = speculative.as_ref().unwrap_or(&self.state);
            let next = self.transition(base, r);
            if self.successor_valid(&next) {
                speculative = Some(next);
            }
        }
        if !action.is_concrete() {
            return false;
        }
        let base = speculative.as_ref().unwrap_or(&self.state);
        let next = self.transition(base, action);
        self.successor_valid(&next)
    }

    /// The tentative half of a two-phase action step: computes the successor
    /// state without installing it, returning `Some` iff the action is
    /// currently permitted.  The caller either installs the successor with
    /// [`Engine::commit_prepared`] or aborts by dropping it — the engine's
    /// state is untouched either way.  This is the per-shard *prepare* vote
    /// of the cross-shard two-phase commit: a multi-owner action is prepared
    /// on every owning engine and committed only if all of them voted yes.
    ///
    /// An `ask` probe and its later `confirm` compute the same transition;
    /// the memo makes the second one a lookup.
    pub fn prepare(&self, action: &Action) -> Option<Shared<State>> {
        self.prepare_from(None, action)
    }

    /// [`Engine::prepare`] from an explicit speculative base state (`None` =
    /// the committed state); the chained form used when several actions are
    /// prepared as one atomic run.
    pub fn prepare_from(
        &self,
        base: Option<&Shared<State>>,
        action: &Action,
    ) -> Option<Shared<State>> {
        if !action.is_concrete() {
            return None;
        }
        let next = self.transition(base.unwrap_or(&self.state), action);
        if self.successor_valid(&next) {
            Some(next)
        } else {
            None
        }
    }

    /// The commit half of a two-phase action step: installs a successor
    /// state produced by [`Engine::prepare`] and counts the accepted action.
    /// Must only be called with a state prepared from the engine's *current*
    /// state (the caller serializes prepare and commit, e.g. under the
    /// shard's lock).
    pub fn commit_prepared(&mut self, next: Shared<State>) {
        self.state = next;
        self.accepted += 1;
    }

    /// Performs the accept/reject step of the action problem: the action is
    /// committed iff its tentative successor state is valid.  Returns true
    /// if the action was accepted.  Equivalent to [`Engine::prepare`]
    /// followed by [`Engine::commit_prepared`] (or a recorded rejection).
    pub fn try_execute(&mut self, action: &Action) -> bool {
        match self.prepare(action) {
            Some(next) => {
                self.commit_prepared(next);
                true
            }
            None => {
                self.rejected += 1;
                false
            }
        }
    }

    /// Commits the action unconditionally, even if it invalidates the state.
    /// Used by failure-injection tests to model clients that bypass the
    /// coordination protocol.
    pub fn force_execute(&mut self, action: &Action) {
        self.state = self.transition(&self.state, action);
        self.accepted += 1;
    }

    /// Feeds a whole word, stopping at the first rejected action.  Returns
    /// the number of accepted actions.
    pub fn feed(&mut self, word: &[Action]) -> usize {
        let mut n = 0;
        for action in word {
            if self.try_execute(action) {
                n += 1;
            } else {
                break;
            }
        }
        n
    }

    /// Resets the engine to the initial state of its expression.
    pub fn reset(&mut self) {
        self.state = Shared::new(init(&self.expr).expect("expression validated at construction"));
        self.memo.borrow_mut().clear();
        self.accepted = 0;
        self.rejected = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_core::{parse, Value};

    fn a(name: &str) -> Action {
        Action::nullary(name)
    }

    #[test]
    fn word_problem_matches_fig9_codes() {
        let e = parse("a - b").unwrap();
        assert_eq!(word_problem(&e, &[]).unwrap(), WordStatus::Partial);
        assert_eq!(word_problem(&e, &[a("a")]).unwrap(), WordStatus::Partial);
        assert_eq!(word_problem(&e, &[a("a"), a("b")]).unwrap(), WordStatus::Complete);
        assert_eq!(word_problem(&e, &[a("b")]).unwrap(), WordStatus::Illegal);
        assert_eq!(WordStatus::Complete.code(), 2);
    }

    #[test]
    fn action_problem_accepts_and_rejects() {
        let e = parse("(x + y)*").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        assert!(eng.try_execute(&a("x")));
        assert!(eng.try_execute(&a("y")));
        assert!(!eng.try_execute(&a("z")));
        assert_eq!(eng.accepted(), 2);
        assert_eq!(eng.rejected(), 1);
        assert!(eng.is_final());
    }

    #[test]
    fn tentative_checks_do_not_change_state() {
        let e = parse("a - b").unwrap();
        let eng = Engine::new(&e).unwrap();
        assert!(eng.is_permitted(&a("a")));
        assert!(!eng.is_permitted(&a("b")));
        // Still at the initial state.
        assert!(eng.is_permitted(&a("a")));
        assert_eq!(eng.accepted(), 0);
    }

    #[test]
    fn reservation_aware_probe_replays_reserved_actions() {
        // Capacity one: with a reservation for `call(1)` outstanding, a
        // second call must probe as impermissible even though the engine's
        // committed state still allows it.
        let e = parse("mult 1 { (some p { call(p) - perform(p) })* }").unwrap();
        let eng = Engine::new(&e).unwrap();
        let call = |p: i64| Action::concrete("call", [Value::int(p)]);
        assert!(eng.is_permitted(&call(2)));
        let reserved = [call(1)];
        assert!(!eng.permitted_after(reserved.iter(), &call(2)), "slot is reserved");
        assert!(eng.permitted_after([].iter(), &call(2)), "no reservations, plain probe");
        // A reservation that is itself no longer executable is skipped, and
        // the engine is untouched either way.
        let stale = [a("nonsense")];
        assert!(eng.permitted_after(stale.iter(), &call(2)));
        assert_eq!(eng.accepted(), 0);
        assert_eq!(eng.rejected(), 0);
    }

    #[test]
    fn memo_hits_reuse_the_same_successor_allocation() {
        let e = parse("(a - b)*").unwrap();
        let eng = Engine::new(&e).unwrap();
        let first = eng.prepare(&a("a")).expect("permitted");
        let second = eng.prepare(&a("a")).expect("permitted");
        assert!(
            crate::state::Shared::ptr_eq(&first, &second),
            "the second prepare must be a memo hit"
        );
    }

    #[test]
    fn memo_off_engine_behaves_identically() {
        let e = parse("mult 2 { (some p { call(p) - perform(p) })* }").unwrap();
        let mut on = Engine::new(&e).unwrap();
        let mut off = Engine::new(&e).unwrap();
        off.set_memo_capacity(0);
        assert_eq!(off.memo_capacity(), 0);
        let call = |p: i64| Action::concrete("call", [Value::int(p)]);
        let perform = |p: i64| Action::concrete("perform", [Value::int(p)]);
        for action in
            [call(1), call(2), call(3), perform(1), call(3), perform(2), perform(3), call(9)]
        {
            assert_eq!(on.is_permitted(&action), off.is_permitted(&action));
            assert_eq!(on.try_execute(&action), off.try_execute(&action), "on {action}");
        }
        assert_eq!(on.state(), off.state());
        assert_eq!(on.accepted(), off.accepted());
        assert_eq!(on.rejected(), off.rejected());
    }

    #[test]
    fn memo_capacity_is_bounded() {
        let e = parse("(a + b + c)*").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        eng.set_memo_capacity(2);
        for _ in 0..8 {
            for n in ["a", "b", "c", "zzz"] {
                let _ = eng.is_permitted(&a(n));
            }
            assert!(eng.memo.borrow().map.len() <= 2, "memo exceeded its bound");
            assert!(eng.try_execute(&a("a")));
        }
    }

    #[test]
    fn permitted_filters_candidates() {
        let e = parse("(call(1, sono) - perform(1, sono)) @ (call(1, endo) - perform(1, endo))")
            .unwrap();
        let eng = Engine::new(&e).unwrap();
        let candidates = vec![
            Action::concrete("call", [Value::int(1), Value::sym("sono")]),
            Action::concrete("perform", [Value::int(1), Value::sym("sono")]),
            Action::concrete("call", [Value::int(1), Value::sym("endo")]),
        ];
        let permitted = eng.permitted(&candidates);
        assert_eq!(permitted.len(), 2, "both calls allowed, perform not yet");
    }

    #[test]
    fn mutual_exclusion_scenario_from_the_introduction() {
        // Once the patient is called to one examination, the other call is
        // disabled until the first examination is performed.
        let e = parse(
            "(call(1, sono) - perform(1, sono)) + (call(1, endo) - perform(1, endo)) \
             + (call(1, sono) - perform(1, sono) - call(1, endo) - perform(1, endo)) \
             + (call(1, endo) - perform(1, endo) - call(1, sono) - perform(1, sono))",
        )
        .unwrap();
        let call = |x: &str| Action::concrete("call", [Value::int(1), Value::sym(x)]);
        let perform = |x: &str| Action::concrete("perform", [Value::int(1), Value::sym(x)]);
        let mut eng = Engine::new(&e).unwrap();
        assert!(eng.is_permitted(&call("sono")));
        assert!(eng.is_permitted(&call("endo")));
        assert!(eng.try_execute(&call("sono")));
        assert!(!eng.is_permitted(&call("endo")), "temporarily disabled");
        assert!(eng.try_execute(&perform("sono")));
        assert!(eng.is_permitted(&call("endo")), "re-enabled after completion");
    }

    #[test]
    fn feed_and_reset() {
        let e = parse("a - b - c").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        assert_eq!(eng.feed(&[a("a"), a("b"), a("z"), a("c")]), 2);
        assert!(!eng.is_final());
        eng.reset();
        assert_eq!(eng.accepted(), 0);
        assert_eq!(eng.feed(&[a("a"), a("b"), a("c")]), 3);
        assert!(eng.is_final());
    }

    #[test]
    fn force_execute_can_invalidate_the_state() {
        let e = parse("a").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        eng.force_execute(&a("z"));
        assert!(!eng.is_valid());
        assert!(!eng.try_execute(&a("a")), "nothing is permitted in the null state");
    }

    #[test]
    fn non_concrete_actions_are_rejected() {
        let e = parse("a").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        let abstract_action = Action::new("a", [ix_core::Term::Param(ix_core::Param::new("p"))]);
        assert!(!eng.is_permitted(&abstract_action));
        assert!(!eng.try_execute(&abstract_action));
    }

    #[test]
    fn engine_metrics_reflect_state_growth() {
        let e = parse("(a - b)#").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        let m0 = eng.metrics();
        eng.try_execute(&a("a"));
        eng.try_execute(&a("a"));
        let m2 = eng.metrics();
        assert!(m2.size >= m0.size);
        assert!(!m2.is_null);
    }
}

//! Quickstart: build an interaction expression, check words, and run the
//! on-line action problem (Fig. 9 of the paper).
//!
//! Run with `cargo run --example quickstart`.

use ix_core::{parse, Action, Value};
use ix_state::{word_problem, Engine, WordStatus};

fn main() {
    // A patient may pass through at most one examination at a time, for any
    // number of examinations and any number of repetitions.
    let constraint = parse("(some x { call(1, x) - perform(1, x) })*").unwrap();
    println!("interaction expression: {constraint}");

    // The word problem: classify a complete action sequence.
    let call = |x: &str| Action::concrete("call", [Value::int(1), Value::sym(x)]);
    let perform = |x: &str| Action::concrete("perform", [Value::int(1), Value::sym(x)]);
    let word = vec![call("sono"), perform("sono"), call("endo"), perform("endo")];
    assert_eq!(word_problem(&constraint, &word).unwrap(), WordStatus::Complete);
    println!("the sequence sono-then-endo is a complete word");

    // The action problem: accept or reject actions as they arrive.
    let mut engine = Engine::new(&constraint).unwrap();
    for action in [call("sono"), call("endo"), perform("sono"), call("endo")] {
        let accepted = engine.try_execute(&action);
        println!("  {action:<18} -> {}", if accepted { "Accept." } else { "Reject." });
    }
    assert!(engine.is_valid());
    println!("final state is valid; complete = {}", engine.is_final());
}

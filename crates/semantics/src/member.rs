//! The naive decision procedure for the word problem.
//!
//! Sec. 4 of the paper observes that transforming the definitions of Φ and Ψ
//! "more or less directly" into executable code yields an algorithm whose
//! complexity grows exponentially with the length of the word even for very
//! simple expressions.  This module is that algorithm: it enumerates the
//! bounded languages with the word's length as the bound and tests
//! membership.  It serves as the correctness oracle for the operational
//! semantics of `ix-state` and as the baseline of the benchmark
//! `word_problem_naive_vs_operational` (experiment E12 of DESIGN.md).

use crate::denote::{denote, SemanticsError};
use crate::universe::Universe;
use ix_core::{Action, Expr};

/// Classification of a word with respect to an expression, mirroring the
/// return value of the `word()` function of Fig. 9.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WordClass {
    /// The word is not even a partial word.
    Illegal,
    /// The word is a partial but not a complete word.
    Partial,
    /// The word is a complete word.
    Complete,
}

impl WordClass {
    /// The integer encoding used by the paper's `word()` function
    /// (0 = illegal, 1 = partial, 2 = complete).
    pub fn code(self) -> i32 {
        match self {
            WordClass::Illegal => 0,
            WordClass::Partial => 1,
            WordClass::Complete => 2,
        }
    }
}

/// Decides the word problem by direct application of the formal semantics.
///
/// The universe used for grounding is the union of the values observed in the
/// expression and the word plus one fresh value; this is exact for
/// expressions whose quantifier bodies are completely quantified (see
/// DESIGN.md) and for all quantifier-free expressions.
pub fn classify_word(expr: &Expr, word: &[Action]) -> Result<WordClass, SemanticsError> {
    let universe = Universe::observed(expr, &[word]).with_fresh(1);
    classify_word_in(expr, word, &universe)
}

/// Same as [`classify_word`] but with an explicit universe.
pub fn classify_word_in(
    expr: &Expr,
    word: &[Action],
    universe: &Universe,
) -> Result<WordClass, SemanticsError> {
    let d = denote(expr, universe, word.len())?;
    if d.phi.contains(word) {
        Ok(WordClass::Complete)
    } else if d.psi.contains(word) {
        Ok(WordClass::Partial)
    } else {
        Ok(WordClass::Illegal)
    }
}

/// True if the word is a complete word of the expression.
pub fn is_complete(expr: &Expr, word: &[Action]) -> bool {
    matches!(classify_word(expr, word), Ok(WordClass::Complete))
}

/// True if the word is at least a partial word of the expression.
pub fn is_partial(expr: &Expr, word: &[Action]) -> bool {
    matches!(classify_word(expr, word), Ok(WordClass::Partial | WordClass::Complete))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_core::{parse, Value};

    fn w(names: &[&str]) -> Vec<Action> {
        names.iter().map(|n| Action::nullary(*n)).collect()
    }

    #[test]
    fn classifies_words_of_a_sequence() {
        let e = parse("a - b - c").unwrap();
        assert_eq!(classify_word(&e, &w(&[])).unwrap(), WordClass::Partial);
        assert_eq!(classify_word(&e, &w(&["a"])).unwrap(), WordClass::Partial);
        assert_eq!(classify_word(&e, &w(&["a", "b", "c"])).unwrap(), WordClass::Complete);
        assert_eq!(classify_word(&e, &w(&["b"])).unwrap(), WordClass::Illegal);
        assert_eq!(classify_word(&e, &w(&["a", "b", "c", "a"])).unwrap(), WordClass::Illegal);
    }

    #[test]
    fn codes_match_fig9() {
        assert_eq!(WordClass::Illegal.code(), 0);
        assert_eq!(WordClass::Partial.code(), 1);
        assert_eq!(WordClass::Complete.code(), 2);
    }

    #[test]
    fn quantified_examination_constraint() {
        // A patient may pass through at most one examination at a time.
        let e = parse("(some x { call(1, x) - perform(1, x) })*").unwrap();
        let call = |x: &str| Action::concrete("call", [Value::int(1), Value::sym(x)]);
        let perform = |x: &str| Action::concrete("perform", [Value::int(1), Value::sym(x)]);
        assert!(is_complete(&e, &[call("sono"), perform("sono"), call("endo"), perform("endo")]));
        assert!(is_partial(&e, &[call("sono")]));
        assert!(!is_partial(&e, &[call("sono"), call("endo")]), "second call before perform");
    }

    #[test]
    fn helpers_are_consistent() {
        let e = parse("a | b").unwrap();
        assert!(is_complete(&e, &w(&["b", "a"])));
        assert!(is_partial(&e, &w(&["b"])));
        assert!(!is_complete(&e, &w(&["b"])));
        assert!(!is_partial(&e, &w(&["c"])));
    }
}

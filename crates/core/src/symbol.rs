//! Interned symbols.
//!
//! Action names (the set Λ of the paper), symbolic values (part of Ω) and
//! parameter names (Π) are all plain identifiers.  They are interned into a
//! global table so that the rest of the system can treat them as `Copy`
//! integers: comparisons, hashing and cloning of actions and expressions stay
//! cheap even though states and alternatives are duplicated frequently by the
//! operational semantics.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An interned identifier.
///
/// Two symbols are equal if and only if they were created from the same
/// string.  The ordering is the interning order, which is stable within a
/// process and sufficient for the deterministic data structures used by the
/// state model (it does not need to be lexicographic).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

impl Interner {
    fn new() -> Self {
        Interner { map: HashMap::new(), strings: Vec::new() }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        let arc: Arc<str> = Arc::from(s);
        self.strings.push(arc.clone());
        self.map.insert(arc, id);
        id
    }

    fn resolve(&self, id: u32) -> Arc<str> {
        self.strings[id as usize].clone()
    }
}

fn global() -> &'static RwLock<Interner> {
    static GLOBAL: std::sync::OnceLock<RwLock<Interner>> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(Interner::new()))
}

impl Symbol {
    /// Interns `s` and returns its symbol.
    pub fn new(s: &str) -> Symbol {
        // Fast path: already interned, only a read lock is needed.
        {
            let g = global().read();
            if let Some(&id) = g.map.get(s) {
                return Symbol(id);
            }
        }
        Symbol(global().write().intern(s))
    }

    /// Returns the string this symbol was interned from.
    pub fn as_str(&self) -> Arc<str> {
        global().read().resolve(self.0)
    }

    /// The raw interning index (stable within a process).
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::new(s)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("prepare");
        let b = Symbol::new("prepare");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::new("call");
        let b = Symbol::new("perform");
        assert_ne!(a, b);
    }

    #[test]
    fn resolves_back_to_the_original_string() {
        let a = Symbol::new("write_report");
        assert_eq!(&*a.as_str(), "write_report");
        assert_eq!(a.to_string(), "write_report");
    }

    #[test]
    fn symbols_are_usable_as_map_keys() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(Symbol::new("x"), 1);
        m.insert(Symbol::new("y"), 2);
        assert_eq!(m[&Symbol::new("x")], 1);
        assert_eq!(m[&Symbol::new("y")], 2);
    }

    #[test]
    fn debug_and_display_formats() {
        let s = Symbol::new("endo");
        assert_eq!(format!("{s}"), "endo");
        assert!(format!("{s:?}").contains("endo"));
    }

    #[test]
    fn many_symbols_round_trip() {
        let names: Vec<String> = (0..200).map(|i| format!("sym_{i}")).collect();
        let syms: Vec<Symbol> = names.iter().map(|n| Symbol::new(n)).collect();
        for (n, s) in names.iter().zip(&syms) {
            assert_eq!(&*s.as_str(), n.as_str());
        }
    }
}

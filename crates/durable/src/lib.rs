//! # ix-durable — snapshots, write-ahead logs, and vaults
//!
//! The durability substrate of the runtime (nothing in here knows about the
//! manager's protocol):
//!
//! * [`codec`] — a tiny self-describing binary codec (varints, zigzag,
//!   strings) plus the CRC32 used to frame on-disk records;
//! * [`fault`] — deterministic fault injection: [`FaultVault`] journals
//!   every mutation while presenting a healthy vault, then materializes the
//!   storage a scripted crash ([`FaultPlan`]: I/O error, torn final record,
//!   or fsync lie) would have left behind;
//! * [`vault`] — the [`Vault`] storage abstraction: numbered append-only
//!   *streams* of records plus atomically-replaced named *blobs*.
//!   [`MemVault`] keeps everything in memory (the test default — it survives
//!   a simulated crash because the handle is shared, not because anything is
//!   written); [`FileVault`] maps each stream onto segmented append-only
//!   files with CRC-framed records, an [`FsyncPolicy`], and
//!   segment-granular truncation;
//! * [`snapshot`] — codecs for the core vocabulary (actions, values,
//!   alphabets) and the pointer-deduplicating state-table codec: a CoW
//!   [`ix_state::State`] tree is serialized as a flat node table in which
//!   every [`ix_state::Shared`] allocation appears exactly once, so the
//!   structural sharing that makes in-memory capture a ref-count bump also
//!   makes the serialized form proportional to the number of *distinct*
//!   nodes.  The table holds multiple roots, so an engine state and the
//!   states of its compiled DFA tiles share one pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod fault;
pub mod snapshot;
pub mod vault;

pub use codec::{crc32, CodecError, Reader, Writer};
pub use fault::{FaultMode, FaultPlan, FaultVault};
pub use snapshot::{
    decode_action, decode_alphabet, decode_value, encode_action, encode_alphabet, encode_value,
    StateTableBuilder, StateTableReader,
};
pub use vault::{FileVault, FsyncPolicy, MemVault, Vault, META_STREAM, QUEUE_STREAM};

//! The workflow model of the simulated WfMS.
//!
//! A workflow definition is a block-structured control-flow tree over
//! activities — sequences, parallel (AND) blocks, exclusive (XOR) choices and
//! loops — which is sufficient to express the medical examination workflows
//! of Fig. 1 and the usual intra-workflow control structures the paper
//! contrasts with inter-workflow dependencies (Sec. 1).  A workflow instance
//! executes one definition for one case (here: one patient and one
//! examination type) and tracks the life cycle of every activity:
//! `Pending → Ready → Running → Completed` (or `Skipped` for branches not
//! taken).

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of an activity within a workflow definition.
pub type ActivityId = usize;

/// An activity declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ActivityDef {
    /// Activity name, e.g. `call_patient`.
    pub name: String,
    /// The organizational role that performs the activity (used to route
    /// worklist items), e.g. `medical_assistant`.
    pub role: String,
}

/// Block-structured control flow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Flow {
    /// A single activity.
    Activity(ActivityId),
    /// Sequential execution of the blocks.
    Sequence(Vec<Flow>),
    /// Parallel (AND) execution of the blocks; all of them must complete.
    Parallel(Vec<Flow>),
    /// Exclusive (XOR) choice: exactly one block is executed, the others are
    /// skipped as soon as one is entered.
    Choice(Vec<Flow>),
    /// A loop executing its body a fixed number of times (the simulation does
    /// not need data-driven loop conditions).
    Loop {
        /// The loop body.
        body: Box<Flow>,
        /// Number of iterations.
        iterations: u32,
    },
}

/// A workflow definition (schema).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkflowDefinition {
    /// Schema name, e.g. `ultrasonography`.
    pub name: String,
    /// The declared activities, indexed by [`ActivityId`].
    pub activities: Vec<ActivityDef>,
    /// The control-flow tree.
    pub flow: Flow,
}

impl WorkflowDefinition {
    /// Creates a definition, checking that the flow references only declared
    /// activities and references each at most once (block structure).
    pub fn new(name: &str, activities: Vec<ActivityDef>, flow: Flow) -> WorkflowDefinition {
        let mut seen = Vec::new();
        check_flow(&flow, activities.len(), &mut seen);
        WorkflowDefinition { name: name.to_string(), activities, flow }
    }

    /// The id of the activity with the given name.
    pub fn activity_id(&self, name: &str) -> Option<ActivityId> {
        self.activities.iter().position(|a| a.name == name)
    }

    /// The name of an activity.
    pub fn activity_name(&self, id: ActivityId) -> &str {
        &self.activities[id].name
    }

    /// Number of declared activities.
    pub fn len(&self) -> usize {
        self.activities.len()
    }

    /// True if the definition declares no activities.
    pub fn is_empty(&self) -> bool {
        self.activities.is_empty()
    }
}

fn check_flow(flow: &Flow, activity_count: usize, seen: &mut Vec<ActivityId>) {
    match flow {
        Flow::Activity(id) => {
            assert!(*id < activity_count, "flow references undeclared activity {id}");
            assert!(!seen.contains(id), "activity {id} occurs twice in the flow");
            seen.push(*id);
        }
        Flow::Sequence(blocks) | Flow::Parallel(blocks) | Flow::Choice(blocks) => {
            for b in blocks {
                check_flow(b, activity_count, seen);
            }
        }
        Flow::Loop { body, .. } => check_flow(body, activity_count, seen),
    }
}

/// Life-cycle state of an activity within an instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActivityState {
    /// Not yet reachable.
    Pending,
    /// Reachable: the engine has scheduled it (it appears in worklists).
    Ready,
    /// A user has started working on it.
    Running,
    /// Finished.
    Completed,
    /// Will never run (its XOR branch was not taken).
    Skipped,
}

/// The case data of a workflow instance: the paper's examples coordinate on
/// the patient and the kind of examination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseData {
    /// Patient identifier (e.g. a social security number).
    pub patient: i64,
    /// Examination kind (e.g. `sono` or `endo`).
    pub examination: String,
}

/// A running workflow instance.
#[derive(Clone, Debug)]
pub struct WorkflowInstance {
    /// Instance identifier.
    pub id: u64,
    /// The definition this instance executes.
    pub definition: WorkflowDefinition,
    /// The case data.
    pub case: CaseData,
    /// Per-activity state.
    pub states: BTreeMap<ActivityId, ActivityState>,
    /// Remaining iterations of loops, keyed by a stable index of the loop
    /// node in the flow tree.
    pub loop_budget: BTreeMap<usize, u32>,
}

impl WorkflowInstance {
    /// Creates an instance with every activity pending.
    pub fn new(id: u64, definition: WorkflowDefinition, case: CaseData) -> WorkflowInstance {
        let states = (0..definition.len()).map(|i| (i, ActivityState::Pending)).collect();
        let mut loop_budget = BTreeMap::new();
        index_loops(&definition.flow, &mut 0, &mut loop_budget);
        WorkflowInstance { id, definition, case, states, loop_budget }
    }

    /// The state of an activity.
    pub fn state(&self, id: ActivityId) -> ActivityState {
        self.states[&id]
    }

    /// Sets the state of an activity.
    pub fn set_state(&mut self, id: ActivityId, state: ActivityState) {
        self.states.insert(id, state);
    }

    /// True if every activity is completed or skipped.
    pub fn is_finished(&self) -> bool {
        self.completed_of(&self.definition.flow.clone())
    }

    /// The activities that are currently ready to be *scheduled* according to
    /// the control flow (ignoring inter-workflow constraints): pending
    /// activities whose predecessors are completed.
    pub fn schedulable(&self) -> Vec<ActivityId> {
        let mut out = Vec::new();
        self.collect_schedulable(&self.definition.flow.clone(), &mut out);
        out
    }

    fn collect_schedulable(&self, flow: &Flow, out: &mut Vec<ActivityId>) {
        match flow {
            Flow::Activity(id) => {
                if self.state(*id) == ActivityState::Pending {
                    out.push(*id);
                }
            }
            Flow::Sequence(blocks) => {
                for b in blocks {
                    if !self.completed_of(b) {
                        self.collect_schedulable(b, out);
                        break;
                    }
                }
            }
            Flow::Parallel(blocks) => {
                for b in blocks {
                    if !self.completed_of(b) {
                        self.collect_schedulable(b, out);
                    }
                }
            }
            Flow::Choice(blocks) => {
                // If some branch has been entered, only that branch continues;
                // otherwise every branch's first activities are offered.
                match blocks.iter().find(|b| self.entered(b)) {
                    Some(active) => self.collect_schedulable(active, out),
                    None => {
                        for b in blocks {
                            self.collect_schedulable(b, out);
                        }
                    }
                }
            }
            Flow::Loop { body, .. } => {
                // The loop body is re-armed by the engine when an iteration
                // completes; scheduling-wise it behaves like its body.
                self.collect_schedulable(body, out);
            }
        }
    }

    /// True if every activity of the block is completed or skipped.
    pub fn completed_of(&self, flow: &Flow) -> bool {
        match flow {
            Flow::Activity(id) => {
                matches!(self.state(*id), ActivityState::Completed | ActivityState::Skipped)
            }
            Flow::Sequence(blocks) | Flow::Parallel(blocks) => {
                blocks.iter().all(|b| self.completed_of(b))
            }
            Flow::Choice(blocks) => {
                // A choice is complete when one branch completed and the
                // others are skipped (or it was skipped entirely).
                blocks.iter().any(|b| self.completed_of(b) && self.entered(b))
                    || blocks.iter().all(|b| self.skipped_of(b))
            }
            Flow::Loop { body, .. } => self.completed_of(body),
        }
    }

    fn skipped_of(&self, flow: &Flow) -> bool {
        match flow {
            Flow::Activity(id) => self.state(*id) == ActivityState::Skipped,
            Flow::Sequence(blocks) | Flow::Parallel(blocks) | Flow::Choice(blocks) => {
                blocks.iter().all(|b| self.skipped_of(b))
            }
            Flow::Loop { body, .. } => self.skipped_of(body),
        }
    }

    /// True if some activity of the block has been started or completed.
    pub fn entered(&self, flow: &Flow) -> bool {
        match flow {
            Flow::Activity(id) => matches!(
                self.state(*id),
                ActivityState::Running | ActivityState::Completed | ActivityState::Ready
            ),
            Flow::Sequence(blocks) | Flow::Parallel(blocks) | Flow::Choice(blocks) => {
                blocks.iter().any(|b| self.entered(b))
            }
            Flow::Loop { body, .. } => self.entered(body),
        }
    }

    /// Marks every pending activity of the other branches of a choice as
    /// skipped once `chosen` has been entered.
    pub fn skip_alternatives(&mut self, chosen: ActivityId) {
        let flow = self.definition.flow.clone();
        self.skip_in(&flow, chosen);
    }

    fn skip_in(&mut self, flow: &Flow, chosen: ActivityId) {
        if let Flow::Choice(blocks) = flow {
            if let Some(active) = blocks.iter().position(|b| contains_activity(b, chosen)) {
                for (i, b) in blocks.iter().enumerate() {
                    if i != active {
                        self.skip_all(b);
                    }
                }
                self.skip_in(&blocks[active].clone(), chosen);
                return;
            }
        }
        for child in flow_children(flow) {
            self.skip_in(&child.clone(), chosen);
        }
    }

    fn skip_all(&mut self, flow: &Flow) {
        match flow {
            Flow::Activity(id) => {
                if self.state(*id) == ActivityState::Pending {
                    self.set_state(*id, ActivityState::Skipped);
                }
            }
            _ => {
                for child in flow_children(flow) {
                    self.skip_all(&child.clone());
                }
            }
        }
    }
}

fn contains_activity(flow: &Flow, id: ActivityId) -> bool {
    match flow {
        Flow::Activity(a) => *a == id,
        _ => flow_children(flow).iter().any(|c| contains_activity(c, id)),
    }
}

fn flow_children(flow: &Flow) -> Vec<&Flow> {
    match flow {
        Flow::Activity(_) => vec![],
        Flow::Sequence(b) | Flow::Parallel(b) | Flow::Choice(b) => b.iter().collect(),
        Flow::Loop { body, .. } => vec![body],
    }
}

fn index_loops(flow: &Flow, next: &mut usize, out: &mut BTreeMap<usize, u32>) {
    if let Flow::Loop { iterations, .. } = flow {
        out.insert(*next, *iterations);
        *next += 1;
    }
    for c in flow_children(flow) {
        index_loops(c, next, out);
    }
}

impl fmt::Display for WorkflowInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{} (patient {}, {})",
            self.definition.name, self.id, self.case.patient, self.case.examination
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_definition() -> WorkflowDefinition {
        WorkflowDefinition::new(
            "demo",
            vec![
                ActivityDef { name: "a".into(), role: "r".into() },
                ActivityDef { name: "b".into(), role: "r".into() },
                ActivityDef { name: "c".into(), role: "r".into() },
                ActivityDef { name: "d".into(), role: "r".into() },
            ],
            Flow::Sequence(vec![
                Flow::Activity(0),
                Flow::Parallel(vec![Flow::Activity(1), Flow::Activity(2)]),
                Flow::Activity(3),
            ]),
        )
    }

    fn case() -> CaseData {
        CaseData { patient: 1, examination: "sono".into() }
    }

    #[test]
    fn schedulable_follows_sequence_and_parallel_blocks() {
        let mut inst = WorkflowInstance::new(1, simple_definition(), case());
        assert_eq!(inst.schedulable(), vec![0]);
        inst.set_state(0, ActivityState::Completed);
        assert_eq!(inst.schedulable(), vec![1, 2]);
        inst.set_state(1, ActivityState::Completed);
        assert_eq!(inst.schedulable(), vec![2]);
        inst.set_state(2, ActivityState::Completed);
        assert_eq!(inst.schedulable(), vec![3]);
        inst.set_state(3, ActivityState::Completed);
        assert!(inst.schedulable().is_empty());
        assert!(inst.is_finished());
    }

    #[test]
    fn choices_offer_all_branches_until_one_is_entered() {
        let def = WorkflowDefinition::new(
            "choice",
            vec![
                ActivityDef { name: "x".into(), role: "r".into() },
                ActivityDef { name: "y".into(), role: "r".into() },
            ],
            Flow::Choice(vec![Flow::Activity(0), Flow::Activity(1)]),
        );
        let mut inst = WorkflowInstance::new(1, def, case());
        assert_eq!(inst.schedulable(), vec![0, 1]);
        inst.set_state(0, ActivityState::Running);
        inst.skip_alternatives(0);
        assert_eq!(inst.state(1), ActivityState::Skipped);
        inst.set_state(0, ActivityState::Completed);
        assert!(inst.is_finished());
    }

    #[test]
    fn activity_lookup_and_display() {
        let def = simple_definition();
        assert_eq!(def.activity_id("c"), Some(2));
        assert_eq!(def.activity_id("nope"), None);
        assert_eq!(def.activity_name(0), "a");
        assert_eq!(def.len(), 4);
        assert!(!def.is_empty());
        let inst = WorkflowInstance::new(7, def, case());
        assert!(inst.to_string().contains("demo#7"));
    }

    #[test]
    #[should_panic(expected = "undeclared activity")]
    fn flows_must_reference_declared_activities() {
        WorkflowDefinition::new(
            "bad",
            vec![ActivityDef { name: "a".into(), role: "r".into() }],
            Flow::Activity(5),
        );
    }

    #[test]
    fn loops_are_indexed() {
        let def = WorkflowDefinition::new(
            "loop",
            vec![ActivityDef { name: "a".into(), role: "r".into() }],
            Flow::Loop { body: Box::new(Flow::Activity(0)), iterations: 3 },
        );
        let inst = WorkflowInstance::new(1, def, case());
        assert_eq!(inst.loop_budget.len(), 1);
        assert_eq!(inst.loop_budget[&0], 3);
    }
}

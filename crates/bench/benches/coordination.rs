//! Criterion benches for the workflow-integration experiments of Sec. 7
//! (experiments E11 and E17 of DESIGN.md).
//!
//! * `manager_throughput` — actions per second the interaction manager
//!   sustains for the Fig. 6/7 constraints as the number of concurrently
//!   coordinated patients grows, for the combined and the ask/confirm
//!   protocol variants.
//! * `adaptation_overhead` — the same workflow ensemble driven through
//!   adapted worklist handlers vs. an adapted workflow engine (Fig. 11): the
//!   measured quantity is end-to-end time; the accompanying `reproduce fig11`
//!   report prints the protocol message counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ix_bench::*;
use ix_manager::{InteractionManager, ProtocolVariant};
use ix_wfms::{AdaptedEngine, AdaptedWorklistHandler, CaseData, ManagerPort, WorkflowEngine};
use std::time::Duration;

fn manager_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("manager_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for patients in [4usize, 8, 16] {
        let schedule = manager_schedule(patients, 2, 99);
        let constraint = capacity_constraint(patients as u32);
        group.bench_with_input(
            BenchmarkId::new("combined_protocol", patients),
            &schedule,
            |b, word| {
                b.iter(|| {
                    let m =
                        InteractionManager::with_protocol(&constraint, ProtocolVariant::Combined)
                            .unwrap();
                    let mut accepted = 0u64;
                    for action in word {
                        if m.try_execute(1, action).unwrap().is_some() {
                            accepted += 1;
                        }
                    }
                    accepted
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ask_confirm_protocol", patients),
            &schedule,
            |b, word| {
                b.iter(|| {
                    let m = InteractionManager::new(&constraint).unwrap();
                    let mut accepted = 0u64;
                    for action in word {
                        if let Some(r) = m.ask(1, action).unwrap() {
                            m.confirm(r).unwrap();
                            accepted += 1;
                        }
                    }
                    accepted
                })
            },
        );
        // Subscriptions add notification work per transition.
        group.bench_with_input(
            BenchmarkId::new("combined_with_subscriptions", patients),
            &schedule,
            |b, word| {
                b.iter(|| {
                    let m =
                        InteractionManager::with_protocol(&constraint, ProtocolVariant::Combined)
                            .unwrap();
                    for (i, action) in word.iter().enumerate().take(patients) {
                        m.subscribe(i as u64, action);
                    }
                    let mut accepted = 0u64;
                    for action in word {
                        if m.try_execute(1, action).unwrap().is_some() {
                            accepted += 1;
                        }
                    }
                    accepted
                })
            },
        );
    }
    group.finish();
}

/// Drives one examination workflow instance per patient through the adapted
/// worklist-handler architecture.
fn run_adapted_worklists(patients: usize) -> u64 {
    let constraint = ix_wfms::ensemble_constraint();
    let mut engine = WorkflowEngine::new();
    let port = ManagerPort::new(&constraint, 1).unwrap();
    let shared = port.handle();
    let mut sono = AdaptedWorklistHandler::new("sono_assistant", port);
    let mut sono_doc =
        AdaptedWorklistHandler::new("sono_physician", ManagerPort::shared(shared.clone(), 2));
    let mut ids = Vec::new();
    for p in 1..=patients as i64 {
        ids.push(engine.start_instance(
            &ix_wfms::ultrasonography(),
            CaseData { patient: p, examination: "sono".into() },
        ));
    }
    // Drain every instance activity by activity (sequential workflows).
    let mut done = false;
    while !done {
        done = true;
        for handler_role in ["physician", "clerk", "nurse", "sono_assistant", "sono_physician"] {
            let items: Vec<_> = engine.worklist(handler_role).to_vec();
            for item in items {
                done = false;
                let handler =
                    if handler_role == "sono_physician" { &mut sono_doc } else { &mut sono };
                if handler.start(&mut engine, item.instance, item.activity).is_ok() {
                    handler.complete(&mut engine, item.instance, item.activity).unwrap();
                }
            }
        }
        if engine.all_finished() {
            done = true;
        }
    }
    sono.messages() + sono_doc.messages()
}

/// Drives the same ensemble through the adapted-engine architecture.
fn run_adapted_engine(patients: usize) -> u64 {
    let constraint = ix_wfms::ensemble_constraint();
    let mut engine = AdaptedEngine::new(ManagerPort::new(&constraint, 1).unwrap());
    let mut ids = Vec::new();
    for p in 1..=patients as i64 {
        ids.push(engine.start_instance(
            &ix_wfms::ultrasonography(),
            CaseData { patient: p, examination: "sono".into() },
        ));
    }
    let mut progress = true;
    while progress && !engine.all_finished() {
        progress = false;
        let items = engine.engine().all_worklist_items();
        for item in items {
            if engine.start_activity(item.instance, item.activity).is_ok() {
                engine.complete_activity(item.instance, item.activity).unwrap();
                progress = true;
            }
        }
    }
    engine.messages()
}

fn adaptation_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptation_overhead");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for patients in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("adapted_worklist_handlers", patients),
            &patients,
            |b, &p| b.iter(|| run_adapted_worklists(p)),
        );
        group.bench_with_input(BenchmarkId::new("adapted_engine", patients), &patients, |b, &p| {
            b.iter(|| run_adapted_engine(p))
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    manager_throughput(c);
    adaptation_overhead(c);
}

criterion_group!(coordination, benches);
criterion_main!(coordination);

//! Ergonomic construction helpers.
//!
//! The builder functions make example code and tests read close to the
//! paper's notation: `seq_all`, `or_all`, `par_all` fold a list with the
//! corresponding binary operator, `act`/`actv`/`actp` build atoms, and
//! [`mutex`] is the user-defined "flash" operator of Fig. 5 (a sequential
//! iteration of an either-or of its branches).

use crate::action::Action;
use crate::expr::Expr;
use crate::value::{Param, Term, Value};

/// An atomic expression with explicit terms.
pub fn act(name: &str, args: impl IntoIterator<Item = Term>) -> Expr {
    Expr::atom(Action::new(name, args))
}

/// An atomic expression without arguments.
pub fn act0(name: &str) -> Expr {
    Expr::atom(Action::nullary(name))
}

/// An atomic expression with concrete values only.
pub fn actv(name: &str, args: impl IntoIterator<Item = Value>) -> Expr {
    Expr::atom(Action::concrete(name, args))
}

/// An atomic expression whose arguments are all parameters, given by name.
pub fn actp(name: &str, params: &[&str]) -> Expr {
    Expr::atom(Action::new(name, params.iter().map(|p| Term::Param(Param::new(p)))))
}

/// A parameter term, for mixing parameters and values in [`act`].
pub fn pt(name: &str) -> Term {
    Term::Param(Param::new(name))
}

/// A symbolic value term.
pub fn vt(name: &str) -> Term {
    Term::Value(Value::sym(name))
}

/// An integer value term.
pub fn it(i: i64) -> Term {
    Term::Value(Value::Int(i))
}

/// Folds a list of expressions with sequential composition.  The empty list
/// yields ε.
pub fn seq_all(exprs: impl IntoIterator<Item = Expr>) -> Expr {
    fold(exprs, Expr::seq)
}

/// Folds a list of expressions with parallel composition.  The empty list
/// yields ε.
pub fn par_all(exprs: impl IntoIterator<Item = Expr>) -> Expr {
    fold(exprs, Expr::par)
}

/// Folds a list of expressions with disjunction.  The empty list yields ε.
pub fn or_all(exprs: impl IntoIterator<Item = Expr>) -> Expr {
    fold(exprs, Expr::or)
}

/// Folds a list of expressions with conjunction.  The empty list yields ε.
pub fn and_all(exprs: impl IntoIterator<Item = Expr>) -> Expr {
    fold(exprs, Expr::and)
}

/// Folds a list of expressions with the synchronization (coupling) operator.
/// The empty list yields ε.
pub fn sync_all(exprs: impl IntoIterator<Item = Expr>) -> Expr {
    fold(exprs, Expr::sync)
}

fn fold(exprs: impl IntoIterator<Item = Expr>, op: fn(Expr, Expr) -> Expr) -> Expr {
    let mut it = exprs.into_iter();
    let first = match it.next() {
        Some(e) => e,
        None => return Expr::empty(),
    };
    it.fold(first, op)
}

/// The user-defined mutual-exclusion ("flash") operator of Fig. 5: a
/// sequential iteration of an either-or branching over the given branches.
/// At any time at most one branch is in progress; after it completes another
/// (possibly the same) branch may be entered.
pub fn mutex(branches: impl IntoIterator<Item = Expr>) -> Expr {
    Expr::seq_iter(or_all(branches))
}

/// A workflow activity mapped to its start/termination action pair
/// (footnote 6): `activity(args) = activity_start(args) − activity_end(args)`.
pub fn activity(name: &str, args: impl IntoIterator<Item = Term> + Clone) -> Expr {
    Expr::seq(act(&format!("{name}_start"), args.clone()), act(&format!("{name}_end"), args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ExprKind;

    #[test]
    fn folds_build_left_nested_trees() {
        let e = seq_all([act0("a"), act0("b"), act0("c")]);
        match e.kind() {
            ExprKind::Seq(l, r) => {
                assert!(matches!(l.kind(), ExprKind::Seq(..)));
                assert!(matches!(r.kind(), ExprKind::Atom(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn empty_folds_yield_epsilon() {
        assert_eq!(seq_all([]), Expr::empty());
        assert_eq!(or_all([]), Expr::empty());
        assert_eq!(par_all([]), Expr::empty());
        assert_eq!(and_all([]), Expr::empty());
        assert_eq!(sync_all([]), Expr::empty());
    }

    #[test]
    fn singleton_folds_are_identity() {
        let a = act0("a");
        assert_eq!(seq_all([a.clone()]), a);
        assert_eq!(or_all([a.clone()]), a);
    }

    #[test]
    fn mutex_is_iterated_disjunction() {
        let e = mutex([act0("x"), act0("y"), act0("z")]);
        match e.kind() {
            ExprKind::SeqIter(body) => {
                assert!(matches!(body.kind(), ExprKind::Or(..)));
                assert_eq!(body.atoms().len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn activity_expands_to_start_end_sequence() {
        let e = activity("perform", [pt("p"), vt("sono")]);
        match e.kind() {
            ExprKind::Seq(s, t) => {
                assert_eq!(s.atoms()[0].name().to_string(), "perform_start");
                assert_eq!(t.atoms()[0].name().to_string(), "perform_end");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn term_helpers() {
        assert_eq!(pt("p"), Term::Param(Param::new("p")));
        assert_eq!(vt("sono"), Term::Value(Value::sym("sono")));
        assert_eq!(it(4), Term::Value(Value::Int(4)));
        let e = act("call", [pt("p"), vt("sono"), it(2)]);
        assert_eq!(e.atoms()[0].arity(), 3);
    }
}

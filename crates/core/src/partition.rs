//! Alphabet-connectivity analysis: the partition of an expression into
//! fine-grained *sync-components* plus the action-ownership map.
//!
//! The synchronization operator y ⊗ z lets each operand constrain only the
//! actions of its own alphabet (Sec. 5, Fig. 7).  An action covered by both
//! operand alphabets must be accepted by *both* operands and advances both of
//! their states atomically; an action covered by one operand concerns only
//! that operand; an action covered by neither is outside the language.  The
//! same holds for a parallel composition y ‖ z with disjoint alphabets,
//! because with no shared action every interleaving constraint degenerates to
//! "each operand sees its own projection" — the coupling and the shuffle
//! coincide.
//!
//! This module computes the maximal flattening: the top-level chain of
//! splittable composition points (every ⊗, and every ‖ whose operand
//! alphabets are disjoint) is broken into its operands, and **every operand
//! becomes its own component** — even when operand alphabets overlap.
//! Overlap is recorded in the [`OwnershipMap`] instead of being merged away:
//! each abstract action maps to the set of components whose alphabets may
//! cover a common concrete instantiation (conservative matching for
//! parameterized actions, see [`Action::may_overlap`]).  An execution engine
//! runs the components as parallel shards and executes a multi-owner action
//! as an atomic step across all of its owners — see
//! `ix_state::ShardedEngine` and the two-phase commit of the sharded
//! interaction manager in `ix-manager`.
//!
//! The previous behaviour — union-finding overlapping operands into one
//! coarse component so that component alphabets are pairwise disjoint — is
//! still available as [`Partition::coalesced`] for consumers that cannot
//! tolerate shared actions.

use crate::action::Action;
use crate::alphabet::Alphabet;
use crate::expr::{Expr, ExprKind};
use std::collections::BTreeMap;

/// The decomposition of an expression into sync-components together with the
/// ownership map of its actions.
///
/// A partition is *versioned*: it can be updated incrementally as a workflow
/// ensemble grows at runtime.  [`Partition::extend`] appends the operands of
/// new constraints as fresh components and [`Partition::recouple`] does the
/// same for constraints that deliberately share actions with existing
/// components; both diff the new [`OwnershipMap`] against the existing one
/// and emit a [`PartitionDelta`] naming exactly the shards to create, the
/// owner sets to widen, and (for coalesced partitions) the components to
/// merge — the input of the sharded engine's and the manager runtime's live
/// migration machinery.
#[derive(Clone, Debug)]
pub struct Partition {
    components: Vec<Component>,
    ownership: OwnershipMap,
    /// Monotone version counter: 0 at construction, +1 per incremental
    /// update.  Routers built from a partition carry this epoch so stale
    /// routing decisions are detectable.
    epoch: u64,
}

/// The diff between a partition and its incremental update — what an
/// execution engine must do to follow the update without rebuilding.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartitionDelta {
    /// Indices (in the *new* partition) of the components the update
    /// created — the shards an engine must spawn.
    pub added: Vec<usize>,
    /// Abstract actions whose owner set involves existing components and
    /// changed, with their full new owner set (sorted ascending).  Empty for
    /// a disjoint addition — the zero-migration pure-append case in which no
    /// existing shard is affected and no state moves.
    pub widened: Vec<(Action, Vec<usize>)>,
    /// Groups of *old* component indices collapsed into one new component
    /// (ascending sources, paired with the new component's index).  Only
    /// coalesced partitions merge; fine-grained updates record overlap in
    /// `widened` instead.
    pub merges: Vec<MergeGroup>,
}

/// One merge of a coalesced update: the old components folded into a new
/// one.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MergeGroup {
    /// Old component indices merged together, ascending.
    pub sources: Vec<usize>,
    /// Index of the merged component in the new partition.
    pub target: usize,
}

impl PartitionDelta {
    /// True if the update touches no existing component: only fresh shards
    /// are created, no owner set widens, nothing merges.  Engines apply such
    /// deltas as a pure shard-append with zero migration.
    pub fn is_pure_append(&self) -> bool {
        self.widened.is_empty() && self.merges.is_empty()
    }

    /// The existing components affected by the update (owners below
    /// `old_len` appearing in a widened owner set or a merge group), sorted
    /// ascending — the shards a live migration must quiesce.
    pub fn affected_existing(&self, old_len: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .widened
            .iter()
            .flat_map(|(_, owners)| owners.iter().copied())
            .filter(|&o| o < old_len)
            .chain(self.merges.iter().flat_map(|m| m.sources.iter().copied()))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// One sync-component: a sub-expression together with its alphabet.
#[derive(Clone, Debug)]
pub struct Component {
    /// The component expression (one operand of the flattened ⊗-chain, or a
    /// ⊗-join of several operands for [`Partition::coalesced`]).
    pub expr: Expr,
    /// The component's alphabet.  Components of [`Partition::of`] may share
    /// actions (the [`OwnershipMap`] records which); components of
    /// [`Partition::coalesced`] have pairwise disjoint alphabets.
    pub alphabet: Alphabet,
}

/// The map from abstract actions to the components owning them.
///
/// An action is *owned* by every component whose alphabet may cover one of
/// its concrete instantiations.  Actions with a single owner can be executed
/// on that component alone; actions with several owners require an atomic
/// step across all of them (the multi-owner routing of the sharded kernel).
/// The map is conservative for parameterized actions: `call(p, x)` and
/// `call(1, sono)` count as overlapping because some instantiation
/// coincides.
#[derive(Clone, Debug, Default)]
pub struct OwnershipMap {
    /// abstract action -> sorted component indices owning it.
    owners: BTreeMap<Action, Vec<usize>>,
}

impl OwnershipMap {
    /// Builds the ownership map for the given component alphabets.
    pub fn of(alphabets: &[Alphabet]) -> OwnershipMap {
        let mut owners: BTreeMap<Action, Vec<usize>> = BTreeMap::new();
        for alphabet in alphabets {
            for action in alphabet.actions() {
                owners.entry(action.clone()).or_insert_with(|| {
                    (0..alphabets.len()).filter(|&j| alphabets[j].overlaps_action(action)).collect()
                });
            }
        }
        OwnershipMap { owners }
    }

    /// The owning components of an abstract action from some component
    /// alphabet (empty for actions outside every alphabet).
    pub fn owners_of_abstract(&self, action: &Action) -> &[usize] {
        self.owners.get(action).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The abstract actions owned by more than one component, with their
    /// owner sets — the "interaction channels" between shards.
    pub fn shared(&self) -> impl Iterator<Item = (&Action, &[usize])> {
        self.owners.iter().filter(|(_, o)| o.len() > 1).map(|(a, o)| (a, o.as_slice()))
    }

    /// Number of abstract actions owned by more than one component.
    pub fn shared_count(&self) -> usize {
        self.shared().count()
    }

    /// True if every action has exactly one owner (the perfectly disjoint
    /// regime in which no cross-shard coordination is ever needed).
    pub fn is_exclusive(&self) -> bool {
        self.owners.values().all(|o| o.len() == 1)
    }

    /// All (abstract action, owner set) entries.
    pub fn entries(&self) -> impl Iterator<Item = (&Action, &[usize])> {
        self.owners.iter().map(|(a, o)| (a, o.as_slice()))
    }
}

impl Partition {
    /// Computes the fine-grained partition of `expr`: every operand of the
    /// maximal splittable top-level chain becomes a component, and
    /// overlapping alphabets are recorded in the ownership map instead of
    /// forcing a merge.
    ///
    /// The result always has at least one component; an expression that does
    /// not decompose yields the trivial partition `[expr]`.
    pub fn of(expr: &Expr) -> Partition {
        let mut operands = Vec::new();
        flatten(expr, &mut operands);
        let components: Vec<Component> =
            operands.into_iter().map(|e| Component { alphabet: e.alphabet(), expr: e }).collect();
        let alphabets: Vec<Alphabet> = components.iter().map(|c| c.alphabet.clone()).collect();
        Partition { components, ownership: OwnershipMap::of(&alphabets), epoch: 0 }
    }

    /// Computes the coarse partition with pairwise disjoint component
    /// alphabets: operands whose alphabets may cover a common concrete
    /// action are merged with a union–find and re-joined with ⊗ (sound
    /// because ⊗ is associative and commutative and the flattened chain is
    /// semantically a single large ⊗).  Every action then has exactly one
    /// owner, at the price of one shared action collapsing otherwise
    /// independent operands into a single component.
    pub fn coalesced(expr: &Expr) -> Partition {
        let mut operands = Vec::new();
        flatten(expr, &mut operands);
        let alphabets: Vec<Alphabet> = operands.iter().map(|e| e.alphabet()).collect();

        let mut parent: Vec<usize> = (0..operands.len()).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
            }
            parent[i]
        }
        for i in 0..operands.len() {
            for j in i + 1..operands.len() {
                if !alphabets[i].is_disjoint(&alphabets[j]) {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[rj] = ri;
                    }
                }
            }
        }

        // Group operands by root, preserving the original operand order both
        // across and within groups.
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for i in 0..operands.len() {
            let root = find(&mut parent, i);
            match groups.iter_mut().find(|(r, _)| *r == root) {
                Some((_, members)) => members.push(i),
                None => groups.push((root, vec![i])),
            }
        }

        let components: Vec<Component> = groups
            .into_iter()
            .map(|(_, members)| {
                let expr = members
                    .iter()
                    .map(|&i| operands[i].clone())
                    .reduce(Expr::sync)
                    .expect("every group has at least one operand");
                let alphabet =
                    members.iter().fold(Alphabet::new(), |acc, &i| acc.union(&alphabets[i]));
                Component { expr, alphabet }
            })
            .collect();
        let alphabets: Vec<Alphabet> = components.iter().map(|c| c.alphabet.clone()).collect();
        Partition { components, ownership: OwnershipMap::of(&alphabets), epoch: 0 }
    }

    /// Reassembles a partition from serialized components and a stored
    /// epoch — the deserialization counterpart of [`Partition::components`]
    /// / [`Partition::epoch`].  The ownership map is recomputed from the
    /// component alphabets (it is derived data and is not persisted).
    pub fn from_components(components: Vec<Component>, epoch: u64) -> Partition {
        let alphabets: Vec<Alphabet> = components.iter().map(|c| c.alphabet.clone()).collect();
        Partition { components, ownership: OwnershipMap::of(&alphabets), epoch }
    }

    /// The partition's version: 0 at construction, incremented by every
    /// incremental update ([`Partition::extend`], [`Partition::recouple`],
    /// [`Partition::extend_coalesced`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Extends the partition with the operands of additional constraints:
    /// each `new_operands` entry is flattened along its own splittable
    /// top-level chain and every resulting operand becomes a **new**
    /// component — existing components and their states are never touched,
    /// because ⊗ is associative and commutative and the extended ensemble is
    /// semantically `old ⊗ new₁ ⊗ … ⊗ newₙ`.
    ///
    /// Overlap between new and existing alphabets is recorded in the
    /// rebuilt [`OwnershipMap`]; the returned [`PartitionDelta`] diffs the
    /// new map against the old one.  A disjoint addition yields a
    /// pure-append delta (no widened owner sets); a coupling constraint
    /// widens exactly the owner sets of the actions it shares.
    pub fn extend(&self, new_operands: &[Expr]) -> (Partition, PartitionDelta) {
        let mut components = self.components.clone();
        let old_len = components.len();
        for operand in new_operands {
            let mut flat = Vec::new();
            flatten(operand, &mut flat);
            components
                .extend(flat.into_iter().map(|e| Component { alphabet: e.alphabet(), expr: e }));
        }
        let alphabets: Vec<Alphabet> = components.iter().map(|c| c.alphabet.clone()).collect();
        let ownership = OwnershipMap::of(&alphabets);
        let widened = ownership
            .entries()
            .filter(|(action, owners)| {
                owners.iter().any(|&o| o < old_len)
                    && *owners != self.ownership.owners_of_abstract(action)
            })
            .map(|(action, owners)| (action.clone(), owners.to_vec()))
            .collect();
        let delta = PartitionDelta {
            added: (old_len..components.len()).collect(),
            widened,
            merges: Vec::new(),
        };
        (Partition { components, ownership, epoch: self.epoch + 1 }, delta)
    }

    /// Extends the partition with one *coupling* constraint — a new operand
    /// whose alphabet deliberately intersects existing components (a shared
    /// audit step, a new inter-workflow ordering rule).  Identical to
    /// [`Partition::extend`] except that the returned delta is guaranteed to
    /// widen at least one owner set; passing a fully disjoint constraint is
    /// almost certainly a mistake (use `extend`), so the widened list being
    /// empty is reported as `None`.
    pub fn recouple(&self, coupling: &Expr) -> Option<(Partition, PartitionDelta)> {
        let (partition, delta) = self.extend(std::slice::from_ref(coupling));
        if delta.widened.is_empty() {
            return None;
        }
        Some((partition, delta))
    }

    /// Extends a **coalesced** partition (pairwise disjoint component
    /// alphabets, see [`Partition::coalesced`]) while preserving
    /// disjointness: new operands overlapping existing components force a
    /// union–find merge, re-joining the group members with ⊗.  The delta's
    /// [`PartitionDelta::merges`] names every group of old components that
    /// collapsed — the coarse-partition analogue of an owner-set widening,
    /// and the case in which a migration genuinely has to move and combine
    /// shard states.
    pub fn extend_coalesced(&self, new_operands: &[Expr]) -> (Partition, PartitionDelta) {
        let old_len = self.components.len();
        let mut operands: Vec<Expr> = self.components.iter().map(|c| c.expr.clone()).collect();
        let mut alphabets: Vec<Alphabet> =
            self.components.iter().map(|c| c.alphabet.clone()).collect();
        for operand in new_operands {
            let mut flat = Vec::new();
            flatten(operand, &mut flat);
            for e in flat {
                alphabets.push(e.alphabet());
                operands.push(e);
            }
        }

        let mut parent: Vec<usize> = (0..operands.len()).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
            }
            parent[i]
        }
        for i in 0..operands.len() {
            for j in i + 1..operands.len() {
                if !alphabets[i].is_disjoint(&alphabets[j]) {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[rj] = ri;
                    }
                }
            }
        }
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for i in 0..operands.len() {
            let root = find(&mut parent, i);
            match groups.iter_mut().find(|(r, _)| *r == root) {
                Some((_, members)) => members.push(i),
                None => groups.push((root, vec![i])),
            }
        }

        let mut added = Vec::new();
        let mut merges = Vec::new();
        let components: Vec<Component> = groups
            .iter()
            .enumerate()
            .map(|(target, (_, members))| {
                let old_members: Vec<usize> =
                    members.iter().copied().filter(|&i| i < old_len).collect();
                if old_members.is_empty() {
                    added.push(target);
                } else if old_members.len() > 1 || members.len() > old_members.len() {
                    merges.push(MergeGroup { sources: old_members, target });
                }
                let expr = members
                    .iter()
                    .map(|&i| operands[i].clone())
                    .reduce(Expr::sync)
                    .expect("every group has at least one operand");
                let alphabet =
                    members.iter().fold(Alphabet::new(), |acc, &i| acc.union(&alphabets[i]));
                Component { expr, alphabet }
            })
            .collect();
        let alphabets: Vec<Alphabet> = components.iter().map(|c| c.alphabet.clone()).collect();
        let delta = PartitionDelta { added, widened: Vec::new(), merges };
        (
            Partition {
                components,
                ownership: OwnershipMap::of(&alphabets),
                epoch: self.epoch + 1,
            },
            delta,
        )
    }

    /// Re-joins the component expressions with ⊗ — the monolithic
    /// expression the partition currently represents (semantically equal to
    /// the original expression extended by every update applied so far).
    pub fn joined_expr(&self) -> Expr {
        self.components
            .iter()
            .map(|c| c.expr.clone())
            .reduce(Expr::sync)
            .unwrap_or_else(Expr::empty)
    }

    /// The components, in the order their operand appears in the original
    /// expression.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// The ownership map: which components own which abstract actions.
    pub fn ownership(&self) -> &OwnershipMap {
        &self.ownership
    }

    /// The components owning a concrete action (sorted ascending; empty for
    /// actions outside every component alphabet).
    pub fn owners_of(&self, concrete: &Action) -> Vec<usize> {
        (0..self.components.len())
            .filter(|&i| self.components[i].alphabet.covers(concrete))
            .collect()
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if the partition has no components.  Never true for partitions
    /// built by [`Partition::of`], which always yields at least one.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// True if the expression decomposed into more than one component.
    pub fn is_sharded(&self) -> bool {
        self.components.len() > 1
    }

    /// The component expressions.
    pub fn exprs(&self) -> impl Iterator<Item = &Expr> {
        self.components.iter().map(|c| &c.expr)
    }
}

/// Flattens the maximal top-level chain of splittable composition points.
///
/// * `Sync(l, r)` is always a composition point (⊗ is associative and
///   commutative, so regrouping its operands is sound whether or not their
///   alphabets overlap — shared actions become multi-owner entries of the
///   ownership map).
/// * `Par(l, r)` is a composition point only when the operand alphabets are
///   disjoint — then ‖ coincides with ⊗ and joins the chain; otherwise the
///   shuffle constraint is real and the node is an indivisible operand.
///
/// Everything else (quantifiers, sequences, iterations, conjunctions …)
/// constrains the relative order of its sub-alphabets and must stay whole.
fn flatten(expr: &Expr, out: &mut Vec<Expr>) {
    match expr.kind() {
        ExprKind::Sync(l, r) => {
            flatten(l, out);
            flatten(r, out);
        }
        ExprKind::Par(l, r) if l.alphabet().is_disjoint(&r.alphabet()) => {
            flatten(l, out);
            flatten(r, out);
        }
        _ => out.push(expr.clone()),
    }
}

/// Convenience wrapper: the component expressions of [`Partition::of`].
pub fn sync_components(expr: &Expr) -> Vec<Expr> {
    Partition::of(expr).exprs().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn components(src: &str) -> Vec<String> {
        sync_components(&parse(src).unwrap()).iter().map(|e| e.to_string()).collect()
    }

    #[test]
    fn atomic_expressions_are_one_component() {
        assert_eq!(components("a - b").len(), 1);
        assert_eq!(components("(a + b)*").len(), 1);
    }

    #[test]
    fn disjoint_sync_operands_split() {
        let c = components("(a - b)* @ (c - d)*");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn nested_sync_chains_flatten_completely() {
        let c = components("((a - b)* @ (c - d)*) @ (e - f)*");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn overlapping_sync_operands_stay_separate_with_shared_owners() {
        // b occurs on both sides: two components, b owned by both.
        let p = Partition::of(&parse("(a - b)* @ (b - c)*").unwrap());
        assert_eq!(p.len(), 2);
        assert_eq!(p.owners_of(&Action::nullary("b")), vec![0, 1]);
        assert_eq!(p.owners_of(&Action::nullary("a")), vec![0]);
        assert_eq!(p.owners_of(&Action::nullary("c")), vec![1]);
        assert_eq!(p.ownership().shared_count(), 1);
        assert!(!p.ownership().is_exclusive());
        // Chain of three where the middle overlaps both ends: three
        // components, each boundary action with two owners.
        let p = Partition::of(&parse("(a - b)* @ (b - c)* @ (c - d)*").unwrap());
        assert_eq!(p.len(), 3);
        assert_eq!(p.owners_of(&Action::nullary("b")), vec![0, 1]);
        assert_eq!(p.owners_of(&Action::nullary("c")), vec![1, 2]);
        assert_eq!(p.ownership().shared_count(), 2);
    }

    #[test]
    fn coalesced_partition_merges_overlapping_operands() {
        // The pre-multi-owner behaviour: overlap forces a merge.
        let p = Partition::coalesced(&parse("(a - b)* @ (b - c)*").unwrap());
        assert_eq!(p.len(), 1);
        assert!(p.ownership().is_exclusive());
        // a-b and b-c overlap; x-y is independent.
        let p = Partition::coalesced(&parse("(a - b)* @ (x - y)* @ (b - c)*").unwrap());
        assert_eq!(p.len(), 2);
        assert!(p.is_sharded());
        let merged = p
            .components()
            .iter()
            .find(|c| c.alphabet.contains_abstract(&Action::nullary("a")))
            .unwrap();
        assert!(merged.alphabet.contains_abstract(&Action::nullary("c")));
        assert!(!merged.alphabet.contains_abstract(&Action::nullary("x")));
        // Coalesced components have pairwise disjoint alphabets.
        for (i, ci) in p.components().iter().enumerate() {
            for cj in p.components().iter().skip(i + 1) {
                assert!(ci.alphabet.is_disjoint(&cj.alphabet));
            }
        }
    }

    #[test]
    fn one_coupled_action_no_longer_collapses_the_ensemble() {
        // Four otherwise-independent groups share a global `audit` action.
        // The coalesced partition collapses to one component; the
        // fine-grained partition keeps all four and reports `audit` as the
        // single interaction channel.
        let src = "((a1 - b1)* - audit)* @ ((a2 - b2)* - audit)* \
                   @ ((a3 - b3)* - audit)* @ ((a4 - b4)* - audit)*";
        let expr = parse(src).unwrap();
        assert_eq!(Partition::coalesced(&expr).len(), 1);
        let p = Partition::of(&expr);
        assert_eq!(p.len(), 4);
        assert_eq!(p.owners_of(&Action::nullary("audit")), vec![0, 1, 2, 3]);
        assert_eq!(p.owners_of(&Action::nullary("a3")), vec![2]);
        let shared: Vec<_> = p.ownership().shared().collect();
        assert_eq!(shared.len(), 1);
        assert_eq!(shared[0].0, &Action::nullary("audit"));
    }

    #[test]
    fn disjoint_parallel_composition_splits() {
        assert_eq!(components("(a - b)* | (c - d)*").len(), 2);
        // Overlapping parallel composition is a real shuffle constraint.
        assert_eq!(components("(a - b)* | (b - c)*").len(), 1);
    }

    #[test]
    fn mixed_sync_and_parallel_chains_split() {
        assert_eq!(components("((a - b)* | (c - d)*) @ (e - f)*").len(), 3);
    }

    #[test]
    fn parameterized_alphabets_use_conservative_overlap() {
        // call(p, x) may instantiate to call(1, sono): conservative
        // multi-owner entry instead of a merge.
        let p =
            Partition::of(&parse("(some p { call(p, sono) })* @ (call(1, sono) - done)*").unwrap());
        assert_eq!(p.len(), 2);
        let concrete = Action::concrete(
            "call",
            [crate::value::Value::int(1), crate::value::Value::sym("sono")],
        );
        assert_eq!(p.owners_of(&concrete), vec![0, 1]);
        let other = Action::concrete(
            "call",
            [crate::value::Value::int(2), crate::value::Value::sym("sono")],
        );
        assert_eq!(p.owners_of(&other), vec![0], "call(2, sono) only matches call(p, sono)");
        // Distinct action names never overlap.
        let p = Partition::of(&parse("(some p { call(p) })* @ (some p { perform(p) })*").unwrap());
        assert_eq!(p.len(), 2);
        assert!(p.ownership().is_exclusive());
    }

    #[test]
    fn quantifiers_and_conjunctions_stay_whole() {
        assert_eq!(components("sync p { (e(p) - f(p))* }").len(), 1);
        assert_eq!(components("(a - b) & (c - d)").len(), 1);
    }

    #[test]
    fn disjoint_component_alphabets_are_pairwise_disjoint() {
        let p = Partition::of(&parse("(a - b)* @ (c - d)* @ (e - f)* @ (g - h)*").unwrap());
        assert_eq!(p.len(), 4);
        assert!(p.ownership().is_exclusive());
        for (i, ci) in p.components().iter().enumerate() {
            for cj in p.components().iter().skip(i + 1) {
                assert!(ci.alphabet.is_disjoint(&cj.alphabet));
            }
        }
    }

    #[test]
    fn ownership_map_entries_cover_every_abstract_action() {
        let p = Partition::of(&parse("(a - b)* @ (b - c)*").unwrap());
        let entries: Vec<_> = p.ownership().entries().collect();
        assert_eq!(entries.len(), 3, "a, b, c");
        assert_eq!(p.ownership().owners_of_abstract(&Action::nullary("b")), &[0, 1]);
        assert!(p.ownership().owners_of_abstract(&Action::nullary("z")).is_empty());
    }

    #[test]
    fn disjoint_extend_is_a_pure_append() {
        let p = Partition::of(&parse("(a - b)* @ (c - d)*").unwrap());
        assert_eq!(p.epoch(), 0);
        let (q, delta) = p.extend(&[parse("(e - f)*").unwrap()]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.epoch(), 1);
        assert_eq!(delta.added, vec![2]);
        assert!(delta.is_pure_append(), "disjoint additions widen nothing");
        assert!(delta.affected_existing(p.len()).is_empty());
        assert_eq!(q.owners_of(&Action::nullary("e")), vec![2]);
        // The extended partition equals the from-scratch partition of the
        // joined expression.
        let scratch = Partition::of(&q.joined_expr());
        assert_eq!(scratch.len(), q.len());
        for (a, owners) in q.ownership().entries() {
            assert_eq!(scratch.ownership().owners_of_abstract(a), owners);
        }
    }

    #[test]
    fn extend_flattens_multi_operand_constraints() {
        let p = Partition::of(&parse("(a - b)*").unwrap());
        let (q, delta) = p.extend(&[parse("(c - d)* @ (e - f)*").unwrap()]);
        assert_eq!(q.len(), 3, "the new constraint's own chain is flattened");
        assert_eq!(delta.added, vec![1, 2]);
        assert!(delta.is_pure_append());
        assert_eq!(q.epoch(), 1);
    }

    #[test]
    fn coupling_extend_widens_exactly_the_shared_owner_sets() {
        let p = Partition::of(&parse("(a - b)* @ (c - d)*").unwrap());
        // The coupling shares `a` with component 0 and nothing else.
        let (q, delta) = p.extend(&[parse("(a* - audit)*").unwrap()]);
        assert_eq!(q.len(), 3);
        assert_eq!(delta.added, vec![2]);
        assert!(!delta.is_pure_append());
        assert_eq!(delta.affected_existing(p.len()), vec![0]);
        let widened: Vec<_> = delta.widened.iter().map(|(a, o)| (a.clone(), o.clone())).collect();
        assert_eq!(widened, vec![(Action::nullary("a"), vec![0, 2])]);
        assert_eq!(q.owners_of(&Action::nullary("a")), vec![0, 2]);
        assert_eq!(q.owners_of(&Action::nullary("audit")), vec![2]);
        assert_eq!(q.owners_of(&Action::nullary("c")), vec![1], "unrelated owners untouched");
    }

    #[test]
    fn recouple_requires_overlap() {
        let p = Partition::of(&parse("(a - b)* @ (c - d)*").unwrap());
        assert!(p.recouple(&parse("(x - y)*").unwrap()).is_none(), "disjoint: use extend");
        let (q, delta) = p.recouple(&parse("((a - b)* - audit)*").unwrap()).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(delta.widened.len(), 2, "a and b both widen");
        assert_eq!(delta.affected_existing(p.len()), vec![0]);
    }

    #[test]
    fn extend_with_parameterized_overlap_is_conservative() {
        let p = Partition::of(&parse("(call(1, sono) - done)*").unwrap());
        let (q, delta) = p.extend(&[parse("(some p { call(p, sono) })*").unwrap()]);
        assert_eq!(q.len(), 2);
        assert!(!delta.is_pure_append(), "call(p, sono) may instantiate to call(1, sono)");
        assert_eq!(delta.affected_existing(p.len()), vec![0]);
        let concrete = Action::concrete(
            "call",
            [crate::value::Value::int(1), crate::value::Value::sym("sono")],
        );
        assert_eq!(q.owners_of(&concrete), vec![0, 1]);
    }

    #[test]
    fn coalesced_extend_reports_merges() {
        let p = Partition::coalesced(&parse("(a - b)* @ (c - d)* @ (e - f)*").unwrap());
        assert_eq!(p.len(), 3);
        // A bridge over a and c collapses components 0 and 1 into one.
        let (q, delta) = p.extend_coalesced(&[parse("(a - c)*").unwrap()]);
        assert_eq!(q.len(), 2);
        assert!(delta.added.is_empty());
        assert_eq!(delta.merges.len(), 1);
        assert_eq!(delta.merges[0].sources, vec![0, 1]);
        assert_eq!(delta.affected_existing(p.len()), vec![0, 1]);
        assert!(q.ownership().is_exclusive(), "coalesced partitions stay exclusive");
        for (i, ci) in q.components().iter().enumerate() {
            for cj in q.components().iter().skip(i + 1) {
                assert!(ci.alphabet.is_disjoint(&cj.alphabet));
            }
        }
        // A disjoint addition stays a pure append even when coalesced.
        let (r, delta) = q.extend_coalesced(&[parse("(x - y)*").unwrap()]);
        assert_eq!(r.len(), 3);
        assert_eq!(delta.added.len(), 1);
        assert!(delta.is_pure_append());
        assert_eq!(r.epoch(), 2);
    }

    #[test]
    fn empty_expression_is_a_trivial_component() {
        let p = Partition::of(&Expr::empty());
        assert_eq!(p.len(), 1);
        assert!(!p.is_sharded());
        assert!(!p.is_empty());
        assert!(p.ownership().is_exclusive());
    }
}

//! Deterministic fault injection for [`Vault`] implementations.
//!
//! The durability layer's crash tests cut the log at clean record
//! boundaries: the runtime stops, the vault handle survives, recovery
//! replays.  Real storage fails messier — writes that an I/O error
//! swallowed, a final record torn mid-frame, an fsync that reported
//! success for data the cache never flushed.  [`FaultVault`] turns those
//! into *scripted, replayable* crash points: it journals every mutation in
//! global order while presenting a perfectly healthy vault to the running
//! system (buffered writes look fine until the machine dies), and
//! [`FaultVault::surviving`] rebuilds the vault a given [`FaultPlan`] would
//! have left on the platter.
//!
//! Because [`Vault::append`] has no error channel — the buffered layer
//! acknowledges and the loss surfaces only at the crash — every fault mode
//! manifests as deterministic silent write loss:
//!
//! * [`FaultMode::ErrorAfter`] — the device dies at operation `at`: every
//!   mutation from that point on (appends, blob saves, truncations) is
//!   lost.  A clean cut, but at an *operation* boundary the checkpoint
//!   protocol did not choose.
//! * [`FaultMode::TornFinal`] — the crash hits mid-frame: operations before
//!   `at` are durable except the final stream append among them, which is
//!   torn (a CRC-framed reader stops before it, so it is simply gone).
//! * [`FaultMode::FsyncLie`] — metadata outlives data: *every* journaled
//!   blob save and truncation applies, but stream appends from operation
//!   `at` on were only ever in the cache.  This is the nastiest mode — a
//!   checkpoint manifest can survive while log records written before it
//!   are gone, exactly the interleaving recovery's roll-forward must
//!   tolerate.

use crate::vault::{MemVault, Vault};
use std::sync::Mutex;

/// Which kind of storage lie a [`FaultPlan`] tells.  See the module docs
/// for the exact surviving set of each mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// Total device failure at the scripted operation.
    ErrorAfter,
    /// Clean crash whose final stream append is torn.
    TornFinal,
    /// Stream appends from the scripted operation on are dropped while
    /// blob saves and truncations still reach the disk.
    FsyncLie,
}

/// A scripted crash point: the global mutation ordinal `at` (counting every
/// append, blob save, and truncation across all streams, from 0) plus the
/// [`FaultMode`] deciding what survives around it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The fault mode.
    pub mode: FaultMode,
    /// The global operation ordinal the fault strikes at (≥ 1, so the very
    /// first mutation — typically the topology blob — always survives).
    pub at: u64,
}

impl FaultPlan {
    /// Derives a deterministic plan from a seed: an xorshift64 draw picks
    /// the mode and a crash ordinal in `[1, max_ops]`.  The same seed and
    /// bound always script the same crash, so a failing drill replays.
    pub fn seeded(seed: u64, max_ops: u64) -> FaultPlan {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mode = match next() % 3 {
            0 => FaultMode::ErrorAfter,
            1 => FaultMode::TornFinal,
            _ => FaultMode::FsyncLie,
        };
        let at = 1 + next() % max_ops.max(1);
        FaultPlan { mode, at }
    }
}

/// One journaled vault mutation (reads are not journaled — they cannot be
/// lost).
enum FaultOp {
    Append { stream: u32, payload: Vec<u8> },
    SaveBlob { name: String, bytes: Vec<u8> },
    Truncate { stream: u32, covered: u64 },
}

/// A [`Vault`] wrapper that records every mutation while behaving like a
/// healthy in-memory vault, so a crash drill can later materialize what
/// any scripted [`FaultPlan`] would have left behind.
#[derive(Default)]
pub struct FaultVault {
    /// The healthy view the running system reads its own writes from.
    live: MemVault,
    /// Every mutation in global order.
    journal: Mutex<Vec<FaultOp>>,
}

impl FaultVault {
    /// An empty fault-journaling vault.
    pub fn new() -> FaultVault {
        FaultVault::default()
    }

    /// Number of mutations journaled so far — the bound to size a
    /// [`FaultPlan`] against.
    pub fn ops(&self) -> u64 {
        self.journal.lock().unwrap_or_else(|e| e.into_inner()).len() as u64
    }

    /// Rebuilds the vault `plan` would have left on stable storage: the
    /// journal replayed with the scripted loss applied.  The live view is
    /// untouched, so one recorded workload can be drilled at many crash
    /// points.
    pub fn surviving(&self, plan: &FaultPlan) -> MemVault {
        let journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        let at = plan.at as usize;
        let disk = MemVault::new();
        match plan.mode {
            FaultMode::ErrorAfter => {
                for op in journal.iter().take(at) {
                    apply(&disk, op);
                }
            }
            FaultMode::TornFinal => {
                let torn =
                    journal.iter().take(at).rposition(|op| matches!(op, FaultOp::Append { .. }));
                for (i, op) in journal.iter().take(at).enumerate() {
                    if Some(i) != torn {
                        apply(&disk, op);
                    }
                }
            }
            FaultMode::FsyncLie => {
                for (i, op) in journal.iter().enumerate() {
                    if i >= at && matches!(op, FaultOp::Append { .. }) {
                        continue;
                    }
                    apply(&disk, op);
                }
            }
        }
        disk
    }
}

fn apply(disk: &MemVault, op: &FaultOp) {
    match op {
        FaultOp::Append { stream, payload } => {
            disk.append(*stream, payload);
        }
        FaultOp::SaveBlob { name, bytes } => disk.save_blob(name, bytes),
        FaultOp::Truncate { stream, covered } => disk.truncate(*stream, *covered),
    }
}

impl std::fmt::Debug for FaultVault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultVault").field("ops", &self.ops()).field("live", &self.live).finish()
    }
}

impl Vault for FaultVault {
    fn append(&self, stream: u32, payload: &[u8]) -> u64 {
        self.journal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(FaultOp::Append { stream, payload: payload.to_vec() });
        self.live.append(stream, payload)
    }

    fn stream_len(&self, stream: u32) -> u64 {
        self.live.stream_len(stream)
    }

    fn read_from(&self, stream: u32, from: u64) -> Vec<(u64, Vec<u8>)> {
        self.live.read_from(stream, from)
    }

    fn truncate(&self, stream: u32, covered: u64) {
        self.journal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(FaultOp::Truncate { stream, covered });
        self.live.truncate(stream, covered)
    }

    fn save_blob(&self, name: &str, bytes: &[u8]) {
        self.journal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(FaultOp::SaveBlob { name: name.to_string(), bytes: bytes.to_vec() });
        self.live.save_blob(name, bytes)
    }

    fn load_blob(&self, name: &str) -> Option<Vec<u8>> {
        self.live.load_blob(name)
    }

    fn streams(&self) -> Vec<u32> {
        self.live.streams()
    }

    fn sync(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_view_is_healthy() {
        let v = FaultVault::new();
        v.save_blob("topo", b"t");
        assert_eq!(v.append(0, b"a"), 0);
        assert_eq!(v.append(0, b"b"), 1);
        assert_eq!(v.stream_len(0), 2);
        assert_eq!(v.read_from(0, 0).len(), 2);
        assert_eq!(v.load_blob("topo"), Some(b"t".to_vec()));
        assert_eq!(v.ops(), 3);
    }

    #[test]
    fn error_after_drops_everything_from_the_cut() {
        let v = FaultVault::new();
        v.save_blob("topo", b"t"); // op 0
        v.append(0, b"a"); // op 1
        v.append(0, b"b"); // op 2
        v.save_blob("cp", b"c"); // op 3
        let disk = v.surviving(&FaultPlan { mode: FaultMode::ErrorAfter, at: 2 });
        assert_eq!(disk.read_from(0, 0), vec![(0, b"a".to_vec())]);
        assert_eq!(disk.load_blob("cp"), None);
        assert_eq!(disk.load_blob("topo"), Some(b"t".to_vec()));
    }

    #[test]
    fn torn_final_loses_only_the_last_surviving_append() {
        let v = FaultVault::new();
        v.save_blob("topo", b"t"); // op 0
        v.append(0, b"a"); // op 1
        v.append(1, b"b"); // op 2
        v.save_blob("cp", b"c"); // op 3 (inside the cut: survives)
        v.append(0, b"late"); // op 4 (outside the cut)
        let disk = v.surviving(&FaultPlan { mode: FaultMode::TornFinal, at: 4 });
        // The torn record is op 2 (last append before the cut): stream 1
        // is empty, stream 0 keeps "a", the blob save inside the cut holds.
        assert_eq!(disk.read_from(0, 0), vec![(0, b"a".to_vec())]);
        assert!(disk.read_from(1, 0).is_empty());
        assert_eq!(disk.load_blob("cp"), Some(b"c".to_vec()));
    }

    #[test]
    fn fsync_lie_keeps_metadata_but_drops_late_appends() {
        let v = FaultVault::new();
        v.append(0, b"a"); // op 0
        v.append(0, b"b"); // op 1 (lied about)
        v.save_blob("cp", b"c"); // op 2 (still durable)
        v.truncate(0, 1); // op 3 (still durable)
        let disk = v.surviving(&FaultPlan { mode: FaultMode::FsyncLie, at: 1 });
        assert!(disk.read_from(0, 0).is_empty(), "append 0 truncated, append 1 lied about");
        assert_eq!(disk.stream_len(0), 1, "indices stay stable across the truncation");
        assert_eq!(disk.load_blob("cp"), Some(b"c".to_vec()));
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed, 100);
            let b = FaultPlan::seeded(seed, 100);
            assert_eq!(a, b);
            assert!(a.at >= 1 && a.at <= 100);
        }
        // All three modes appear across a small seed range.
        let modes: std::collections::BTreeSet<u64> =
            (0..64).map(|s| FaultPlan::seeded(s, 100).mode as u64).collect();
        assert_eq!(modes.len(), 3);
    }
}

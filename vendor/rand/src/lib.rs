//! In-tree stand-in for the `rand` crate.
//!
//! Deterministic, seedable pseudo-randomness for the workloads and
//! simulations of this workspace.  The generator is SplitMix64, which is
//! plenty for reproducible test schedules (this is NOT the real rand crate
//! and makes no statistical or security claims beyond that).

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of pseudo-random 64-bit values.
pub trait RngCore {
    /// The next pseudo-random value.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 random mantissa bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    /// Samples a value in `range` (which must be non-empty).
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u64;
                // Modulo bias is negligible for the small spans used here.
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(usize, u64, u32, u16, u8);

impl SampleUniform for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl SampleUniform for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
        (range.start as i64).wrapping_add((rng.next_u64() % span) as i64) as i32
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_generators_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_picks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

//! Construction of initial states — the function σ of the state model.
//!
//! [`init`] validates the expression (closed, no template holes, parallel
//! quantifier bodies completely quantified, multipliers positive) and builds
//! its initial state.  [`initial_state`] is the unchecked recursive
//! constructor.
//!
//! σ is computed **once**: every spawning point of the expression — the
//! right operand of a sequence, iteration and multiplier bodies, quantifier
//! templates — stores its precomputed initial state (and, for ⊗ and the
//! quantifiers, its precomputed scoped alphabet) inside the state itself.
//! The transition function spawns fresh sub-runs by sharing these templates
//! instead of re-deriving them from expressions, so alphabets and initial
//! states are never recomputed on the τ hot path.

use crate::error::{StateError, StateResult};
use crate::predicates::is_final;
use crate::state::{QuantState, ScopedAlphabet, Shared, State};
use ix_core::{Expr, ExprKind, Param};
use std::collections::BTreeMap;

/// Builds the initial state σ(x) of a closed interaction expression.
pub fn init(expr: &Expr) -> StateResult<State> {
    validate(expr)?;
    Ok(initial_state(expr))
}

/// Validates that the expression can be executed by the state model.
pub fn validate(expr: &Expr) -> StateResult<()> {
    let mut hole: Option<String> = None;
    expr.visit(&mut |e| {
        if let ExprKind::Hole(name) = e.kind() {
            if hole.is_none() {
                hole = Some(name.to_string());
            }
        }
    });
    if let Some(name) = hole {
        return Err(StateError::TemplateHole { name });
    }
    let free = expr.free_params();
    if !free.is_empty() {
        return Err(StateError::FreeParameters { params: free.into_iter().collect() });
    }
    let mut err: Option<StateError> = None;
    expr.visit(&mut |e| {
        if err.is_some() {
            return;
        }
        match e.kind() {
            ExprKind::Mult(0, _) => err = Some(StateError::ZeroMultiplier),
            ExprKind::ParQ(p, body) => {
                if let Some(atom) = find_atom_not_mentioning(body, *p) {
                    err = Some(StateError::NotCompletelyQuantified {
                        param: *p,
                        offending_atom: atom,
                    });
                }
            }
            _ => {}
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Returns the display form of an atom of `body` that does not mention `p`,
/// if any — i.e. a witness that the body is not completely quantified.
fn find_atom_not_mentioning(body: &Expr, p: Param) -> Option<String> {
    let mut found = None;
    let mut shadowed_depth = 0usize;
    // A manual walk is needed to respect shadowing: below a quantifier that
    // rebinds the same parameter name, occurrences of the name refer to the
    // inner binding, so such atoms never mention the *outer* parameter.
    fn go(e: &Expr, p: Param, shadowed: &mut usize, found: &mut Option<String>) {
        if found.is_some() {
            return;
        }
        match e.kind() {
            ExprKind::Atom(a) => {
                if *shadowed > 0 || !a.mentions_param(p) {
                    *found = Some(a.to_string());
                }
            }
            ExprKind::SomeQ(q, body)
            | ExprKind::ParQ(q, body)
            | ExprKind::SyncQ(q, body)
            | ExprKind::AllQ(q, body) => {
                if *q == p {
                    *shadowed += 1;
                    go(body, p, shadowed, found);
                    *shadowed -= 1;
                } else {
                    go(body, p, shadowed, found);
                }
            }
            _ => {
                for c in e.children() {
                    go(c, p, shadowed, found);
                }
            }
        }
    }
    go(body, p, &mut shadowed_depth, &mut found);
    found
}

/// The recursive, unchecked σ constructor.
pub fn initial_state(expr: &Expr) -> State {
    match expr.kind() {
        // A hole should have been rejected by `validate`; treat it as an
        // expression without any words if it slips through.
        ExprKind::Hole(_) => State::Null,
        ExprKind::Empty => State::Epsilon,
        ExprKind::Atom(a) => State::AtomFresh { action: a.clone() },
        ExprKind::Option(y) => {
            State::Option { at_start: true, body: Shared::new(initial_state(y)) }
        }
        ExprKind::Seq(y, z) => {
            let left = initial_state(y);
            let right_init = Shared::new(initial_state(z));
            let mut rights = Vec::new();
            if is_final(&left) {
                rights.push(right_init.clone());
            }
            State::Seq { left: Shared::new(left), rights, right_init }
        }
        ExprKind::SeqIter(y) => {
            let body_init = Shared::new(initial_state(y));
            State::SeqIter { boundary: true, runs: vec![body_init.clone()], body_init }
        }
        ExprKind::Par(y, z) => State::Par {
            alts: vec![(Shared::new(initial_state(y)), Shared::new(initial_state(z)))],
        },
        ExprKind::ParIter(y) => {
            State::ParIter { alts: vec![Vec::new()], body_init: Shared::new(initial_state(y)) }
        }
        ExprKind::Or(y, z) => {
            State::Or { left: Shared::new(initial_state(y)), right: Shared::new(initial_state(z)) }
        }
        ExprKind::And(y, z) => {
            State::And { left: Shared::new(initial_state(y)), right: Shared::new(initial_state(z)) }
        }
        ExprKind::Sync(y, z) => State::Sync {
            left: Shared::new(initial_state(y)),
            right: Shared::new(initial_state(z)),
            left_alpha: Shared::new(ScopedAlphabet::of(y)),
            right_alpha: Shared::new(ScopedAlphabet::of(z)),
        },
        ExprKind::SomeQ(p, y) => State::SomeQ(quant_state(*p, y)),
        ExprKind::AllQ(p, y) => State::AllQ(quant_state(*p, y)),
        ExprKind::SyncQ(p, y) => State::SyncQ(quant_state(*p, y)),
        ExprKind::ParQ(p, y) => {
            let body_init = initial_state(y);
            State::ParQ {
                param: *p,
                body_accepts_epsilon: is_final(&body_init),
                alts: vec![BTreeMap::new()],
                body_init: Shared::new(body_init),
            }
        }
        ExprKind::Mult(n, y) => {
            let body_init = initial_state(y);
            State::Mult {
                capacity: *n,
                body_accepts_epsilon: is_final(&body_init),
                alts: vec![Vec::new()],
                body_init: Shared::new(body_init),
            }
        }
    }
}

fn quant_state(param: Param, body: &Expr) -> QuantState {
    QuantState {
        param,
        template: Shared::new(initial_state(body)),
        branches: BTreeMap::new(),
        scope: Shared::new(ScopedAlphabet::of(body)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::{is_final, is_valid};
    use ix_core::parse;

    #[test]
    fn init_rejects_open_expressions() {
        let e = ix_core::builder::actp("a", &["p"]);
        assert!(matches!(init(&e), Err(StateError::FreeParameters { .. })));
        let e = ix_core::Expr::hole("x");
        assert!(matches!(init(&e), Err(StateError::TemplateHole { .. })));
        let e = ix_core::Expr::mult(0, ix_core::builder::act0("a"));
        assert!(matches!(init(&e), Err(StateError::ZeroMultiplier)));
    }

    #[test]
    fn init_rejects_incompletely_quantified_parallel_quantifiers() {
        let e = parse("all p { a(p) - order }").unwrap();
        match init(&e) {
            Err(StateError::NotCompletelyQuantified { offending_atom, .. }) => {
                assert_eq!(offending_atom, "order");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The same body under a synchronization quantifier is fine.
        let e = parse("sync p { (a(p) - order)* }").unwrap();
        assert!(init(&e).is_ok());
    }

    #[test]
    fn shadowed_parameters_do_not_trigger_complete_quantification_errors() {
        // The inner quantifier rebinds p; its atoms need not mention the
        // outer p... but the outer body's own atom must.
        let e = parse("all p { a(p) - some p { b(p) } }").unwrap();
        // b(p) refers to the inner p, so w.r.t. the outer quantifier the atom
        // does not mention it → rejected.
        assert!(matches!(init(&e), Err(StateError::NotCompletelyQuantified { .. })));
        let e = parse("all p { a(p) | b(p) }").unwrap();
        assert!(init(&e).is_ok());
    }

    #[test]
    fn initial_states_are_valid_and_mirror_epsilon_finality() {
        let cases = [
            ("a", false),
            ("a?", true),
            ("a*", true),
            ("a#", true),
            ("a - b", false),
            ("a | b", false),
            ("a + b", false),
            ("a & b", false),
            ("a @ b", false),
            ("empty", true),
            ("a? - b?", true),
            ("mult 2 { a? }", true),
            ("mult 2 { a }", false),
            ("some p { a(p) }", false),
            ("some p { a(p)? }", true),
            ("all p { a(p)? }", true),
            ("each p { a(p)* }", true),
            ("sync p { a(p)* }", true),
        ];
        for (src, eps_final) in cases {
            let e = parse(src).unwrap();
            let s = init(&e).unwrap();
            assert!(is_valid(&s), "σ({src}) must be valid (ε is always a partial word)");
            assert_eq!(is_final(&s), eps_final, "ε-finality of {src}");
        }
    }

    #[test]
    fn seq_initial_state_spawns_right_run_when_left_accepts_epsilon() {
        let e = parse("a? - b").unwrap();
        match init(&e).unwrap() {
            State::Seq { rights, right_init, .. } => {
                assert_eq!(rights.len(), 1);
                assert!(
                    crate::state::Shared::ptr_eq(&rights[0], &right_init),
                    "the spawned run shares the precomputed σ template"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        let e = parse("a - b").unwrap();
        match init(&e).unwrap() {
            State::Seq { rights, .. } => assert!(rights.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn initial_state_commutes_with_substitution() {
        // σ(x[p := v]) = σ(x)[p := v] — the property that lets the parallel
        // quantifier instantiate new branches from the precomputed template
        // state instead of re-deriving σ from the substituted expression.
        let p = ix_core::Param::new("p");
        let v = ix_core::Value::int(7);
        for src in [
            "a(p) - b(p)",
            "(a(p) | c)*",
            "(a(p) - b(p))# @ (b(p) - c)*",
            "some q { a(p, q) - b(q) }",
            "mult 2 { a(p)? }",
        ] {
            let body = parse(&format!("some p {{ {src} }}")).unwrap();
            let inner = match body.kind() {
                ExprKind::SomeQ(_, b) => b.clone(),
                _ => unreachable!(),
            };
            let via_expr = initial_state(&inner.substitute(p, v));
            let via_state = initial_state(&inner).substitute(p, v);
            assert_eq!(via_expr, via_state, "σ∘subst ≠ subst∘σ for {src}");
        }
    }
}

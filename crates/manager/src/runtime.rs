//! The session-oriented async runtime — per-shard task queues, completion
//! tickets, and a timer wheel.
//!
//! Sec. 7 of the paper frames the interaction manager as a *message-based
//! coordination service*: clients talk to it asynchronously over (persistent)
//! queues instead of calling it under a lock.  [`ManagerRuntime`] realizes
//! that shape on top of the sharded kernel:
//!
//! * **one worker thread per shard**, exclusively owning the shard's engine,
//!   reservation table, subscription registry, and log segment — the
//!   per-shard mutexes of [`InteractionManager`] are gone; a worker mutates
//!   its shard state with no interior locking at all;
//! * **an ordered task queue per shard**: submissions become tasks; a shard
//!   executes its tasks strictly in queue order;
//! * **completion tickets**: every submission returns a [`Ticket`]
//!   immediately — `wait()` for the synchronous round trip, `poll()` to
//!   pipeline, `then()` for callbacks — so clients keep dozens of requests
//!   in flight without blocking;
//! * **cross-shard actions as ordered enqueues**: a multi-owner submission
//!   enqueues one task onto *every* owner's queue, in ascending shard-id
//!   order, under a single enqueue lock.  The enqueue order *is* the 2PC
//!   lock order of the blocking manager: any two cross-shard tasks appear in
//!   the same relative order in every queue they share, so the rendezvous in
//!   which the owners vote and commit can never cycle — deadlock-freedom
//!   carries over from the blocking design by construction;
//! * **a hierarchical timer wheel** ([`crate::timer::TimerWheel`]) owns
//!   lease expiry: every leased grant schedules one timer, and advancing the
//!   clock fires exactly the due leases instead of scanning the reservation
//!   index.  The default *virtual clock* is advanced explicitly
//!   ([`ManagerRuntime::advance_time`]), which keeps deterministic tests
//!   deterministic; [`ClockMode::Wall`] drives the same wheel from a ticker
//!   thread;
//! * **optional durable submissions** ([`RuntimeOptions::durable`]): every
//!   session submission is journaled in a [`DurableQueue`] before dispatch
//!   and removed only when the client acknowledges the completion, so a
//!   simulated crash redelivers unacknowledged submissions — at-least-once,
//!   exactly the persistent-queue contract the paper cites.
//!
//! The execution semantics are those of the blocking [`InteractionManager`]:
//! per-action outcomes, the merged log, and the statistics counters agree
//! with the blocking manager on any sequentially submitted workload (see the
//! equivalence property tests).

use crate::error::{ManagerError, ManagerResult};
use crate::manager::{CrossSubscriptions, ManagerStats, ProtocolVariant, Reservation, SharedStats};
use crate::queue::DurableQueue;
use crate::subscription::{ClientId, Notification, SubscriptionRegistry};
use crate::ticket::{completed, ticket, DeferredWake, Ticket, TicketIssuer};
use crate::timer::TimerWheel;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use ix_core::{Action, Alphabet, Expr, Partition};
use ix_state::{Engine, Route, ShardRouter, StateRef};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// How the runtime's logical clock advances.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockMode {
    /// The clock only moves when [`ManagerRuntime::advance_time`] is called —
    /// fully deterministic, the mode every test uses.
    Virtual,
    /// A ticker thread advances the clock by one logical unit per `tick` of
    /// wall time, so leases expire without anybody calling `advance_time`.
    Wall {
        /// Wall-clock duration of one logical time unit.
        tick: Duration,
    },
}

/// Construction options of a [`ManagerRuntime`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuntimeOptions {
    /// The coordination-protocol variant (as for [`InteractionManager`]).
    pub variant: ProtocolVariant,
    /// Journal submissions in a [`DurableQueue`] and redeliver
    /// unacknowledged ones after a simulated crash.
    pub durable: bool,
    /// Clock mode for lease expiry.
    pub clock: ClockMode,
}

impl Default for RuntimeOptions {
    fn default() -> RuntimeOptions {
        RuntimeOptions {
            variant: ProtocolVariant::Simple,
            durable: false,
            clock: ClockMode::Virtual,
        }
    }
}

/// The result a completion ticket resolves to.
#[derive(Clone, Debug, PartialEq)]
pub enum Completion {
    /// An ask was granted; confirm or abort with the reservation id (0 under
    /// the `Combined` variant, which commits immediately).
    Granted {
        /// Reservation to confirm later.
        reservation: u64,
    },
    /// An ask or execute was denied.
    Denied,
    /// A combined execute committed.
    Executed {
        /// Status-change notifications produced by the commit.
        notifications: Vec<Notification>,
    },
    /// A confirm committed.
    Confirmed {
        /// Status-change notifications produced by the commit.
        notifications: Vec<Notification>,
    },
    /// An abort released the reservation.
    Aborted {
        /// The released reservation.
        reservation: Reservation,
    },
    /// A subscription was registered; carries the current status.
    Subscribed {
        /// Whether the action is currently permitted.
        permitted: bool,
    },
    /// A subscription was removed.
    Unsubscribed,
    /// A status query resolved.
    Status {
        /// Whether the action is currently permitted.
        permitted: bool,
    },
    /// A lease-expiry task ran; `None` if the reservation was already gone.
    Expired {
        /// The rolled-back reservation, if one expired.
        reservation: Option<Reservation>,
    },
    /// The submission failed.
    Failed {
        /// The failure.
        error: ManagerError,
    },
}

/// Journal record of a durable submission.
#[derive(Clone, Debug)]
struct SubmissionRecord {
    client: ClientId,
    op: DurableOp,
}

#[derive(Clone, Debug)]
enum DurableOp {
    Ask { action: Action },
    Execute { action: Action },
    Confirm { id: u64 },
    Abort { id: u64 },
}

/// A timer-wheel payload: which reservation to expire, on which owners.
#[derive(Clone, Debug)]
struct ExpiryEvent {
    id: u64,
    owners: Vec<usize>,
}

/// Everything a worker, a session, and the runtime handle share.  Note that
/// the task-queue *senders* are deliberately **not** in here: workers hold
/// only receivers, so dropping the runtime and its sessions disconnects the
/// queues and the workers exit.
struct RuntimeShared {
    expr: Expr,
    alphabet: Alphabet,
    variant: ProtocolVariant,
    router: ShardRouter,
    /// Serializes enqueues that touch more than one queue.  Holding this
    /// lock across the ascending-order sends is what makes the relative
    /// order of any two multi-owner tasks identical in every queue they
    /// share — the queue-order analogue of the blocking manager's
    /// ascending-shard-id lock order.
    cross_enqueue: Mutex<()>,
    reservation_index: Mutex<HashMap<u64, Vec<usize>>>,
    cross_subscriptions: Mutex<CrossSubscriptions>,
    orphan_subscriptions: Mutex<SubscriptionRegistry>,
    notification_channels: Mutex<HashMap<ClientId, Sender<Notification>>>,
    /// Number of registered cross-shard subscription entries — commits skip
    /// the registry lock entirely while this is zero (the common case).
    cross_entry_count: AtomicU64,
    timers: Mutex<TimerWheel<ExpiryEvent>>,
    durable: Option<Mutex<DurableQueue<SubmissionRecord>>>,
    clock: AtomicU64,
    log_seq: AtomicU64,
    next_reservation: AtomicU64,
    stats: SharedStats,
}

type Queues = Arc<Vec<Sender<Task>>>;

/// Sort key of a per-shard log entry.  Cross-shard commits act as epoch
/// boundaries: their key is `(own seq, 0, 0)`, and a single-owner commit is
/// keyed by `(seq of the last cross-shard commit applied on its shard, 1,
/// unique sub-sequence)`.  Sorting the merged segments by this key yields a
/// legal linearization even though shard workers run (and speculate) at
/// different speeds: per-shard commit order is preserved exactly, and
/// single-owner commits of *different* shards within the same epoch have
/// disjoint alphabets (they belong to different sync-components), so any
/// relative order replays.
type LogKey = (u64, u8, u64);

/// One shard's state, exclusively owned by its worker thread — no lock.
struct ShardState {
    id: usize,
    engine: Engine,
    reservations: BTreeMap<u64, Reservation>,
    subscriptions: SubscriptionRegistry,
    log: Vec<(LogKey, Action)>,
    /// Sequence number of the last cross-shard commit applied on this shard
    /// — the epoch component of single-owner log keys.
    epoch: u64,
}

impl ShardState {
    fn permitted_considering_reservations(&self, action: &Action) -> bool {
        self.engine.permitted_after(self.reservations.values().map(|r| &r.action), action)
    }
}

/// Read-only facts a snapshot task reports about one shard.
#[derive(Clone, Debug, Default)]
struct ShardSnapshot {
    log: Vec<(LogKey, Action)>,
    subscriptions: usize,
    is_final: bool,
}

enum Task {
    Single(SingleTask),
    Cross(Arc<CrossTask>),
    Exec(Arc<ExecTask>),
    Snapshot(TicketIssuer<ShardSnapshot>),
    Stop,
}

struct SingleTask {
    client: ClientId,
    op: Op,
    ticket: TicketIssuer<Completion>,
}

enum Op {
    Execute { action: Action },
    Ask { action: Action },
    Confirm { id: u64 },
    Abort { id: u64 },
    Expire { id: u64, now: u64 },
    Subscribe { action: Action },
    Unsubscribe { action: Action },
    Query { action: Action },
}

/// A multi-owner task: enqueued onto every owner's queue (in ascending
/// order, under the enqueue lock); the owners rendezvous on `sync` to vote,
/// decide, and apply — the queue-based incarnation of the two-phase commit.
struct CrossTask {
    owners: Vec<usize>,
    op: CrossOp,
    sync: Mutex<CrossSync>,
    barrier: Condvar,
}

enum CrossOp {
    Ask { client: ClientId, action: Action },
    Confirm { id: u64 },
    Abort { id: u64 },
    Expire { id: u64, now: u64 },
    Subscribe { client: ClientId, action: Action },
    Query { action: Action },
}

/// A multi-owner combined execute — the hot cross-shard task, carried by its
/// own rendezvous object so that *consecutive runs* of them coalesce.
///
/// A worker that dequeues one drains the whole already-queued run of
/// same-owner-set executes (plus the single-owner executes interleaved
/// between them) and walks it in one speculative pass.  The protocol admits
/// only **unconditional** votes: a vote is deposited only when the voter
/// knows the outcome of every predecessor of the same owner set, which
/// holds along the speculative chain as long as the voter's own earlier
/// votes were *no* (a single no forces a global denial, so the assumed
/// outcome is a fact) or already-decided.  Consequences:
///
/// * an unconditional **no** decides the task as denied on the spot — the
///   conjunction is already false, no rendezvous happens at all, and a
///   mid-case shard insta-denies an entire run of barrier attempts in one
///   pass;
/// * an unconditional **yes** is deposited and the task commits when all
///   owners have deposited one (the last depositor decides and assigns the
///   log sequence number);
/// * a voter whose chain contains an undecided yes-assumption stays silent
///   and votes later, when the assumption has resolved — if it resolved
///   against the assumption, the tail of the speculation is recomputed
///   (cheaply, through the engine's transition memo) before voting.
///
/// Decisions therefore still happen strictly in queue order per owner set,
/// each from votes computed against the true predecessor state, so
/// per-action outcomes, the merged log and the statistics are identical to
/// an unbatched rendezvous; what changes is that owners park only on
/// commit-pending tasks instead of once per action.
struct ExecTask {
    owners: Vec<usize>,
    // The client is not part of a combined execute's semantics (exactly as
    // in the blocking manager, which ignores it on this path).
    action: Action,
    sync: Mutex<ExecSync>,
    barrier: Condvar,
}

struct ExecSync {
    /// Owners that have deposited an (always unconditional, always yes)
    /// vote, aligned with `owners`.  No-votes are never deposited — they
    /// decide the task as denied immediately.
    voted: Vec<bool>,
    /// Number of deposited yes votes; the task commits at `owners.len()`.
    yes_votes: usize,
    /// The verdict, set exactly once.
    decision: Option<ExecDecision>,
    /// Owners that have applied a commit decision so far.
    applied: usize,
    /// Local subscription notifications, tagged with the owner position so
    /// the merged order matches the blocking manager.
    notes: Vec<(usize, Vec<Notification>)>,
    /// Refreshed cross-subscription bits deposited by the owners.
    cross_bits: Vec<(Action, usize, bool)>,
    ticket: Option<TicketIssuer<Completion>>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ExecDecision {
    /// All owners voted yes: install the prepared successors under sequence
    /// number `seq`.
    Commit {
        /// The global log sequence number of the commit.
        seq: u64,
    },
    /// Some owner voted an unconditional no.
    Deny,
}

struct CrossSync {
    ticket: Option<TicketIssuer<Completion>>,
    /// Owners that have voted so far.
    votes: usize,
    /// Conjunction of the votes.
    ok: bool,
    /// True if any owner held the referenced reservation (confirm/abort).
    any_reservation: bool,
    /// The removed reservation (identical copies on every owner).
    removed: Option<Reservation>,
    /// Per-owner status bits (query/subscribe), aligned with `owners`.
    bits: Vec<bool>,
    /// The verdict, set exactly once by the last voter.
    decision: Option<Decision>,
    /// The reservation created by a granted ask.
    granted: Option<Reservation>,
    /// Owners that have applied the decision so far.
    applied: usize,
    /// Per-owner local subscription notifications, aligned with `owners`
    /// (kept per owner so the merged order matches the blocking manager).
    notes: Vec<Vec<Notification>>,
    /// Refreshed cross-subscription bits deposited by the owners:
    /// (action, owner shard id, permitted).
    cross_bits: Vec<(Action, usize, bool)>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Decision {
    /// All owners voted yes: install the prepared successors under sequence
    /// number `seq`.
    Commit { seq: u64 },
    /// All owners voted yes on an ask: replicate the reservation.
    Reserve,
    /// Some owner voted no.
    Deny,
    /// The referenced reservation is unknown everywhere.
    Unknown,
    /// A confirmed action was not executable (reservations consumed).
    Rejected,
    /// A reservation was released (abort/expiry), or there was nothing to
    /// release.
    Released,
    /// A read-only rendezvous (query/subscribe) resolved.
    Done,
}

/// The session-oriented runtime.  Create it once, hand [`Session`]s to
/// clients, and drop or [`ManagerRuntime::shutdown`] it when done.
pub struct ManagerRuntime {
    shared: Arc<RuntimeShared>,
    queues: Queues,
    workers: Mutex<Vec<JoinHandle<ShardState>>>,
    ticker: Mutex<Option<JoinHandle<()>>>,
    ticker_stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for ManagerRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManagerRuntime")
            .field("shards", &self.queues.len())
            .field("variant", &self.shared.variant)
            .finish()
    }
}

/// What [`ManagerRuntime::shutdown`] hands back after the workers drained
/// their queues: the merged log, the final statistics, and the clock.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Confirmed actions in commit order (merged across the shard segments).
    pub log: Vec<Action>,
    /// Final statistics.
    pub stats: ManagerStats,
    /// Final logical time.
    pub clock: u64,
    /// Number of shards the runtime ran.
    pub shards: usize,
}

impl ManagerRuntime {
    /// Creates a runtime enforcing the expression with the simple protocol,
    /// a virtual clock, and no durability.
    pub fn new(expr: &Expr) -> ManagerResult<ManagerRuntime> {
        ManagerRuntime::with_options(expr, RuntimeOptions::default())
    }

    /// Creates a runtime with an explicit protocol variant.
    pub fn with_protocol(expr: &Expr, variant: ProtocolVariant) -> ManagerResult<ManagerRuntime> {
        ManagerRuntime::with_options(expr, RuntimeOptions { variant, ..RuntimeOptions::default() })
    }

    /// Creates a runtime with explicit options.  The expression is
    /// partitioned into its fine-grained sync-components; each component
    /// gets one worker thread and one ordered task queue.
    pub fn with_options(expr: &Expr, options: RuntimeOptions) -> ManagerResult<ManagerRuntime> {
        let components: Vec<(Expr, Alphabet)> = Partition::of(expr)
            .components()
            .iter()
            .map(|c| (c.expr.clone(), c.alphabet.clone()))
            .collect();
        let mut alphabets = Vec::with_capacity(components.len());
        let mut engines = Vec::with_capacity(components.len());
        for (component, alphabet) in components {
            engines.push(Engine::new(&component).map_err(ManagerError::State)?);
            alphabets.push(alphabet);
        }
        let shared = Arc::new(RuntimeShared {
            expr: expr.clone(),
            alphabet: expr.alphabet(),
            variant: options.variant,
            router: ShardRouter::new(alphabets),
            cross_enqueue: Mutex::new(()),
            reservation_index: Mutex::new(HashMap::new()),
            cross_subscriptions: Mutex::new(CrossSubscriptions::default()),
            orphan_subscriptions: Mutex::new(SubscriptionRegistry::new()),
            notification_channels: Mutex::new(HashMap::new()),
            cross_entry_count: AtomicU64::new(0),
            timers: Mutex::new(TimerWheel::new(0)),
            durable: options.durable.then(|| Mutex::new(DurableQueue::new())),
            clock: AtomicU64::new(0),
            log_seq: AtomicU64::new(0),
            next_reservation: AtomicU64::new(1),
            stats: SharedStats::default(),
        });
        let mut senders = Vec::with_capacity(engines.len());
        let mut workers = Vec::with_capacity(engines.len());
        for (id, engine) in engines.into_iter().enumerate() {
            let (tx, rx): (Sender<Task>, Receiver<Task>) = unbounded();
            senders.push(tx);
            let shared = Arc::clone(&shared);
            let state = ShardState {
                id,
                engine,
                reservations: BTreeMap::new(),
                subscriptions: SubscriptionRegistry::new(),
                log: Vec::new(),
                epoch: 0,
            };
            workers.push(std::thread::spawn(move || worker(shared, rx, state)));
        }
        let queues: Queues = Arc::new(senders);
        let ticker_stop = Arc::new(AtomicBool::new(false));
        let ticker = match options.clock {
            ClockMode::Virtual => None,
            ClockMode::Wall { tick } => {
                let shared = Arc::clone(&shared);
                let queues = Arc::clone(&queues);
                let stop = Arc::clone(&ticker_stop);
                Some(std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(tick);
                        advance_clock(&shared, &queues, 1);
                    }
                }))
            }
        };
        Ok(ManagerRuntime {
            shared,
            queues,
            workers: Mutex::new(workers),
            ticker: Mutex::new(ticker),
            ticker_stop,
        })
    }

    /// Opens a session for a client: its submissions return completion
    /// tickets, and subscription notifications arrive on the session's own
    /// channel.
    pub fn session(&self, client: ClientId) -> Session {
        let (tx, rx) = unbounded();
        lock(&self.shared.notification_channels).insert(client, tx);
        Session {
            client,
            shared: Arc::clone(&self.shared),
            queues: Arc::clone(&self.queues),
            notifications: rx,
        }
    }

    /// The protocol variant in use.
    pub fn protocol(&self) -> ProtocolVariant {
        self.shared.variant
    }

    /// The expression the runtime enforces.
    pub fn expr(&self) -> &Expr {
        &self.shared.expr
    }

    /// Number of shard workers (1 when the expression does not decompose).
    pub fn shard_count(&self) -> usize {
        self.queues.len()
    }

    /// The primary (lowest-id) shard an action is routed to, if any.
    pub fn shard_of(&self, action: &Action) -> Option<usize> {
        self.shared.router.route(action)
    }

    /// All shards owning an action, ascending (the enqueue order of a
    /// cross-shard task).
    pub fn owners_of(&self, action: &Action) -> Vec<usize> {
        self.shared.router.owners(action)
    }

    /// True if the action is owned by more than one shard.
    pub fn is_cross_shard(&self, action: &Action) -> bool {
        self.shared.router.is_shared(action)
    }

    /// True if the runtime's interaction expression mentions the action.
    pub fn controls(&self, action: &Action) -> bool {
        self.shared.alphabet.covers(action)
    }

    /// Statistics so far.
    pub fn stats(&self) -> ManagerStats {
        self.shared.stats.snapshot()
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.shared.clock.load(Ordering::Relaxed)
    }

    /// The merged log of confirmed actions in commit order.  Each shard
    /// reports its segment through its own queue, so the snapshot reflects
    /// every commit that completed before this call.
    pub fn log(&self) -> Vec<Action> {
        let mut entries: Vec<(LogKey, Action)> = Vec::new();
        for snapshot in self.snapshots() {
            entries.extend(snapshot.log);
        }
        entries.sort_by_key(|(key, _)| *key);
        entries.into_iter().map(|(_, action)| action).collect()
    }

    /// True if the interaction state is final on every shard.
    pub fn is_final(&self) -> bool {
        self.snapshots().iter().all(|s| s.is_final)
    }

    /// Number of active subscriptions across shard registries, cross-shard
    /// entries, and orphan registrations.
    pub fn subscription_count(&self) -> usize {
        let owned: usize = self.snapshots().iter().map(|s| s.subscriptions).sum();
        owned
            + lock(&self.shared.cross_subscriptions).len()
            + lock(&self.shared.orphan_subscriptions).len()
    }

    fn snapshots(&self) -> Vec<ShardSnapshot> {
        let tickets: Vec<Ticket<ShardSnapshot>> = self
            .queues
            .iter()
            .map(|q| {
                let (issuer, t) = ticket();
                if let Err(crossbeam::channel::SendError(Task::Snapshot(issuer))) =
                    q.send(Task::Snapshot(issuer))
                {
                    issuer.complete(ShardSnapshot::default());
                }
                t
            })
            .collect();
        tickets.iter().map(|t| t.wait()).collect()
    }

    /// Advances logical time by `delta`, firing the due lease timers and
    /// returning the reservations that expired (in deadline order).  Expiry
    /// runs as ordinary tasks on the owning shards' queues, so it is
    /// serialized with the submissions it races — a confirm enqueued before
    /// the expiry wins on every owner, one enqueued after loses on every
    /// owner.
    pub fn advance_time(&self, delta: u64) -> Vec<Reservation> {
        advance_clock(&self.shared, &self.queues, delta)
    }

    /// Acknowledges the oldest processed durable submission (the client has
    /// durably recorded its completion).  Returns false when durability is
    /// off or nothing is unacknowledged.
    pub fn acknowledge_submission(&self) -> bool {
        match &self.shared.durable {
            Some(d) => lock(d).acknowledge(),
            None => false,
        }
    }

    /// Number of journaled submissions not yet acknowledged.
    pub fn unacknowledged_submissions(&self) -> usize {
        match &self.shared.durable {
            Some(d) => lock(d).len(),
            None => 0,
        }
    }

    /// Simulates a crash of the submission path: the volatile delivery
    /// cursor of the durable journal is lost, and every unacknowledged
    /// submission is delivered *again* (at-least-once).  Returns the
    /// completion tickets of the redelivered submissions.
    pub fn crash_redeliver(&self) -> Vec<Ticket<Completion>> {
        let Some(durable) = &self.shared.durable else {
            return Vec::new();
        };
        let records = {
            let mut journal = lock(durable);
            journal.crash_recover();
            let mut out = Vec::new();
            while let Some(record) = journal.dequeue() {
                out.push(record);
            }
            out
        };
        records
            .into_iter()
            .map(|record| match record.op {
                DurableOp::Ask { ref action } => {
                    submit_ask(&self.shared, &self.queues, record.client, action)
                }
                DurableOp::Execute { ref action } => {
                    submit_execute(&self.shared, &self.queues, record.client, action)
                }
                DurableOp::Confirm { id } => submit_confirm(&self.shared, &self.queues, id),
                DurableOp::Abort { id } => submit_abort(&self.shared, &self.queues, id),
            })
            .collect()
    }

    /// Stops the ticker (if any), lets every worker drain its queue, joins
    /// them, and returns the merged log plus final statistics.  Submissions
    /// racing the shutdown complete with [`ManagerError::Disconnected`] —
    /// either failed inline (queue already closed) or failed during the
    /// worker's final drain.  A submission that lands in the narrow window
    /// after a worker's drain but before its queue closes is abandoned, and
    /// a `wait()` on its ticket panics; callers should quiesce their
    /// sessions before shutting down (`wait_timeout`/`poll` never panic).
    pub fn shutdown(self) -> ManagerResult<RuntimeReport> {
        self.ticker_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = lock(&self.ticker).take() {
            let _ = handle.join();
        }
        {
            // The enqueue lock makes the Stop markers atomic w.r.t.
            // cross-shard enqueues: a cross task is ordered either before
            // the Stop on *all* of its owners (processed normally) or after
            // it on all of them (failed during the drain) — never half/half,
            // which would strand owners at the rendezvous.
            let _guard = lock(&self.shared.cross_enqueue);
            for q in self.queues.iter() {
                let _ = q.send(Task::Stop);
            }
        }
        let workers = std::mem::take(&mut *lock(&self.workers));
        let mut entries: Vec<(LogKey, Action)> = Vec::new();
        let mut shards = 0usize;
        for handle in workers {
            let state = handle.join().map_err(|_| ManagerError::Disconnected)?;
            entries.extend(state.log);
            shards += 1;
        }
        entries.sort_by_key(|(key, _)| *key);
        Ok(RuntimeReport {
            log: entries.into_iter().map(|(_, action)| action).collect(),
            stats: self.shared.stats.snapshot(),
            clock: self.shared.clock.load(Ordering::Relaxed),
            shards,
        })
    }
}

impl Drop for ManagerRuntime {
    /// Dropping without [`ManagerRuntime::shutdown`] must not leak threads:
    /// stopping the ticker releases its clones of the queue senders, so
    /// once the sessions are gone too the channels disconnect and every
    /// worker exits.  (The ticker itself exits within one `tick`.)
    fn drop(&mut self) {
        self.ticker_stop.store(true, Ordering::Relaxed);
    }
}

/// A client's handle onto the runtime.  Every method submits a task and
/// returns a completion ticket immediately; the `*_blocking` conveniences
/// wait and translate to the blocking manager's result types.
pub struct Session {
    client: ClientId,
    shared: Arc<RuntimeShared>,
    queues: Queues,
    notifications: Receiver<Notification>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("client", &self.client).finish()
    }
}

impl Clone for Session {
    /// Clones share the client id *and* the notification stream (a
    /// notification is delivered to whichever clone polls first); open a
    /// fresh session for an independent stream.
    fn clone(&self) -> Session {
        Session {
            client: self.client,
            shared: Arc::clone(&self.shared),
            queues: Arc::clone(&self.queues),
            notifications: self.notifications.clone(),
        }
    }
}

impl Session {
    /// This session's client identifier.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// Step 1/2 of the coordination protocol: ask for permission.  Resolves
    /// to [`Completion::Granted`] or [`Completion::Denied`].
    pub fn ask(&self, action: &Action) -> Ticket<Completion> {
        self.journal(DurableOp::Ask { action: action.clone() });
        submit_ask(&self.shared, &self.queues, self.client, action)
    }

    /// The combined ask-and-execute round trip.  Resolves to
    /// [`Completion::Executed`] or [`Completion::Denied`].
    pub fn execute(&self, action: &Action) -> Ticket<Completion> {
        self.journal(DurableOp::Execute { action: action.clone() });
        submit_execute(&self.shared, &self.queues, self.client, action)
    }

    /// Step 4/5: confirm a granted reservation.  Resolves to
    /// [`Completion::Confirmed`] or [`Completion::Failed`].
    pub fn confirm(&self, reservation: u64) -> Ticket<Completion> {
        self.journal(DurableOp::Confirm { id: reservation });
        submit_confirm(&self.shared, &self.queues, reservation)
    }

    /// Explicitly releases a granted reservation without executing it.
    pub fn abort(&self, reservation: u64) -> Ticket<Completion> {
        self.journal(DurableOp::Abort { id: reservation });
        submit_abort(&self.shared, &self.queues, reservation)
    }

    /// Subscribes to permissibility changes of an action; the completion
    /// carries the current status, later changes arrive via
    /// [`Session::poll_notifications`].
    pub fn subscribe(&self, action: &Action) -> Ticket<Completion> {
        let shared = &self.shared;
        match shared.router.classify(action) {
            Route::None => {
                lock(&shared.orphan_subscriptions).subscribe(
                    self.client,
                    action.clone(),
                    action.clone(),
                    false,
                );
                completed(Completion::Subscribed { permitted: false })
            }
            Route::Single(shard) => dispatch_single(
                &self.queues,
                shard,
                self.client,
                Op::Subscribe { action: action.clone() },
            ),
            Route::Multi(owners) => dispatch_cross(
                shared,
                &self.queues,
                owners,
                CrossOp::Subscribe { client: self.client, action: action.clone() },
            ),
        }
    }

    /// Removes a subscription.
    pub fn unsubscribe(&self, action: &Action) -> Ticket<Completion> {
        let shared = &self.shared;
        match shared.router.classify(action) {
            Route::None => {
                lock(&shared.orphan_subscriptions).unsubscribe(self.client, action);
                completed(Completion::Unsubscribed)
            }
            Route::Single(shard) => dispatch_single(
                &self.queues,
                shard,
                self.client,
                Op::Unsubscribe { action: action.clone() },
            ),
            Route::Multi(_) => {
                // Cross-shard subscriptions live in the runtime-level
                // registry only; no shard state is involved.
                let mut cross = lock(&shared.cross_subscriptions);
                let remove = match cross.entries.get_mut(action) {
                    Some(entry) => {
                        entry.clients.retain(|c| *c != self.client);
                        entry.clients.is_empty()
                    }
                    None => false,
                };
                if remove {
                    cross.entries.remove(action);
                    shared.cross_entry_count.fetch_sub(1, Ordering::Relaxed);
                    for actions in cross.by_shard.values_mut() {
                        actions.remove(action);
                    }
                    cross.by_shard.retain(|_, actions| !actions.is_empty());
                }
                completed(Completion::Unsubscribed)
            }
        }
    }

    /// Queries whether the action is currently permitted (ignoring
    /// outstanding reservations), evaluated on the owning shards.
    pub fn is_permitted(&self, action: &Action) -> Ticket<Completion> {
        match self.shared.router.classify(action) {
            Route::None => completed(Completion::Status { permitted: false }),
            Route::Single(shard) => dispatch_single(
                &self.queues,
                shard,
                self.client,
                Op::Query { action: action.clone() },
            ),
            Route::Multi(owners) => dispatch_cross(
                &self.shared,
                &self.queues,
                owners,
                CrossOp::Query { action: action.clone() },
            ),
        }
    }

    /// Drains the subscription notifications received so far.
    pub fn poll_notifications(&self) -> Vec<Notification> {
        self.notifications.try_iter().collect()
    }

    /// Advances the runtime's logical clock (see
    /// [`ManagerRuntime::advance_time`]); any session may drive the virtual
    /// clock, exactly as any client could send a tick to the old server.
    pub fn advance_time(&self, delta: u64) -> Vec<Reservation> {
        advance_clock(&self.shared, &self.queues, delta)
    }

    /// Blocking [`Session::ask`] with the blocking manager's result type.
    pub fn ask_blocking(&self, action: &Action) -> ManagerResult<Option<u64>> {
        match self.ask(action).wait() {
            Completion::Granted { reservation } => Ok(Some(reservation)),
            Completion::Denied => Ok(None),
            Completion::Failed { error } => Err(error),
            other => Err(ManagerError::RejectedConfirmation { action: format!("{other:?}") }),
        }
    }

    /// Blocking [`Session::execute`] with the blocking manager's result
    /// type.
    pub fn execute_blocking(&self, action: &Action) -> ManagerResult<Option<Vec<Notification>>> {
        match self.execute(action).wait() {
            Completion::Executed { notifications } => Ok(Some(notifications)),
            Completion::Denied => Ok(None),
            Completion::Failed { error } => Err(error),
            other => Err(ManagerError::RejectedConfirmation { action: format!("{other:?}") }),
        }
    }

    /// Blocking [`Session::confirm`].
    pub fn confirm_blocking(&self, reservation: u64) -> ManagerResult<Vec<Notification>> {
        match self.confirm(reservation).wait() {
            Completion::Confirmed { notifications } => Ok(notifications),
            Completion::Failed { error } => Err(error),
            other => Err(ManagerError::RejectedConfirmation { action: format!("{other:?}") }),
        }
    }

    /// Blocking [`Session::abort`].
    pub fn abort_blocking(&self, reservation: u64) -> ManagerResult<Reservation> {
        match self.abort(reservation).wait() {
            Completion::Aborted { reservation } => Ok(reservation),
            Completion::Failed { error } => Err(error),
            other => Err(ManagerError::RejectedConfirmation { action: format!("{other:?}") }),
        }
    }

    /// Blocking [`Session::subscribe`].
    pub fn subscribe_blocking(&self, action: &Action) -> ManagerResult<bool> {
        match self.subscribe(action).wait() {
            Completion::Subscribed { permitted } => Ok(permitted),
            Completion::Failed { error } => Err(error),
            other => Err(ManagerError::RejectedConfirmation { action: format!("{other:?}") }),
        }
    }

    /// Blocking [`Session::is_permitted`].
    pub fn is_permitted_blocking(&self, action: &Action) -> bool {
        matches!(self.is_permitted(action).wait(), Completion::Status { permitted: true })
    }

    fn journal(&self, op: DurableOp) {
        if let Some(durable) = &self.shared.durable {
            let mut journal = lock(durable);
            journal.enqueue(SubmissionRecord { client: self.client, op });
            // The runtime delivers the submission immediately; the journal
            // entry stays until the client acknowledges the completion.
            let _ = journal.dequeue();
        }
    }
}

// ---------------------------------------------------------------------------
// Submission paths (shared by sessions and durable redelivery).
// ---------------------------------------------------------------------------

fn submit_ask(
    shared: &Arc<RuntimeShared>,
    queues: &Queues,
    client: ClientId,
    action: &Action,
) -> Ticket<Completion> {
    shared.stats.asks.fetch_add(1, Ordering::Relaxed);
    if !action.is_concrete() {
        return completed(Completion::Failed {
            error: ManagerError::NonConcreteAction { action: action.to_string() },
        });
    }
    match shared.router.classify(action) {
        Route::None => {
            shared.stats.denials.fetch_add(1, Ordering::Relaxed);
            completed(Completion::Denied)
        }
        Route::Single(shard) => {
            dispatch_single(queues, shard, client, Op::Ask { action: action.clone() })
        }
        Route::Multi(owners) => {
            dispatch_cross(shared, queues, owners, CrossOp::Ask { client, action: action.clone() })
        }
    }
}

fn submit_execute(
    shared: &Arc<RuntimeShared>,
    queues: &Queues,
    client: ClientId,
    action: &Action,
) -> Ticket<Completion> {
    shared.stats.asks.fetch_add(1, Ordering::Relaxed);
    if !action.is_concrete() {
        return completed(Completion::Failed {
            error: ManagerError::NonConcreteAction { action: action.to_string() },
        });
    }
    match shared.router.classify(action) {
        Route::None => {
            shared.stats.denials.fetch_add(1, Ordering::Relaxed);
            completed(Completion::Denied)
        }
        Route::Single(shard) => {
            dispatch_single(queues, shard, client, Op::Execute { action: action.clone() })
        }
        Route::Multi(owners) => dispatch_exec(shared, queues, owners, action),
    }
}

fn submit_confirm(shared: &Arc<RuntimeShared>, queues: &Queues, id: u64) -> Ticket<Completion> {
    let owners = match lock(&shared.reservation_index).get(&id) {
        Some(owners) => owners.clone(),
        None => {
            return completed(Completion::Failed { error: ManagerError::UnknownReservation { id } })
        }
    };
    match owners.as_slice() {
        [shard] => dispatch_single(queues, *shard, 0, Op::Confirm { id }),
        _ => dispatch_cross(shared, queues, owners, CrossOp::Confirm { id }),
    }
}

fn submit_abort(shared: &Arc<RuntimeShared>, queues: &Queues, id: u64) -> Ticket<Completion> {
    let owners = match lock(&shared.reservation_index).get(&id) {
        Some(owners) => owners.clone(),
        None => {
            return completed(Completion::Failed { error: ManagerError::UnknownReservation { id } })
        }
    };
    match owners.as_slice() {
        [shard] => dispatch_single(queues, *shard, 0, Op::Abort { id }),
        _ => dispatch_cross(shared, queues, owners, CrossOp::Abort { id }),
    }
}

/// Enqueues a task on one shard's queue.
fn dispatch_single(queues: &Queues, shard: usize, client: ClientId, op: Op) -> Ticket<Completion> {
    let (issuer, t) = ticket();
    let task = Task::Single(SingleTask { client, op, ticket: issuer });
    if let Err(crossbeam::channel::SendError(Task::Single(task))) = queues[shard].send(task) {
        task.ticket.complete(Completion::Failed { error: ManagerError::Disconnected });
    }
    t
}

/// Enqueues a multi-owner combined execute onto every owner's queue in
/// ascending order.  The task (rendezvous state, ticket, action) is built
/// entirely outside the enqueue lock; the critical section is exactly the
/// send loop that fixes the task's relative order.
fn dispatch_exec(
    shared: &RuntimeShared,
    queues: &Queues,
    owners: Vec<usize>,
    action: &Action,
) -> Ticket<Completion> {
    let (issuer, t) = ticket();
    let n = owners.len();
    let task = Arc::new(ExecTask {
        owners,
        action: action.clone(),
        sync: Mutex::new(ExecSync {
            voted: vec![false; n],
            yes_votes: 0,
            decision: None,
            applied: 0,
            notes: Vec::new(),
            cross_bits: Vec::new(),
            ticket: Some(issuer),
        }),
        barrier: Condvar::new(),
    });
    let mut failed = false;
    {
        let _guard = lock(&shared.cross_enqueue);
        for &owner in &task.owners {
            if queues[owner].send(Task::Exec(Arc::clone(&task))).is_err() {
                failed = true;
                break;
            }
        }
    }
    if failed {
        // Queues only disconnect when the runtime is gone; nobody will ever
        // rendezvous, so fail the ticket here.
        if let Some(issuer) = lock(&task.sync).ticket.take() {
            issuer.complete(Completion::Failed { error: ManagerError::Disconnected });
        }
    }
    t
}

/// Enqueues a cross-shard task onto every owner's queue in ascending order,
/// under the enqueue lock — the ordered-enqueue incarnation of the 2PC lock
/// order.
fn dispatch_cross(
    shared: &RuntimeShared,
    queues: &Queues,
    owners: Vec<usize>,
    op: CrossOp,
) -> Ticket<Completion> {
    let (issuer, t) = ticket();
    let n = owners.len();
    let task = Arc::new(CrossTask {
        owners,
        op,
        sync: Mutex::new(CrossSync {
            ticket: Some(issuer),
            votes: 0,
            ok: true,
            any_reservation: false,
            removed: None,
            bits: vec![false; n],
            decision: None,
            granted: None,
            applied: 0,
            notes: vec![Vec::new(); n],
            cross_bits: Vec::new(),
        }),
        barrier: Condvar::new(),
    });
    let mut failed = false;
    {
        let _guard = lock(&shared.cross_enqueue);
        for &owner in &task.owners {
            if queues[owner].send(Task::Cross(Arc::clone(&task))).is_err() {
                failed = true;
                break;
            }
        }
    }
    if failed {
        // Queues only disconnect when the runtime is gone; nobody will ever
        // rendezvous, so fail the ticket here.
        if let Some(issuer) = lock(&task.sync).ticket.take() {
            issuer.complete(Completion::Failed { error: ManagerError::Disconnected });
        }
    }
    t
}

/// Advances the clock and runs the due lease expirations as shard tasks.
fn advance_clock(shared: &Arc<RuntimeShared>, queues: &Queues, delta: u64) -> Vec<Reservation> {
    let now = shared.clock.fetch_add(delta, Ordering::Relaxed) + delta;
    let events = lock(&shared.timers).advance(now);
    let tickets: Vec<Ticket<Completion>> = events
        .into_iter()
        .map(|event| match event.owners.as_slice() {
            [shard] => dispatch_single(queues, *shard, 0, Op::Expire { id: event.id, now }),
            _ => {
                dispatch_cross(shared, queues, event.owners, CrossOp::Expire { id: event.id, now })
            }
        })
        .collect();
    tickets
        .into_iter()
        .filter_map(|t| match t.wait() {
            Completion::Expired { reservation } => reservation,
            _ => None,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The worker: one per shard, exclusive owner of the shard state.
// ---------------------------------------------------------------------------

/// True on hosts with a single hardware thread (cached).  Two worker
/// policies flip there: spinning is pure loss (the producer cannot run
/// while the consumer burns the core), and ticket wakeups are deferred and
/// flushed in batches so a client/worker pair context-switches per drained
/// queue instead of per completion.
fn single_core() -> bool {
    static CORES: AtomicU64 = AtomicU64::new(0);
    let cached = CORES.load(Ordering::Relaxed);
    if cached != 0 {
        return cached == 1;
    }
    let parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    CORES.store(parallelism as u64, Ordering::Relaxed);
    parallelism == 1
}

/// How many empty polls a worker performs before parking in `recv`.  A hot
/// queue never parks (no futex round trip per task); an idle one costs a few
/// hundred spins before sleeping.
fn worker_spin() -> u32 {
    if single_core() {
        0
    } else {
        256
    }
}

/// Fulfils a completion ticket from a shard worker.  On single-core hosts
/// the waiter wakeup is deferred into `wakes` (flushed before every park and
/// on worker exit); elsewhere the completion wakes immediately.
fn fulfil(ticket: TicketIssuer<Completion>, value: Completion, wakes: &mut Vec<DeferredWake>) {
    if single_core() {
        if let Some(wake) = ticket.complete_deferred(value) {
            wakes.push(wake);
        }
    } else {
        ticket.complete(value);
    }
}

/// Delivers every deferred wakeup collected so far.
fn flush_wakes(wakes: &mut Vec<DeferredWake>) {
    for wake in wakes.drain(..) {
        wake.wake();
    }
}

fn next_task(rx: &Receiver<Task>) -> Result<Task, crossbeam::channel::RecvError> {
    for i in 0..worker_spin() {
        match rx.try_recv() {
            Ok(task) => return Ok(task),
            Err(TryRecvError::Disconnected) => return Err(crossbeam::channel::RecvError),
            Err(TryRecvError::Empty) => {
                if i % 32 == 31 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
    rx.recv()
}

fn worker(shared: Arc<RuntimeShared>, rx: Receiver<Task>, mut st: ShardState) -> ShardState {
    // A one-slot pushback buffer: collecting a run of consecutive
    // multi-owner executes pops one task too many, which is processed next.
    let mut pushback: Option<Task> = None;
    // Deferred ticket wakeups (single-core hosts only) — flushed before
    // every park and on exit, so waiters are never stranded.
    let mut wakes: Vec<DeferredWake> = Vec::new();
    loop {
        let task = match pushback.take() {
            Some(task) => Ok(task),
            None => match rx.try_recv() {
                Ok(task) => Ok(task),
                Err(TryRecvError::Disconnected) => Err(crossbeam::channel::RecvError),
                Err(TryRecvError::Empty) => {
                    // About to go idle: deliver the banked wakeups first —
                    // the woken clients are exactly who refills the queue.
                    flush_wakes(&mut wakes);
                    next_task(&rx)
                }
            },
        };
        match task {
            Ok(Task::Single(task)) => process_single(&shared, &mut st, task, &mut wakes),
            Ok(Task::Cross(task)) => {
                flush_wakes(&mut wakes);
                process_cross(&shared, &mut st, &task)
            }
            Ok(Task::Exec(task)) => {
                // Coalesce the already-queued consecutive run of same-owner-
                // set executes — plus the single-owner executes interleaved
                // between them — into one speculative batch: the rendezvous
                // votes once per batch instead of once per action.
                let mut batch = Batch::new(task);
                loop {
                    match rx.try_recv() {
                        Ok(Task::Exec(next)) if next.owners == batch.owners => {
                            batch.push_exec(next)
                        }
                        Ok(Task::Single(single)) if matches!(single.op, Op::Execute { .. }) => {
                            batch.push_local(single)
                        }
                        Ok(other) => {
                            pushback = Some(other);
                            break;
                        }
                        Err(_) => break,
                    }
                    if batch.actions.len() >= MAX_BATCH {
                        break;
                    }
                }
                process_batch(&shared, &mut st, batch, &mut wakes);
            }
            Ok(Task::Snapshot(issuer)) => issuer.complete(ShardSnapshot {
                log: st.log.clone(),
                subscriptions: st.subscriptions.len(),
                is_final: st.engine.is_final(),
            }),
            Ok(Task::Stop) => {
                // Fail everything still queued behind the Stop marker; the
                // enqueue lock guarantees a cross task behind one owner's
                // Stop is behind every owner's Stop, so nobody waits for a
                // vote that never comes.
                for task in rx.try_iter() {
                    fail_task(task);
                }
                break;
            }
            Err(_) => break,
        }
        if wakes.len() >= 256 {
            flush_wakes(&mut wakes);
        }
    }
    flush_wakes(&mut wakes);
    st
}

fn fail_task(task: Task) {
    let disconnected = || Completion::Failed { error: ManagerError::Disconnected };
    match task {
        Task::Single(task) => task.ticket.complete(disconnected()),
        Task::Cross(task) => {
            if let Some(issuer) = lock(&task.sync).ticket.take() {
                issuer.complete(disconnected());
            }
        }
        Task::Exec(task) => {
            if let Some(issuer) = lock(&task.sync).ticket.take() {
                issuer.complete(disconnected());
            }
        }
        Task::Snapshot(issuer) => issuer.complete(ShardSnapshot::default()),
        Task::Stop => {}
    }
}

// ---------------------------------------------------------------------------
// The coalesced multi-owner execute rendezvous.
// ---------------------------------------------------------------------------

/// Upper bound on the items one speculative batch may absorb — bounds the
/// cost of recomputing a speculation tail after a denial.
const MAX_BATCH: usize = 128;

/// One owner's local vote on an execute: the reservation-aware probe (only
/// when reservations are outstanding, as on the single-owner path) followed
/// by the tentative prepare, both from the speculative `base` state of the
/// run's chain.  `Some` is a yes vote carrying the prepared successor.
fn exec_vote(st: &ShardState, base: Option<&StateRef>, action: &Action) -> Option<StateRef> {
    let permitted = st.reservations.is_empty()
        || st.engine.permitted_after_from(
            base,
            st.reservations.values().map(|r| &r.action),
            action,
        );
    if !permitted {
        return None;
    }
    st.engine.prepare_from(base, action)
}

/// Deposits this owner's *unconditional* vote and decides the task when the
/// vote settles it: a no decides `Deny` immediately (the conjunction is
/// false), the last yes decides `Commit`.  Must only be called when the
/// outcome of every same-owner-set predecessor is known to the caller and
/// reflected in the vote's base state.
fn deposit_unconditional_vote(
    shared: &RuntimeShared,
    task: &ExecTask,
    sync: &mut ExecSync,
    pos: usize,
    yes: bool,
) {
    if sync.decision.is_some() || sync.voted[pos] {
        return;
    }
    if yes {
        sync.voted[pos] = true;
        sync.yes_votes += 1;
        if sync.yes_votes == task.owners.len() {
            sync.decision =
                Some(ExecDecision::Commit { seq: shared.log_seq.fetch_add(1, Ordering::Relaxed) });
            task.barrier.notify_all();
        }
    } else {
        shared.stats.denials.fetch_add(1, Ordering::Relaxed);
        if let Some(issuer) = sync.ticket.take() {
            issuer.complete(Completion::Denied);
        }
        sync.decision = Some(ExecDecision::Deny);
        task.barrier.notify_all();
    }
}

/// Applies a commit decision on this owner and, as the last applier, merges
/// the notifications, counts the stats and fulfils the ticket — the same
/// bookkeeping as the blocking manager's per-commit path.
fn apply_exec_commit(
    shared: &RuntimeShared,
    st: &mut ShardState,
    task: &ExecTask,
    pos: usize,
    seq: u64,
    next: StateRef,
) {
    st.engine.commit_prepared(next);
    st.epoch = seq;
    let engine = &st.engine;
    let local_notes = st.subscriptions.refresh(|a| engine.is_permitted(a));
    let bits = cross_bits_for_shard(shared, st);
    if pos == 0 {
        st.log.push(((seq, 0, 0), task.action.clone()));
    }
    let mut sync = lock(&task.sync);
    if !local_notes.is_empty() {
        sync.notes.push((pos, local_notes));
    }
    sync.cross_bits.extend(bits);
    sync.applied += 1;
    if sync.applied == task.owners.len() {
        sync.notes.sort_by_key(|(owner_pos, _)| *owner_pos);
        let mut notes: Vec<Notification> = sync.notes.drain(..).flat_map(|(_, n)| n).collect();
        notes.extend(merge_cross_bits(shared, &sync.cross_bits));
        shared.stats.confirmations.fetch_add(1, Ordering::Relaxed);
        shared.stats.grants.fetch_add(1, Ordering::Relaxed);
        shared.stats.notifications.fetch_add(notes.len() as u64, Ordering::Relaxed);
        deliver(shared, &notes);
        if let Some(issuer) = sync.ticket.take() {
            issuer.complete(Completion::Executed { notifications: notes });
        }
    }
}

/// One speculative batch: a consecutive queue run of multi-owner executes of
/// a single owner set plus the single-owner executes interleaved between
/// them, in queue order.
struct Batch {
    owners: Vec<usize>,
    actions: Vec<Action>,
    kinds: Vec<BatchKind>,
}

enum BatchKind {
    /// A multi-owner execute (rendezvous task).
    Exec(Arc<ExecTask>),
    /// A single-owner execute; the issuer is taken when the item resolves.
    Local(Option<TicketIssuer<Completion>>),
}

impl Batch {
    fn new(first: Arc<ExecTask>) -> Batch {
        Batch {
            owners: first.owners.clone(),
            actions: vec![first.action.clone()],
            kinds: vec![BatchKind::Exec(first)],
        }
    }

    fn push_exec(&mut self, task: Arc<ExecTask>) {
        self.actions.push(task.action.clone());
        self.kinds.push(BatchKind::Exec(task));
    }

    fn push_local(&mut self, task: SingleTask) {
        let Op::Execute { action } = task.op else {
            unreachable!("only execute tasks join a batch");
        };
        self.actions.push(action);
        self.kinds.push(BatchKind::Local(Some(task.ticket)));
    }
}

/// Speculative outcome of one batch item on this shard.
enum Spec {
    /// A multi-owner execute's local vote: `prepared` carries the tentative
    /// successor of a yes vote; `assumed` is true iff the chain advanced
    /// through this task on an *assumption* (our yes vote deposited or held
    /// back while the task was undecided) rather than a known outcome —
    /// only those assumptions can fail and force a tail recompute.
    Vote { prepared: Option<StateRef>, assumed: bool },
    /// A single-owner execute accepted on the chain, with its successor.
    Accept(StateRef),
    /// A single-owner execute denied on the chain.
    Deny,
    /// Already resolved and applied.
    Done,
}

/// The speculative pass over `batch[from..]` on this shard.
///
/// Walks the items in queue order maintaining a chain of tentative
/// successors.  As long as the chain is *unconditional* — every multi-owner
/// execute so far was already decided, insta-denied by this shard's own no
/// vote, or committed by this shard's completing yes vote — votes are
/// deposited (and tasks decided) on the spot.  The first yes vote that
/// leaves a task undecided makes the rest of the chain conditional: specs
/// are still computed (assuming this shard's own votes win), but nothing is
/// deposited; the resolution pass deposits them once the assumptions have
/// resolved, recomputing if one failed.
fn compute_specs(
    shared: &RuntimeShared,
    st: &ShardState,
    batch: &Batch,
    from: usize,
    pos: usize,
    specs: &mut Vec<Spec>,
) {
    specs.truncate(from);
    let mut chain: Option<StateRef> = None;
    let mut unconditional = true;
    for (action, kind) in batch.actions[from..].iter().zip(&batch.kinds[from..]) {
        let next = exec_vote(st, chain.as_ref(), action);
        match kind {
            BatchKind::Local(_) => {
                // A single-owner execute: decided by this shard alone, but
                // only *applied* at resolution, in queue order.
                match next {
                    Some(nx) => {
                        chain = Some(nx.clone());
                        specs.push(Spec::Accept(nx));
                    }
                    None => specs.push(Spec::Deny),
                }
            }
            BatchKind::Exec(task) => {
                let mut assumed = false;
                {
                    let mut sync = lock(&task.sync);
                    match sync.decision {
                        Some(ExecDecision::Deny) => {
                            // Outcome already known: the chain skips it.
                        }
                        Some(ExecDecision::Commit { .. }) => {
                            // A commit requires this shard's vote, which is
                            // deposited at most once per task — so a commit
                            // observed here carries our earlier yes, and
                            // the chain advances on the known outcome.
                            if let Some(nx) = &next {
                                chain = Some(nx.clone());
                            }
                        }
                        None => {
                            if unconditional {
                                deposit_unconditional_vote(
                                    shared,
                                    task,
                                    &mut sync,
                                    pos,
                                    next.is_some(),
                                );
                            }
                            match (&sync.decision, &next) {
                                (Some(ExecDecision::Commit { .. }), Some(nx)) => {
                                    // Our yes completed the commit: outcome
                                    // known, chain advances.
                                    chain = Some(nx.clone());
                                }
                                (Some(ExecDecision::Deny), _) | (_, None) => {
                                    // Insta-denied by our no, or a (possibly
                                    // conditional) no vote: the chain skips
                                    // it either way.  (A commit can never
                                    // coexist with our no vote — it requires
                                    // this shard's yes.)
                                }
                                (None, Some(nx)) => {
                                    // A yes on an undecided task — deposited
                                    // if unconditional, held back otherwise.
                                    // The chain *assumes* the commit from
                                    // here on.
                                    chain = Some(nx.clone());
                                    assumed = true;
                                    unconditional = false;
                                }
                            }
                        }
                    }
                }
                specs.push(Spec::Vote { prepared: next, assumed });
            }
        }
    }
}

/// Processes one speculative batch.  The speculative pass votes for (and
/// often outright decides) the whole run without parking; the resolution
/// pass then walks the batch strictly in queue order, applying every item
/// against its true predecessor state — when a commit assumption turns out
/// wrong, the tail of the speculation is recomputed (through the transition
/// memo) before the next vote is deposited.
///
/// Per-action outcomes, the merged log and the statistics are identical to
/// unbatched queue processing; what changes is that owners park only on
/// commit-pending rendezvous instead of once per cross-shard action.
fn process_batch(
    shared: &RuntimeShared,
    st: &mut ShardState,
    mut batch: Batch,
    wakes: &mut Vec<DeferredWake>,
) {
    let pos = batch
        .owners
        .iter()
        .position(|&o| o == st.id)
        .expect("exec task routed to a non-owner shard");

    // ---- Speculative pass: one chain over the whole batch. ----
    let mut specs = Vec::with_capacity(batch.actions.len());
    compute_specs(shared, st, &batch, 0, pos, &mut specs);

    // ---- Resolution pass: strictly in queue order. ----
    // True while the outcomes observed so far match the assumptions the
    // current `specs` tail was computed under.
    let mut valid = true;
    for i in 0..batch.kinds.len() {
        if !valid {
            // A commit assumption failed at an earlier item: rebuild the
            // tail from the true committed state.  The chain is
            // unconditional again up to its first undecided yes.
            compute_specs(shared, st, &batch, i, pos, &mut specs);
            valid = true;
        }
        match std::mem::replace(&mut specs[i], Spec::Done) {
            Spec::Accept(next) => {
                let BatchKind::Local(ticket) = &mut batch.kinds[i] else {
                    unreachable!("local spec on a cross item");
                };
                let ticket = ticket.take().expect("local resolved once");
                shared.stats.grants.fetch_add(1, Ordering::Relaxed);
                let notes = install_commit(shared, st, &batch.actions[i], next, true);
                fulfil(ticket, Completion::Executed { notifications: notes }, wakes);
            }
            Spec::Deny => {
                let BatchKind::Local(ticket) = &mut batch.kinds[i] else {
                    unreachable!("local spec on a cross item");
                };
                let ticket = ticket.take().expect("local resolved once");
                shared.stats.denials.fetch_add(1, Ordering::Relaxed);
                fulfil(ticket, Completion::Denied, wakes);
            }
            Spec::Vote { prepared, assumed } => {
                let BatchKind::Exec(task) = &batch.kinds[i] else {
                    unreachable!("vote spec on a local item");
                };
                let task = Arc::clone(task);
                let decision = {
                    let mut sync = lock(&task.sync);
                    // Reaching this item in order means every predecessor's
                    // outcome is known and reflected in `specs`: the vote is
                    // unconditional now if it was not deposited before.
                    deposit_unconditional_vote(shared, &task, &mut sync, pos, prepared.is_some());
                    let mut flushed = false;
                    loop {
                        if let Some(decision) = sync.decision {
                            break decision;
                        }
                        if !flushed {
                            // About to park at the rendezvous: deliver the
                            // banked wakeups first so no client sleeps
                            // through the wait.
                            flushed = true;
                            drop(sync);
                            flush_wakes(wakes);
                            sync = lock(&task.sync);
                            continue;
                        }
                        sync = task.barrier.wait(sync).unwrap_or_else(|e| e.into_inner());
                    }
                };
                match decision {
                    ExecDecision::Commit { seq } => {
                        let next = prepared
                            .expect("commit requires this shard's yes vote and its prepare");
                        apply_exec_commit(shared, st, &task, pos, seq, next);
                    }
                    ExecDecision::Deny => {
                        if assumed {
                            // The chain assumed this commit; the tail must
                            // be recomputed against the true state.
                            valid = false;
                        }
                    }
                }
            }
            Spec::Done => unreachable!("batch items resolve exactly once"),
        }
    }
}

fn process_single(
    shared: &RuntimeShared,
    st: &mut ShardState,
    task: SingleTask,
    wakes: &mut Vec<DeferredWake>,
) {
    let SingleTask { client, op, ticket } = task;
    let completion = match op {
        Op::Execute { action } => match single_commit(shared, st, &action, true) {
            Some(notes) => Completion::Executed { notifications: notes },
            None => Completion::Denied,
        },
        Op::Ask { action } => {
            if matches!(shared.variant, ProtocolVariant::Combined) {
                // The combined protocol commits immediately; the reply
                // carries no reservation to confirm.
                match single_commit(shared, st, &action, true) {
                    Some(_) => Completion::Granted { reservation: 0 },
                    None => Completion::Denied,
                }
            } else if !st.permitted_considering_reservations(&action) {
                shared.stats.denials.fetch_add(1, Ordering::Relaxed);
                Completion::Denied
            } else {
                shared.stats.grants.fetch_add(1, Ordering::Relaxed);
                let reservation = shared.new_reservation(client, &action);
                st.reservations.insert(reservation.id, reservation.clone());
                lock(&shared.reservation_index).insert(reservation.id, vec![st.id]);
                if reservation.expires_at != u64::MAX {
                    lock(&shared.timers).schedule(
                        reservation.expires_at,
                        ExpiryEvent { id: reservation.id, owners: vec![st.id] },
                    );
                }
                Completion::Granted { reservation: reservation.id }
            }
        }
        Op::Confirm { id } => {
            lock(&shared.reservation_index).remove(&id);
            match st.reservations.remove(&id) {
                None => Completion::Failed { error: ManagerError::UnknownReservation { id } },
                Some(reservation) => match st.engine.prepare(&reservation.action) {
                    None => Completion::Failed {
                        error: ManagerError::RejectedConfirmation {
                            action: reservation.action.to_string(),
                        },
                    },
                    Some(next) => {
                        let notes = install_commit(shared, st, &reservation.action, next, false);
                        Completion::Confirmed { notifications: notes }
                    }
                },
            }
        }
        Op::Abort { id } => {
            lock(&shared.reservation_index).remove(&id);
            match st.reservations.remove(&id) {
                None => Completion::Failed { error: ManagerError::UnknownReservation { id } },
                Some(reservation) => {
                    shared.stats.aborted_reservations.fetch_add(1, Ordering::Relaxed);
                    Completion::Aborted { reservation }
                }
            }
        }
        Op::Expire { id, now } => {
            if st.reservations.get(&id).is_some_and(|r| r.expires_at <= now) {
                let reservation = st.reservations.remove(&id);
                lock(&shared.reservation_index).remove(&id);
                shared.stats.expired_reservations.fetch_add(1, Ordering::Relaxed);
                Completion::Expired { reservation }
            } else {
                Completion::Expired { reservation: None }
            }
        }
        Op::Subscribe { action } => {
            let key = abstract_key(shared, st.id, &action);
            let permitted = st.engine.is_permitted(&action);
            let status = st.subscriptions.subscribe(client, action, key, permitted);
            Completion::Subscribed { permitted: status }
        }
        Op::Unsubscribe { action } => {
            st.subscriptions.unsubscribe(client, &action);
            Completion::Unsubscribed
        }
        Op::Query { action } => Completion::Status { permitted: st.engine.is_permitted(&action) },
    };
    fulfil(ticket, completion, wakes);
}

/// Probe + prepare + commit of a single-owner action; `None` is a denial.
fn single_commit(
    shared: &RuntimeShared,
    st: &mut ShardState,
    action: &Action,
    count_grant: bool,
) -> Option<Vec<Notification>> {
    // With no outstanding reservations the reservation-aware probe computes
    // exactly the transition `prepare` computes, so it is skipped — the
    // single-owner worker walks the state once per action, not twice.
    if !st.reservations.is_empty() && !st.permitted_considering_reservations(action) {
        shared.stats.denials.fetch_add(1, Ordering::Relaxed);
        return None;
    }
    let Some(next) = st.engine.prepare(action) else {
        // The reservation-aware probe can pass while the immediate commit is
        // impossible; that is a denial, exactly as in the blocking manager.
        shared.stats.denials.fetch_add(1, Ordering::Relaxed);
        return None;
    };
    if count_grant {
        shared.stats.grants.fetch_add(1, Ordering::Relaxed);
    }
    Some(install_commit(shared, st, action, next, count_grant))
}

/// Installs an already prepared successor on a single-owner shard and does
/// all commit bookkeeping (sequence number, log, subscriptions, stats,
/// delivery).
fn install_commit(
    shared: &RuntimeShared,
    st: &mut ShardState,
    action: &Action,
    next: StateRef,
    _granted: bool,
) -> Vec<Notification> {
    let sub = shared.log_seq.fetch_add(1, Ordering::Relaxed);
    st.engine.commit_prepared(next);
    let engine = &st.engine;
    let mut notes = st.subscriptions.refresh(|a| engine.is_permitted(a));
    st.log.push(((st.epoch, 1, sub), action.clone()));
    notes.extend(refresh_cross_for_shard(shared, st.id, &st.engine));
    shared.stats.confirmations.fetch_add(1, Ordering::Relaxed);
    shared.stats.notifications.fetch_add(notes.len() as u64, Ordering::Relaxed);
    deliver(shared, &notes);
    notes
}

fn process_cross(shared: &RuntimeShared, st: &mut ShardState, task: &CrossTask) {
    let pos = task
        .owners
        .iter()
        .position(|&o| o == st.id)
        .expect("cross task routed to a non-owner shard");
    let n = task.owners.len();

    // ---- Phase 1: the local vote. ----
    let mut prepared: Option<StateRef> = None;
    let mut vote = true;
    let mut removed_here: Option<Reservation> = None;
    let mut bit = false;
    match &task.op {
        CrossOp::Ask { action, .. } => {
            if matches!(shared.variant, ProtocolVariant::Combined) {
                vote = st.reservations.is_empty() || st.permitted_considering_reservations(action);
                if vote {
                    prepared = st.engine.prepare(action);
                    vote = prepared.is_some();
                }
            } else {
                vote = st.permitted_considering_reservations(action);
            }
        }
        CrossOp::Confirm { id } => {
            removed_here = st.reservations.remove(id);
            vote = match &removed_here {
                Some(reservation) => {
                    prepared = st.engine.prepare(&reservation.action);
                    prepared.is_some()
                }
                None => false,
            };
        }
        CrossOp::Abort { id } => {
            removed_here = st.reservations.remove(id);
        }
        CrossOp::Expire { id, now } => {
            if st.reservations.get(id).is_some_and(|r| r.expires_at <= *now) {
                removed_here = st.reservations.remove(id);
            }
        }
        CrossOp::Subscribe { action, .. } | CrossOp::Query { action } => {
            bit = st.engine.is_permitted(action);
        }
    }

    // ---- Rendezvous: deposit the vote; the last voter decides.  While any
    // owner is parked here its engine cannot move — the rendezvous is the
    // queue-based equivalent of holding all owner locks. ----
    let decision = {
        let mut sync = lock(&task.sync);
        sync.votes += 1;
        sync.ok &= vote;
        if let Some(reservation) = &removed_here {
            sync.any_reservation = true;
            if sync.removed.is_none() {
                sync.removed = Some(reservation.clone());
            }
        }
        sync.bits[pos] = bit;
        if sync.votes == n {
            let decision = decide(shared, task, &mut sync);
            sync.decision = Some(decision);
            task.barrier.notify_all();
            decision
        } else {
            while sync.decision.is_none() {
                sync = task.barrier.wait(sync).unwrap_or_else(|e| e.into_inner());
            }
            sync.decision.expect("checked above")
        }
    };

    // ---- Phase 2: apply.  Only commit/reserve decisions have local work;
    // the decider already finished everything else. ----
    match decision {
        Decision::Commit { seq } => {
            let next = prepared.expect("commit decided only when every owner prepared");
            st.engine.commit_prepared(next);
            st.epoch = seq;
            let engine = &st.engine;
            let local_notes = st.subscriptions.refresh(|a| engine.is_permitted(a));
            let bits = cross_bits_for_shard(shared, st);
            if pos == 0 {
                let action = match &task.op {
                    CrossOp::Ask { action, .. } => action.clone(),
                    CrossOp::Confirm { .. } => removed_here
                        .as_ref()
                        .expect("confirm committed, so the primary held the reservation")
                        .action
                        .clone(),
                    _ => unreachable!("only ask/confirm commit"),
                };
                st.log.push(((seq, 0, 0), action));
            }
            let mut sync = lock(&task.sync);
            sync.notes[pos] = local_notes;
            sync.cross_bits.extend(bits);
            sync.applied += 1;
            if sync.applied == n {
                finish_commit(shared, task, &mut sync);
            }
        }
        Decision::Reserve => {
            let reservation =
                lock(&task.sync).granted.clone().expect("reserve decided with a reservation");
            st.reservations.insert(reservation.id, reservation);
            let mut sync = lock(&task.sync);
            sync.applied += 1;
            if sync.applied == n {
                finish_reserve(shared, task, &mut sync);
            }
        }
        Decision::Deny
        | Decision::Unknown
        | Decision::Rejected
        | Decision::Released
        | Decision::Done => {}
    }
}

/// The last voter's verdict.  Non-commit outcomes are finished right here —
/// the other owners only need to observe the decision and move on.
fn decide(shared: &RuntimeShared, task: &CrossTask, sync: &mut CrossSync) -> Decision {
    let complete = |sync: &mut CrossSync, completion: Completion| {
        if let Some(issuer) = sync.ticket.take() {
            issuer.complete(completion);
        }
    };
    match &task.op {
        CrossOp::Ask { client, action } => {
            if !sync.ok {
                shared.stats.denials.fetch_add(1, Ordering::Relaxed);
                complete(sync, Completion::Denied);
                Decision::Deny
            } else if matches!(shared.variant, ProtocolVariant::Combined) {
                Decision::Commit { seq: shared.log_seq.fetch_add(1, Ordering::Relaxed) }
            } else {
                shared.stats.grants.fetch_add(1, Ordering::Relaxed);
                sync.granted = Some(shared.new_reservation(*client, action));
                Decision::Reserve
            }
        }
        CrossOp::Confirm { id } => {
            lock(&shared.reservation_index).remove(id);
            if !sync.any_reservation {
                complete(
                    sync,
                    Completion::Failed { error: ManagerError::UnknownReservation { id: *id } },
                );
                Decision::Unknown
            } else if !sync.ok {
                let action =
                    sync.removed.as_ref().map(|r| r.action.to_string()).unwrap_or_default();
                complete(
                    sync,
                    Completion::Failed { error: ManagerError::RejectedConfirmation { action } },
                );
                Decision::Rejected
            } else {
                Decision::Commit { seq: shared.log_seq.fetch_add(1, Ordering::Relaxed) }
            }
        }
        CrossOp::Abort { id } => {
            lock(&shared.reservation_index).remove(id);
            match sync.removed.clone() {
                Some(reservation) => {
                    shared.stats.aborted_reservations.fetch_add(1, Ordering::Relaxed);
                    complete(sync, Completion::Aborted { reservation });
                }
                None => complete(
                    sync,
                    Completion::Failed { error: ManagerError::UnknownReservation { id: *id } },
                ),
            }
            Decision::Released
        }
        CrossOp::Expire { id, .. } => {
            let reservation = sync.removed.clone();
            if reservation.is_some() {
                lock(&shared.reservation_index).remove(id);
                shared.stats.expired_reservations.fetch_add(1, Ordering::Relaxed);
            }
            complete(sync, Completion::Expired { reservation });
            Decision::Released
        }
        CrossOp::Subscribe { client, action } => {
            // Every other owner is parked at the rendezvous, so the bits are
            // a consistent snapshot — the same guarantee the blocking
            // manager gets from holding all owner locks while registering.
            let permitted = sync.bits.iter().all(|b| *b);
            let mut cross = lock(&shared.cross_subscriptions);
            for &owner in &task.owners {
                cross.by_shard.entry(owner).or_default().insert(action.clone());
            }
            let entry = cross.entries.entry(action.clone()).or_insert_with(|| {
                shared.cross_entry_count.fetch_add(1, Ordering::Relaxed);
                crate::manager::CrossEntry {
                    owners: task.owners.clone(),
                    bits: sync.bits.clone(),
                    clients: Vec::new(),
                    permitted,
                }
            });
            if !entry.clients.contains(client) {
                entry.clients.push(*client);
                entry.clients.sort_unstable();
            }
            let status = entry.permitted;
            drop(cross);
            complete(sync, Completion::Subscribed { permitted: status });
            Decision::Done
        }
        CrossOp::Query { .. } => {
            let permitted = sync.bits.iter().all(|b| *b);
            complete(sync, Completion::Status { permitted });
            Decision::Done
        }
    }
}

/// Central bookkeeping after every owner applied a commit: merge the
/// cross-subscription bits, count the stats, deliver the notifications, and
/// fulfil the ticket.
fn finish_commit(shared: &RuntimeShared, task: &CrossTask, sync: &mut CrossSync) {
    let mut notes: Vec<Notification> = sync.notes.iter_mut().flat_map(std::mem::take).collect();
    notes.extend(merge_cross_bits(shared, &sync.cross_bits));
    shared.stats.confirmations.fetch_add(1, Ordering::Relaxed);
    if matches!(task.op, CrossOp::Ask { .. }) {
        shared.stats.grants.fetch_add(1, Ordering::Relaxed);
    }
    shared.stats.notifications.fetch_add(notes.len() as u64, Ordering::Relaxed);
    deliver(shared, &notes);
    if let Some(issuer) = sync.ticket.take() {
        let completion = match &task.op {
            CrossOp::Ask { .. } => Completion::Granted { reservation: 0 },
            CrossOp::Confirm { .. } => Completion::Confirmed { notifications: notes },
            _ => unreachable!("only ask/confirm commit"),
        };
        issuer.complete(completion);
    }
}

/// Central bookkeeping after every owner replicated a granted reservation.
fn finish_reserve(shared: &RuntimeShared, task: &CrossTask, sync: &mut CrossSync) {
    let reservation = sync.granted.clone().expect("reserve decided with a reservation");
    lock(&shared.reservation_index).insert(reservation.id, task.owners.clone());
    if reservation.expires_at != u64::MAX {
        lock(&shared.timers).schedule(
            reservation.expires_at,
            ExpiryEvent { id: reservation.id, owners: task.owners.clone() },
        );
    }
    if let Some(issuer) = sync.ticket.take() {
        issuer.complete(Completion::Granted { reservation: reservation.id });
    }
}

/// The refreshed (action, shard, permitted) bits for every cross-subscribed
/// action this shard co-owns — computed on the worker's own engine.
fn cross_bits_for_shard(shared: &RuntimeShared, st: &ShardState) -> Vec<(Action, usize, bool)> {
    if shared.cross_entry_count.load(Ordering::Relaxed) == 0 {
        return Vec::new();
    }
    let co_owned: Vec<Action> = {
        let cross = lock(&shared.cross_subscriptions);
        match cross.by_shard.get(&st.id) {
            Some(actions) => actions.iter().cloned().collect(),
            None => Vec::new(),
        }
    };
    co_owned
        .into_iter()
        .map(|action| {
            let permitted = st.engine.is_permitted(&action);
            (action, st.id, permitted)
        })
        .collect()
}

/// Writes deposited per-owner bits into the cross-subscription registry and
/// returns notifications for entries whose conjunction flipped.
fn merge_cross_bits(
    shared: &RuntimeShared,
    deposits: &[(Action, usize, bool)],
) -> Vec<Notification> {
    if deposits.is_empty() {
        return Vec::new();
    }
    let mut cross = lock(&shared.cross_subscriptions);
    for (action, owner, bit) in deposits {
        if let Some(entry) = cross.entries.get_mut(action) {
            if let Some(pos) = entry.owners.iter().position(|o| o == owner) {
                entry.bits[pos] = *bit;
            }
        }
    }
    let mut touched: Vec<Action> = deposits.iter().map(|(a, _, _)| a.clone()).collect();
    touched.sort();
    touched.dedup();
    let mut out = Vec::new();
    for action in touched {
        let Some(entry) = cross.entries.get_mut(&action) else { continue };
        let now = entry.bits.iter().all(|b| *b);
        if now != entry.permitted {
            entry.permitted = now;
            for client in &entry.clients {
                out.push(Notification { client: *client, action: action.clone(), permitted: now });
            }
        }
    }
    out
}

/// Single-owner version of the cross-subscription refresh: a commit on this
/// shard may flip entries it co-owns.
fn refresh_cross_for_shard(
    shared: &RuntimeShared,
    shard_id: usize,
    engine: &Engine,
) -> Vec<Notification> {
    if shared.cross_entry_count.load(Ordering::Relaxed) == 0 {
        return Vec::new();
    }
    let mut cross = lock(&shared.cross_subscriptions);
    if cross.entries.is_empty() {
        return Vec::new();
    }
    let Some(actions) = cross.by_shard.get(&shard_id).cloned() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for action in actions {
        let Some(entry) = cross.entries.get_mut(&action) else { continue };
        if let Some(pos) = entry.owners.iter().position(|&o| o == shard_id) {
            entry.bits[pos] = engine.is_permitted(&action);
        }
        let now = entry.bits.iter().all(|b| *b);
        if now != entry.permitted {
            entry.permitted = now;
            for client in &entry.clients {
                out.push(Notification { client: *client, action: action.clone(), permitted: now });
            }
        }
    }
    out
}

/// Sends notifications to the registered per-client channels.
fn deliver(shared: &RuntimeShared, notes: &[Notification]) {
    if notes.is_empty() {
        return;
    }
    let channels = lock(&shared.notification_channels);
    for note in notes {
        if let Some(channel) = channels.get(&note.client) {
            let _ = channel.send(note.clone());
        }
    }
}

impl RuntimeShared {
    fn new_reservation(&self, client: ClientId, action: &Action) -> Reservation {
        let now = self.clock.load(Ordering::Relaxed);
        let expires_at = match self.variant {
            ProtocolVariant::Simple => u64::MAX,
            ProtocolVariant::Leased { lease } => now + lease,
            ProtocolVariant::Combined => unreachable!("combined grants commit immediately"),
        };
        Reservation {
            id: self.next_reservation.fetch_add(1, Ordering::Relaxed),
            action: action.clone(),
            client,
            granted_at: now,
            expires_at,
        }
    }
}

/// The abstract alphabet entry of a shard covering the action — the index
/// key of the shard's subscription registry.
fn abstract_key(shared: &RuntimeShared, shard_id: usize, action: &Action) -> Action {
    shared
        .router
        .alphabet(shard_id)
        .actions()
        .find(|a| a.matches_concrete(action))
        .cloned()
        .unwrap_or_else(|| action.clone())
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_core::{parse, Value};

    fn call(p: i64, x: &str) -> Action {
        Action::concrete("call", [Value::int(p), Value::sym(x)])
    }

    fn perform(p: i64, x: &str) -> Action {
        Action::concrete("perform", [Value::int(p), Value::sym(x)])
    }

    fn patient_constraint() -> Expr {
        parse("all p { (some x { call(p, x) - perform(p, x) })* }").unwrap()
    }

    fn coupled_constraint() -> Expr {
        parse(
            "((some p { call_a(p) - perform_a(p) })* - audit)* \
             @ ((some p { call_b(p) - perform_b(p) })* - audit)* \
             @ ((some p { call_c(p) - perform_c(p) })* - audit)* \
             @ ((some p { call_d(p) - perform_d(p) })* - audit)*",
        )
        .unwrap()
    }

    fn dept_action(kind: &str, dept: char, p: i64) -> Action {
        Action::concrete(&format!("{kind}_{dept}"), [Value::int(p)])
    }

    fn audit() -> Action {
        Action::nullary("audit")
    }

    #[test]
    fn ask_confirm_cycle_over_tickets() {
        let runtime = ManagerRuntime::new(&patient_constraint()).unwrap();
        let session = runtime.session(1);
        let r = session.ask_blocking(&call(1, "sono")).unwrap().expect("granted");
        session.confirm_blocking(r).unwrap();
        assert_eq!(session.ask_blocking(&call(1, "endo")).unwrap(), None, "mid-examination");
        let r = session.ask_blocking(&perform(1, "sono")).unwrap().unwrap();
        session.confirm_blocking(r).unwrap();
        let report = runtime.shutdown().unwrap();
        assert_eq!(report.log, vec![call(1, "sono"), perform(1, "sono")]);
        assert_eq!(report.stats.grants, 2);
        assert_eq!(report.stats.denials, 1);
        assert_eq!(report.stats.confirmations, 2);
    }

    #[test]
    fn tickets_pipeline_without_blocking() {
        let runtime =
            ManagerRuntime::with_protocol(&patient_constraint(), ProtocolVariant::Combined)
                .unwrap();
        let session = runtime.session(1);
        // Submit a full schedule before waiting on anything.
        let tickets: Vec<Ticket<Completion>> = (1..=50)
            .flat_map(|p| [session.execute(&call(p, "sono")), session.execute(&perform(p, "sono"))])
            .collect();
        for t in &tickets {
            assert!(matches!(t.wait(), Completion::Executed { .. }));
        }
        assert_eq!(runtime.stats().confirmations, 100);
        assert_eq!(runtime.log().len(), 100);
    }

    #[test]
    fn then_callbacks_fire_on_completion() {
        let runtime =
            ManagerRuntime::with_protocol(&patient_constraint(), ProtocolVariant::Combined)
                .unwrap();
        let session = runtime.session(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let t = session.execute(&call(1, "sono"));
        t.then(move |c| {
            if matches!(c, Completion::Executed { .. }) {
                h.fetch_add(1, Ordering::SeqCst);
            }
        });
        t.wait();
        // The callback runs on the worker thread right after fulfilment;
        // give it a moment.
        for _ in 0..200 {
            if hits.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn leases_expire_through_the_timer_wheel() {
        let expr = parse("mult 1 { (some p { call(p, sono) - perform(p, sono) })* }").unwrap();
        let runtime =
            ManagerRuntime::with_protocol(&expr, ProtocolVariant::Leased { lease: 5 }).unwrap();
        let session = runtime.session(1);
        let r = session.ask_blocking(&call(1, "sono")).unwrap().unwrap();
        assert_eq!(session.ask_blocking(&call(2, "sono")).unwrap(), None, "slot reserved");
        assert!(runtime.advance_time(4).is_empty(), "lease not yet due");
        let expired = runtime.advance_time(2);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].id, r);
        assert_eq!(runtime.stats().expired_reservations, 1);
        assert!(session.ask_blocking(&call(2, "sono")).unwrap().is_some(), "slot released");
        assert!(matches!(
            session.confirm_blocking(r),
            Err(ManagerError::UnknownReservation { .. })
        ));
    }

    #[test]
    fn cross_shard_execute_commits_atomically() {
        let runtime =
            ManagerRuntime::with_protocol(&coupled_constraint(), ProtocolVariant::Combined)
                .unwrap();
        assert_eq!(runtime.shard_count(), 4);
        assert!(runtime.is_cross_shard(&audit()));
        let session = runtime.session(1);
        assert!(session.execute_blocking(&audit()).unwrap().is_some());
        assert!(session.execute_blocking(&dept_action("call", 'b', 7)).unwrap().is_some());
        assert!(session.execute_blocking(&audit()).unwrap().is_none(), "dept b mid-case");
        assert!(session.execute_blocking(&dept_action("perform", 'b', 7)).unwrap().is_some());
        assert!(session.execute_blocking(&audit()).unwrap().is_some());
        let log = runtime.log();
        assert_eq!(log.len(), 4);
        assert_eq!(log[0], audit());
        assert_eq!(log[3], audit());
        assert_eq!(runtime.stats().confirmations, 4);
    }

    /// Coupled components whose shared `audit` is terminal: once the audit
    /// runs the ensemble closes, so a pending audit reservation vetoes every
    /// later local call — the shape that makes release observable.
    fn terminal_coupled_constraint() -> Expr {
        parse(
            "((some p { call_a(p) - perform_a(p) })* - audit) \
             @ ((some p { call_b(p) - perform_b(p) })* - audit) \
             @ ((some p { call_c(p) - perform_c(p) })* - audit) \
             @ ((some p { call_d(p) - perform_d(p) })* - audit)",
        )
        .unwrap()
    }

    #[test]
    fn cross_shard_reservations_replicate_and_release() {
        let runtime = ManagerRuntime::new(&terminal_coupled_constraint()).unwrap();
        let session = runtime.session(1);
        let r = session.ask_blocking(&audit()).unwrap().expect("granted");
        // The audit reservation vetoes local grants on every owner.
        assert_eq!(session.ask_blocking(&dept_action("call", 'a', 1)).unwrap(), None);
        assert_eq!(session.ask_blocking(&dept_action("call", 'd', 1)).unwrap(), None);
        let aborted = session.abort_blocking(r).unwrap();
        assert_eq!(aborted.action, audit());
        assert_eq!(runtime.stats().aborted_reservations, 1);
        assert!(session.ask_blocking(&dept_action("call", 'a', 1)).unwrap().is_some());
        assert!(matches!(
            session.confirm_blocking(r),
            Err(ManagerError::UnknownReservation { .. })
        ));
        assert_eq!(runtime.log().len(), 0);
    }

    #[test]
    fn subscriptions_notify_via_session_channels() {
        let runtime =
            ManagerRuntime::with_protocol(&patient_constraint(), ProtocolVariant::Combined)
                .unwrap();
        let worklist = runtime.session(20);
        let actor = runtime.session(10);
        assert!(worklist.subscribe_blocking(&call(1, "endo")).unwrap());
        assert!(actor.execute_blocking(&call(1, "sono")).unwrap().is_some());
        let notes = worklist.poll_notifications();
        assert_eq!(notes.len(), 1);
        assert!(!notes[0].permitted);
        assert_eq!(notes[0].action, call(1, "endo"));
        assert_eq!(runtime.subscription_count(), 1);
        worklist.unsubscribe(&call(1, "endo")).wait();
        assert_eq!(runtime.subscription_count(), 0);
    }

    #[test]
    fn cross_shard_subscriptions_report_the_conjunction() {
        let runtime =
            ManagerRuntime::with_protocol(&coupled_constraint(), ProtocolVariant::Combined)
                .unwrap();
        let watcher = runtime.session(9);
        let actor = runtime.session(1);
        assert!(watcher.subscribe_blocking(&audit()).unwrap(), "all departments idle");
        assert!(actor.execute_blocking(&dept_action("call", 'c', 1)).unwrap().is_some());
        let notes = watcher.poll_notifications();
        assert!(notes.iter().any(|n| n.action == audit() && !n.permitted));
        assert!(actor.execute_blocking(&dept_action("perform", 'c', 1)).unwrap().is_some());
        let notes = watcher.poll_notifications();
        assert!(notes.iter().any(|n| n.action == audit() && n.permitted));
    }

    #[test]
    fn unknown_actions_and_non_concrete_actions_fail_like_the_blocking_manager() {
        let runtime = ManagerRuntime::new(&patient_constraint()).unwrap();
        let session = runtime.session(1);
        let unknown = Action::nullary("unknown");
        assert_eq!(session.ask_blocking(&unknown).unwrap(), None);
        assert_eq!(session.execute_blocking(&unknown).unwrap(), None);
        assert!(!session.is_permitted_blocking(&unknown));
        assert!(!runtime.controls(&unknown));
        let abstract_action = Action::new("call", [ix_core::Term::Param(ix_core::Param::new("p"))]);
        assert!(matches!(
            session.ask_blocking(&abstract_action),
            Err(ManagerError::NonConcreteAction { .. })
        ));
        assert!(matches!(
            session.confirm_blocking(99),
            Err(ManagerError::UnknownReservation { id: 99 })
        ));
        assert_eq!(runtime.stats().denials, 2);
    }

    #[test]
    fn durable_submissions_are_redelivered_after_a_crash() {
        let runtime = ManagerRuntime::with_options(
            &patient_constraint(),
            RuntimeOptions {
                variant: ProtocolVariant::Combined,
                durable: true,
                clock: ClockMode::Virtual,
            },
        )
        .unwrap();
        let session = runtime.session(1);
        // First submission: completed AND acknowledged.
        assert!(session.execute_blocking(&call(1, "sono")).unwrap().is_some());
        assert!(runtime.acknowledge_submission());
        // Second submission: completed but the client "crashes" before
        // acknowledging the completion.
        assert!(session.execute_blocking(&perform(1, "sono")).unwrap().is_some());
        assert_eq!(runtime.unacknowledged_submissions(), 1);
        // Redelivery executes it again — at-least-once: this time the
        // perform is denied (already committed), and the log is unchanged.
        let redelivered = runtime.crash_redeliver();
        assert_eq!(redelivered.len(), 1);
        assert_eq!(redelivered[0].wait(), Completion::Denied);
        assert_eq!(runtime.log(), vec![call(1, "sono"), perform(1, "sono")]);
        assert_eq!(runtime.stats().asks, 3, "the redelivery is a real submission");
        // The redelivered completion is acknowledged now; the journal
        // drains.
        assert!(runtime.acknowledge_submission());
        assert_eq!(runtime.unacknowledged_submissions(), 0);
        assert!(runtime.crash_redeliver().is_empty());
    }

    #[test]
    fn wall_clock_mode_expires_leases_without_explicit_ticks() {
        let expr = parse("mult 1 { (some p { call(p, sono) - perform(p, sono) })* }").unwrap();
        let runtime = ManagerRuntime::with_options(
            &expr,
            RuntimeOptions {
                variant: ProtocolVariant::Leased { lease: 2 },
                durable: false,
                clock: ClockMode::Wall { tick: Duration::from_millis(2) },
            },
        )
        .unwrap();
        let session = runtime.session(1);
        let _r = session.ask_blocking(&call(1, "sono")).unwrap().unwrap();
        // The ticker advances the clock; within a generous window the lease
        // must expire and release the slot.
        let mut freed = false;
        for _ in 0..500 {
            if session.ask_blocking(&call(2, "sono")).unwrap().is_some() {
                freed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(freed, "wall-clock ticker never expired the lease");
        assert_eq!(runtime.stats().expired_reservations, 1);
        runtime.shutdown().unwrap();
    }

    #[test]
    fn shutdown_fails_straggling_submissions_instead_of_hanging() {
        let runtime = ManagerRuntime::new(&patient_constraint()).unwrap();
        let session = runtime.session(1);
        runtime.shutdown().unwrap();
        match session.execute(&call(1, "sono")).wait() {
            Completion::Failed { error: ManagerError::Disconnected } => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }
}

//! The optimization function ρ of the state model (Secs. 4–5).
//!
//! ρ maps a state to an equivalent but less complex state: alternatives whose
//! components are invalid are removed (they do not represent reasonable
//! walker positions), duplicate alternatives are collapsed, and — as Sec. 5
//! describes — invalid states are recognized eagerly and mapped to the
//! special null state, which makes the separate validity predicate ψ
//! dispensable in the optimized engine.  The partial-word sets Ψ are
//! prefix-closed, so once a sub-state is invalid no continuation can revive
//! it and dropping it preserves both ψ and ϕ.
//!
//! The production transition function [`crate::trans::trans`] *fuses* ρ into
//! the copy-on-write rebuild — it never calls this standalone pass.  This
//! module remains as the reference ρ: composed with the pure τ it forms
//! [`crate::trans::trans_reference`], the implementation the property suites
//! compare the fused function against, and the ablation experiments switch
//! it off (see [`crate::trans::TransitionOptions`]) to reproduce the
//! worst-case state growth of Sec. 6.

use crate::predicates::is_valid;
use crate::state::{QuantState, Shared, State};

/// The optimization function ρ: prunes invalid alternatives, deduplicates,
/// and collapses invalid states to [`State::Null`].
pub fn optimize(state: &State) -> State {
    if !is_valid(state) {
        return State::Null;
    }
    let opt = |s: &Shared<State>| Shared::new(optimize(s));
    match state {
        State::Null | State::Epsilon | State::AtomFresh { .. } | State::AtomDone => state.clone(),
        State::Option { at_start, body } => State::Option { at_start: *at_start, body: opt(body) },
        State::Seq { left, rights, right_init } => {
            let mut new_rights: Vec<Shared<State>> =
                rights.iter().filter(|r| is_valid(r)).map(opt).collect();
            new_rights.sort();
            new_rights.dedup();
            State::Seq { left: opt(left), rights: new_rights, right_init: right_init.clone() }
        }
        State::SeqIter { boundary, runs, body_init } => {
            let mut new_runs: Vec<Shared<State>> =
                runs.iter().filter(|r| is_valid(r)).map(opt).collect();
            new_runs.sort();
            new_runs.dedup();
            State::SeqIter { boundary: *boundary, runs: new_runs, body_init: body_init.clone() }
        }
        State::Par { alts } => {
            let mut new_alts: Vec<(Shared<State>, Shared<State>)> = alts
                .iter()
                .filter(|(l, r)| is_valid(l) && is_valid(r))
                .map(|(l, r)| (opt(l), opt(r)))
                .collect();
            new_alts.sort();
            new_alts.dedup();
            State::Par { alts: new_alts }
        }
        State::ParIter { alts, body_init } => {
            State::ParIter { alts: prune_thread_alts(alts), body_init: body_init.clone() }
        }
        State::Or { left, right } => State::Or { left: opt(left), right: opt(right) },
        State::And { left, right } => State::And { left: opt(left), right: opt(right) },
        State::Sync { left, right, left_alpha, right_alpha } => State::Sync {
            left: opt(left),
            right: opt(right),
            left_alpha: left_alpha.clone(),
            right_alpha: right_alpha.clone(),
        },
        State::SomeQ(q) => State::SomeQ(optimize_quant(q)),
        State::AllQ(q) => State::AllQ(optimize_quant(q)),
        State::SyncQ(q) => State::SyncQ(optimize_quant(q)),
        State::ParQ { param, body_accepts_epsilon, alts, body_init } => {
            let mut new_alts: Vec<_> = alts
                .iter()
                .filter(|branches| branches.values().all(|s| is_valid(s)))
                .map(|branches| branches.iter().map(|(v, s)| (*v, opt(s))).collect())
                .collect();
            new_alts.sort();
            new_alts.dedup();
            State::ParQ {
                param: *param,
                body_accepts_epsilon: *body_accepts_epsilon,
                alts: new_alts,
                body_init: body_init.clone(),
            }
        }
        State::Mult { capacity, body_accepts_epsilon, alts, body_init } => State::Mult {
            capacity: *capacity,
            body_accepts_epsilon: *body_accepts_epsilon,
            alts: prune_thread_alts(alts),
            body_init: body_init.clone(),
        },
    }
}

/// Prunes alternatives that contain an invalid thread, optimizes the
/// survivors and deduplicates.
fn prune_thread_alts(alts: &[Vec<Shared<State>>]) -> Vec<Vec<Shared<State>>> {
    let mut out: Vec<Vec<Shared<State>>> = alts
        .iter()
        .filter(|threads| threads.iter().all(|t| is_valid(t)))
        .map(|threads| {
            let mut t: Vec<Shared<State>> =
                threads.iter().map(|s| Shared::new(optimize(s))).collect();
            t.sort();
            t
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Optimizes a quantifier state.  For conjunctive quantifiers (conjunction
/// and synchronization quantifier) an invalid branch or template makes the
/// whole state invalid, which the top-level validity check already turned
/// into `Null`; the per-branch optimization below therefore only tidies up.
/// For the disjunction quantifier, invalid branches are kept (as `Null`)
/// rather than removed: removing them could let a later re-instantiation
/// from the (still valid) template resurrect a branch that is already dead.
fn optimize_quant(q: &QuantState) -> QuantState {
    QuantState {
        param: q.param,
        template: Shared::new(optimize(&q.template)),
        branches: q.branches.iter().map(|(v, s)| (*v, Shared::new(optimize(s)))).collect(),
        scope: q.scope.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::init;
    use crate::predicates::{is_final, is_valid};
    use ix_core::parse;

    fn sh(s: State) -> Shared<State> {
        Shared::new(s)
    }

    #[test]
    fn invalid_states_collapse_to_null() {
        let s = State::Par { alts: vec![(sh(State::Null), sh(State::AtomDone))] };
        assert_eq!(optimize(&s), State::Null);
        assert_eq!(optimize(&State::Null), State::Null);
    }

    #[test]
    fn pruning_removes_dead_alternatives_but_keeps_live_ones() {
        let s = State::Par {
            alts: vec![
                (sh(State::AtomDone), sh(State::Null)),
                (sh(State::AtomDone), sh(State::Epsilon)),
                (sh(State::AtomDone), sh(State::Epsilon)),
            ],
        };
        let o = optimize(&s);
        match &o {
            State::Par { alts } => assert_eq!(alts.len(), 1, "pruned and deduplicated"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(is_valid(&s), is_valid(&o));
        assert_eq!(is_final(&s), is_final(&o));
    }

    #[test]
    fn optimization_preserves_predicates_on_initial_states() {
        for src in [
            "a - b",
            "(a + b)*",
            "a | b",
            "a#",
            "mult 3 { a? }",
            "some p { a(p) }",
            "all p { a(p)? }",
            "sync x { (a(x) - b(x))* }",
        ] {
            let e = parse(src).unwrap();
            let s = init(&e).unwrap();
            let o = optimize(&s);
            assert_eq!(is_valid(&s), is_valid(&o), "ψ preserved for {src}");
            assert_eq!(is_final(&s), is_final(&o), "ϕ preserved for {src}");
            assert_eq!(s, o, "ρ(σ(x)) = σ(x): initial states are already optimal ({src})");
        }
    }

    #[test]
    fn sequences_drop_null_right_runs() {
        let s = State::Seq {
            left: sh(State::AtomDone),
            rights: vec![sh(State::Null), sh(State::AtomDone)],
            right_init: sh(crate::init::initial_state(&ix_core::builder::act0("b"))),
        };
        match optimize(&s) {
            State::Seq { rights, .. } => assert_eq!(rights, vec![sh(State::AtomDone)]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn optimization_reduces_size_but_never_changes_meaning() {
        let s = State::SeqIter {
            boundary: false,
            runs: vec![sh(State::Null), sh(State::Null), sh(State::AtomDone)],
            body_init: sh(crate::init::initial_state(&ix_core::builder::act0("a"))),
        };
        let o = optimize(&s);
        assert!(o.size() < s.size());
        assert_eq!(is_valid(&o), is_valid(&s));
    }
}

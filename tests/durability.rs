//! Integration tests of the durability subsystem: sharded copy-on-write
//! checkpoints, the file-backed write-ahead log, and log-tail crash
//! recovery.
//!
//! The central property: a runtime recovered from its vault is
//! *observationally identical* to the uncrashed runtime — same merged log,
//! same statistics, same clock, same pending leases, and it decides the
//! same way afterwards.  The workloads are driven through one session with
//! every ticket awaited, so both runs follow the same deterministic
//! schedule and the comparison is exact, not statistical.

use ix_core::{parse, Action, Expr, Value};
use ix_manager::{
    inspect_vault, ClockMode, Completion, FsyncPolicy, ManagerRuntime, MemVault, ProtocolVariant,
    RuntimeOptions, Vault,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn coupled_constraint() -> Expr {
    parse(
        "((some p { call_a(p) - perform_a(p) })* - audit)* \
         @ ((some p { call_b(p) - perform_b(p) })* - audit)* \
         @ ((some p { call_c(p) - perform_c(p) })* - audit)*",
    )
    .unwrap()
}

fn dept(kind: &str, d: usize, p: i64) -> Action {
    let name = ["a", "b", "c"][d % 3];
    Action::concrete(&format!("{kind}_{name}"), [Value::int(p)])
}

fn audit() -> Action {
    Action::nullary("audit")
}

fn leased_options() -> RuntimeOptions {
    RuntimeOptions {
        variant: ProtocolVariant::Leased { lease: 6 },
        clock: ClockMode::Virtual,
        ..RuntimeOptions::default()
    }
}

/// One step of the randomized workload.  Every variant is deterministic
/// when driven through a single session with awaited tickets.
#[derive(Clone, Debug)]
enum Op {
    /// Execute a call/perform pair on a department (Ask + Confirm twice).
    Pair(usize, i64),
    /// Execute the cross-shard audit barrier.
    Audit,
    /// Ask for a call and leave the lease dangling.
    Dangle(usize, i64),
    /// Ask for a call and abort the grant.
    AskAbort(usize, i64),
    /// Subscribe a client to a call action.
    Subscribe(u64, usize, i64),
    /// Advance the virtual clock (expires due leases synchronously).
    Tick(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..3, 1u64..4).prop_map(|(d, p)| Op::Pair(d, p as i64)),
        Just(Op::Audit),
        (0usize..3, 4u64..7).prop_map(|(d, p)| Op::Dangle(d, p as i64)),
        (0usize..3, 4u64..7).prop_map(|(d, p)| Op::AskAbort(d, p as i64)),
        (10u64..14, 0usize..3, 1u64..4).prop_map(|(c, d, p)| Op::Subscribe(c, d, p as i64)),
        (1u64..4).prop_map(Op::Tick),
    ]
}

/// Replays the workload on a runtime through one session, awaiting every
/// completion, confirming what each variant says to confirm.  Optionally
/// cuts a checkpoint after `checkpoint_after` ops.
fn apply_ops(runtime: &ManagerRuntime, ops: &[Op], checkpoint_after: Option<usize>) {
    let session = runtime.session(1);
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Pair(d, p) => {
                for kind in ["call", "perform"] {
                    if let Some(r) = session.ask_blocking(&dept(kind, *d, *p)).unwrap() {
                        session.confirm_blocking(r).unwrap();
                    }
                }
            }
            Op::Audit => {
                if let Some(r) = session.ask_blocking(&audit()).unwrap() {
                    session.confirm_blocking(r).unwrap();
                }
            }
            Op::Dangle(d, p) => {
                let _ = session.ask_blocking(&dept("call", *d, *p)).unwrap();
            }
            Op::AskAbort(d, p) => {
                if let Some(r) = session.ask_blocking(&dept("call", *d, *p)).unwrap() {
                    session.abort_blocking(r).unwrap();
                }
            }
            Op::Subscribe(client, d, p) => {
                let probe = runtime.session(*client);
                probe.subscribe_blocking(&dept("call", *d, *p)).unwrap();
            }
            Op::Tick(delta) => {
                runtime.advance_time(*delta);
            }
        }
        if checkpoint_after == Some(i) {
            runtime.checkpoint().unwrap();
        }
    }
}

/// Everything we compare between the uncrashed reference and the recovered
/// runtime.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    log: Vec<Action>,
    stats: ix_manager::ManagerStats,
    clock: u64,
    subscriptions: usize,
    expired: Vec<(u64, Action, u64)>,
    post_audit: bool,
}

fn observe(runtime: &ManagerRuntime) -> Observation {
    let log = runtime.log();
    let stats_before = runtime.stats();
    let clock = runtime.now();
    let subscriptions = runtime.subscription_count();
    // Probe the pending leases: everything still outstanding expires inside
    // this horizon (lease 6, ticks <= 3 per op), in deadline order.
    let expired =
        runtime.advance_time(20).into_iter().map(|r| (r.id, r.action, r.expires_at)).collect();
    // And the recovered engines must decide like the uncrashed ones.
    let session = runtime.session(99);
    let post_audit = match session.ask_blocking(&audit()).unwrap() {
        Some(r) => {
            session.confirm_blocking(r).unwrap();
            true
        }
        None => false,
    };
    Observation { log, stats: stats_before, clock, subscriptions, expired, post_audit }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole property: for a random workload and a random
    /// checkpoint position (including none), crash-recovering from the
    /// vault reproduces the uncrashed runtime exactly.
    #[test]
    fn recovered_runtime_matches_uncrashed_runtime(
        ops in proptest::collection::vec(op_strategy(), 1..28),
        checkpoint_at in 0usize..32,
    ) {
        let checkpoint_after =
            if checkpoint_at < ops.len() { Some(checkpoint_at) } else { None };

        // Uncrashed reference: identical schedule, no vault.
        let reference = ManagerRuntime::with_options(&coupled_constraint(), leased_options())
            .unwrap();
        apply_ops(&reference, &ops, None);
        let expected = observe(&reference);
        reference.shutdown().unwrap();

        // Durable run: same schedule into a vault, checkpoint mid-flight,
        // then crash (shutdown journals nothing) and recover.
        let vault: Arc<dyn Vault> = Arc::new(MemVault::new());
        let durable = ManagerRuntime::with_durability(
            &coupled_constraint(), leased_options(), Arc::clone(&vault),
        ).unwrap();
        apply_ops(&durable, &ops, checkpoint_after);
        durable.shutdown().unwrap();

        let recovered = ManagerRuntime::recover(vault, leased_options()).unwrap();
        let actual = observe(&recovered);
        recovered.shutdown().unwrap();

        prop_assert_eq!(actual, expected);
    }
}

/// Fault-injected recovery drill: run a deterministic workload (single and
/// cross-shard commits with checkpoints mid-flight) on a [`FaultVault`],
/// then for a spread of scripted crash points — I/O error cuts, torn final
/// records, fsync lies — recover from what the fault left on "disk" and
/// require the recovered log to be a *prefix* of the acknowledged commit
/// sequence, with the runtime still live afterwards.  No torn cross-shard
/// chain may be half-applied: prefix equality over the merged log rules
/// that out, because a half-applied audit would commit out of order on one
/// shard's segment.
#[test]
fn fault_injected_crash_points_recover_to_acknowledged_prefix() {
    use ix_durable::{FaultPlan, FaultVault};

    let fault = Arc::new(FaultVault::new());
    let vault: Arc<dyn Vault> = Arc::clone(&fault) as Arc<dyn Vault>;
    let runtime =
        ManagerRuntime::with_durability(&coupled_constraint(), leased_options(), vault).unwrap();
    let session = runtime.session(1);
    let mut committed = Vec::new();
    for i in 0..12i64 {
        for kind in ["call", "perform"] {
            let action = dept(kind, (i % 3) as usize, 1 + i % 2);
            if let Some(r) = session.ask_blocking(&action).unwrap() {
                session.confirm_blocking(r).unwrap();
                committed.push(action);
            }
        }
        if i % 4 == 3 {
            // The cross-shard barrier plus a checkpoint: blob saves and
            // stream truncations land in the fault journal too.
            if let Some(r) = session.ask_blocking(&audit()).unwrap() {
                session.confirm_blocking(r).unwrap();
                committed.push(audit());
            }
            runtime.checkpoint().unwrap();
        }
    }
    assert_eq!(runtime.log(), committed);
    runtime.shutdown().unwrap();

    let max_ops = fault.ops();
    assert!(max_ops > 40, "workload must journal enough mutations to drill ({max_ops})");
    for seed in 0..48u64 {
        let plan = FaultPlan::seeded(seed, max_ops);
        let disk: Arc<dyn Vault> = Arc::new(fault.surviving(&plan));
        let recovered = ManagerRuntime::recover(disk, leased_options())
            .unwrap_or_else(|e| panic!("recovery failed under {plan:?}: {e}"));
        let log = recovered.log();
        assert!(
            log.len() <= committed.len() && log == committed[..log.len()],
            "recovered log is not a prefix of the acknowledged commits under {plan:?}:\n\
             recovered: {log:?}"
        );
        // The survivor still serves: a fresh decision completes.
        let probe = recovered.session(7);
        probe.ask_blocking(&dept("call", 0, 5)).unwrap();
        recovered.shutdown().unwrap();
    }
}

/// A long-lived runtime that keeps acknowledging its durable submissions
/// must not retain the whole journal: the queue stream compacts to
/// O(unacknowledged), and recovery from the compacted vault still works.
#[test]
fn queue_journal_stays_bounded_by_unacknowledged() {
    use ix_durable::QUEUE_STREAM;

    let vault: Arc<dyn Vault> = Arc::new(MemVault::new());
    let options = RuntimeOptions { durable: true, ..leased_options() };
    let runtime =
        ManagerRuntime::with_durability(&coupled_constraint(), options, Arc::clone(&vault))
            .unwrap();
    let session = runtime.session(1);
    for i in 0..400u64 {
        let p = 1 + (i % 3) as i64;
        for kind in ["call", "perform"] {
            if let Some(r) = session.ask_blocking(&dept(kind, 0, p)).unwrap() {
                session.confirm_blocking(r).unwrap();
            }
        }
        // The client durably recorded the completions: trim the journal.
        while runtime.acknowledge_submission() {}
    }
    assert_eq!(runtime.unacknowledged_submissions(), 0);
    let appended = vault.stream_len(QUEUE_STREAM);
    let surviving = vault.read_from(QUEUE_STREAM, 0).len() as u64;
    assert!(appended >= 3000, "workload journaled real traffic ({appended} records)");
    assert!(
        surviving < 700,
        "queue stream must compact to O(unacknowledged): {surviving} of {appended} retained"
    );

    // The compacted vault is still a complete recovery source.
    let log = runtime.log();
    runtime.shutdown().unwrap();
    let recovered = ManagerRuntime::recover(vault, options).unwrap();
    assert_eq!(recovered.log(), log);
    recovered.shutdown().unwrap();
}

/// A lease granted before the crash re-arms on the recovered timer wheel:
/// it still blocks conflicting asks, and firing it frees the slot.
#[test]
fn recovered_lease_still_blocks_and_then_expires() {
    let vault: Arc<dyn Vault> = Arc::new(MemVault::new());
    let runtime = ManagerRuntime::with_durability(
        &coupled_constraint(),
        leased_options(),
        Arc::clone(&vault),
    )
    .unwrap();
    let holder = runtime.session(1);
    let r = holder.ask_blocking(&dept("call", 0, 1)).unwrap().expect("granted");
    assert!(r > 0);
    runtime.shutdown().unwrap();

    let recovered = ManagerRuntime::recover(vault, leased_options()).unwrap();
    let rival = recovered.session(2);
    // The department is mid-grant: a different patient's call conflicts
    // with the reserved one and is denied.
    assert_eq!(rival.ask_blocking(&dept("call", 0, 2)).unwrap(), None, "lease survived the crash");
    // The lease re-armed: advancing past its deadline fires it...
    let expired = recovered.advance_time(10);
    assert_eq!(expired.len(), 1);
    assert_eq!(expired[0].action, dept("call", 0, 1));
    // ...and the slot is free again.
    assert!(rival.ask_blocking(&dept("call", 0, 2)).unwrap().is_some());
    assert_eq!(recovered.stats().expired_reservations, 1);
    recovered.shutdown().unwrap();
}

/// Compiled DFA tiles checkpoint alongside the CoW snapshots and re-attach
/// on recovery — re-attachment is not a compile.  The constraint is ground
/// (quantified subtrees bail out of tier compilation).
#[test]
fn checkpointed_tiles_reattach_without_recompiling() {
    let constraint = parse("((a - b)* - audit)* @ ((c - d)* - audit)*").unwrap();
    let step = |name: &str| Action::nullary(name);
    let vault: Arc<dyn Vault> = Arc::new(MemVault::new());
    let options =
        RuntimeOptions { variant: ProtocolVariant::Combined, ..RuntimeOptions::default() };
    let runtime =
        ManagerRuntime::with_durability(&constraint, options, Arc::clone(&vault)).unwrap();
    let session = runtime.session(1);
    for _ in 0..8 {
        for name in ["a", "b"] {
            assert!(matches!(session.execute(&step(name)).wait(), Completion::Executed { .. }));
        }
    }
    let compiled = runtime.compile_tiers();
    assert!(compiled.iter().any(|t| t.tables > 0), "workload must reach the table tier");
    runtime.checkpoint().unwrap();
    runtime.shutdown().unwrap();

    let options =
        RuntimeOptions { variant: ProtocolVariant::Combined, ..RuntimeOptions::default() };
    let recovered = ManagerRuntime::recover(vault, options).unwrap();
    let tier = recovered.tier_stats();
    assert!(tier.tables > 0, "tiles re-attached from the snapshot");
    assert_eq!(tier.compiles, 0, "re-attachment must not count as a compile");
    // The re-attached tables serve: more pairs on the same shard hit them.
    let session = recovered.session(2);
    for _ in 0..4 {
        for name in ["a", "b"] {
            assert!(matches!(session.execute(&step(name)).wait(), Completion::Executed { .. }));
        }
    }
    assert!(recovered.tier_stats().hits > 0, "recovered tiles serve steps");
    recovered.shutdown().unwrap();
}

/// The `ContinueAsNew`-style rollover: a checkpoint truncates the covered
/// log prefix, so recovery replays only the records since the last cut.
#[test]
fn checkpoint_truncates_the_covered_log_prefix() {
    let vault: Arc<dyn Vault> = Arc::new(MemVault::new());
    let options =
        RuntimeOptions { variant: ProtocolVariant::Combined, ..RuntimeOptions::default() };
    let runtime =
        ManagerRuntime::with_durability(&coupled_constraint(), options, Arc::clone(&vault))
            .unwrap();
    let session = runtime.session(1);
    for p in 1..20 {
        for kind in ["call", "perform"] {
            assert!(matches!(
                session.execute(&dept(kind, 0, p)).wait(),
                Completion::Executed { .. }
            ));
        }
    }
    let report = runtime.checkpoint().unwrap();
    assert_eq!(report.captured, 3, "every shard captured");
    assert!(report.bytes > 0);

    let cut = inspect_vault(&vault).unwrap();
    assert!(cut.manifest);
    assert_eq!(cut.shards.len(), 3);
    for shard in &cut.shards {
        assert!(shard.snapshot, "shard {} has a snapshot", shard.shard);
        assert_eq!(shard.tail_records, 0, "covered prefix truncated on shard {}", shard.shard);
    }
    let busy = cut.shards.iter().find(|s| s.covered > 0).expect("the loaded shard rolled over");
    assert_eq!(busy.log_entries, 38);

    // Post-checkpoint traffic grows only the tail.
    assert!(matches!(session.execute(&audit()).wait(), Completion::Executed { .. }));
    let after = inspect_vault(&vault).unwrap();
    assert!(after.shards.iter().all(|s| s.tail_records >= 1), "audit echoed on every owner");
    runtime.shutdown().unwrap();

    let options =
        RuntimeOptions { variant: ProtocolVariant::Combined, ..RuntimeOptions::default() };
    let recovered = ManagerRuntime::recover(vault, options).unwrap();
    assert_eq!(recovered.log().len(), 39, "snapshot state plus the replayed tail");
    recovered.shutdown().unwrap();
}

static FILE_VAULT_DIR: AtomicUsize = AtomicUsize::new(0);

fn temp_vault_dir() -> std::path::PathBuf {
    let n = FILE_VAULT_DIR.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ix-durability-test-{}-{n}", std::process::id()))
}

/// The whole cycle on the file-backed vault: journal to segmented
/// append-only files, checkpoint, crash, recover from disk.
#[test]
fn file_backed_vault_survives_a_crash_and_a_rollover() {
    let dir = temp_vault_dir();
    let options = RuntimeOptions {
        variant: ProtocolVariant::Combined,
        fsync: FsyncPolicy::Interval(8),
        ..RuntimeOptions::default()
    };
    let runtime =
        ManagerRuntime::with_durability_path(&coupled_constraint(), options, &dir).unwrap();
    let session = runtime.session(1);
    for p in 1..10 {
        for d in 0..3 {
            for kind in ["call", "perform"] {
                assert!(matches!(
                    session.execute(&dept(kind, d, p)).wait(),
                    Completion::Executed { .. }
                ));
            }
        }
    }
    runtime.checkpoint().unwrap();
    assert!(matches!(session.execute(&audit()).wait(), Completion::Executed { .. }));
    let stats = runtime.stats();
    let log = runtime.log();
    runtime.shutdown().unwrap();

    let options = RuntimeOptions {
        variant: ProtocolVariant::Combined,
        fsync: FsyncPolicy::Never,
        ..RuntimeOptions::default()
    };
    let recovered = ManagerRuntime::recover_path(&dir, options).unwrap();
    assert_eq!(recovered.log(), log);
    assert_eq!(recovered.stats(), stats);
    // The recovered runtime keeps journaling into the same vault: another
    // commit, another crash, another recovery.
    let session = recovered.session(2);
    assert!(matches!(session.execute(&audit()).wait(), Completion::Executed { .. }));
    recovered.shutdown().unwrap();
    let options =
        RuntimeOptions { variant: ProtocolVariant::Combined, ..RuntimeOptions::default() };
    let again = ManagerRuntime::recover_path(&dir, options).unwrap();
    assert_eq!(again.log().len(), log.len() + 1);
    again.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Durable submissions pending at the crash are recovered into the queue
/// and redelivered (at least once) by `crash_redeliver`.
#[test]
fn recovered_durable_queue_redelivers_unacknowledged_submissions() {
    let vault: Arc<dyn Vault> = Arc::new(MemVault::new());
    let options = RuntimeOptions {
        variant: ProtocolVariant::Combined,
        durable: true,
        ..RuntimeOptions::default()
    };
    let runtime =
        ManagerRuntime::with_durability(&coupled_constraint(), options, Arc::clone(&vault))
            .unwrap();
    let session = runtime.session(1);
    assert!(matches!(session.execute(&dept("call", 0, 1)).wait(), Completion::Executed { .. }));
    assert!(matches!(session.execute(&dept("perform", 0, 1)).wait(), Completion::Executed { .. }));
    // Acknowledge one, leave one in the durable journal.
    assert!(runtime.acknowledge_submission());
    assert_eq!(runtime.unacknowledged_submissions(), 1);
    runtime.shutdown().unwrap();

    let options = RuntimeOptions {
        variant: ProtocolVariant::Combined,
        durable: true,
        ..RuntimeOptions::default()
    };
    let recovered = ManagerRuntime::recover(vault, options).unwrap();
    assert_eq!(recovered.unacknowledged_submissions(), 1, "pending submission survived");
    let tickets = recovered.crash_redeliver();
    assert_eq!(tickets.len(), 1);
    // Redelivery of the already-committed perform is denied by the engine
    // (the pair is complete) — at-least-once delivery, exactly-once effect.
    assert!(matches!(tickets[0].wait(), Completion::Denied));
    assert_eq!(recovered.log().len(), 2, "no double commit");
    recovered.shutdown().unwrap();
}

/// Subscriptions — shard-local and cross-shard — survive recovery, and a
/// re-attached session under the same client id receives notifications.
#[test]
fn subscriptions_survive_recovery_and_keep_notifying() {
    let vault: Arc<dyn Vault> = Arc::new(MemVault::new());
    let options =
        RuntimeOptions { variant: ProtocolVariant::Combined, ..RuntimeOptions::default() };
    let runtime =
        ManagerRuntime::with_durability(&coupled_constraint(), options, Arc::clone(&vault))
            .unwrap();
    let watcher = runtime.session(7);
    assert!(watcher.subscribe_blocking(&dept("call", 1, 2)).unwrap());
    assert!(watcher.subscribe_blocking(&audit()).unwrap());
    assert_eq!(runtime.subscription_count(), 2);
    runtime.checkpoint().unwrap();
    runtime.shutdown().unwrap();

    let options =
        RuntimeOptions { variant: ProtocolVariant::Combined, ..RuntimeOptions::default() };
    let recovered = ManagerRuntime::recover(vault, options).unwrap();
    assert_eq!(recovered.subscription_count(), 2, "both subscriptions restored");
    // The same client re-attaches and still hears about its actions: a
    // call on department b flips call_b(2) to not-permitted.
    let watcher = recovered.session(7);
    let worker = recovered.session(8);
    assert!(matches!(worker.execute(&dept("call", 1, 1)).wait(), Completion::Executed { .. }));
    let mut notes = Vec::new();
    for _ in 0..200 {
        notes.extend(watcher.poll_notifications());
        if !notes.is_empty() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(
        notes.iter().any(|n| n.action == dept("call", 1, 2) && !n.permitted),
        "restored subscription delivers: {notes:?}"
    );
    recovered.shutdown().unwrap();
}

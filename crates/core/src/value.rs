//! Concrete values (the set Ω) and formal parameters (the set Π).
//!
//! Action arguments are *terms*: either a concrete value ω ∈ Ω or a formal
//! parameter p ∈ Π.  The paper requires Ω ∩ Π = ∅ and |Ω| = ∞; here the two
//! sets are kept apart by the type system and Ω is the (conceptually
//! unbounded) union of all integers and all interned symbols.

use crate::symbol::Symbol;
use std::fmt;

/// A concrete value ω ∈ Ω.
///
/// Values identify real-world entities such as patients (e.g. a social
/// security number) or examination kinds (e.g. the symbolic values `sono` and
/// `endo` from the paper's running example).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// An integer value (patient numbers, counters, ...).
    Int(i64),
    /// A symbolic value (`sono`, `endo`, department names, ...).
    Sym(Symbol),
}

impl Value {
    /// Convenience constructor for symbolic values.
    pub fn sym(s: &str) -> Value {
        Value::Sym(Symbol::new(s))
    }

    /// Convenience constructor for integer values.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::sym(s)
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Value {
        Value::Sym(s)
    }
}

/// A formal parameter p ∈ Π, bound by a quantifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Param(pub Symbol);

impl Param {
    /// Creates a parameter with the given name.
    pub fn new(name: &str) -> Param {
        Param(Symbol::new(name))
    }

    /// The parameter's name.
    pub fn name(&self) -> Symbol {
        self.0
    }
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Param {
    fn from(s: &str) -> Param {
        Param::new(s)
    }
}

/// An action argument: a concrete value or a formal parameter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A concrete value ω ∈ Ω.
    Value(Value),
    /// A formal parameter p ∈ Π.
    Param(Param),
}

impl Term {
    /// Returns the contained value if this term is concrete.
    pub fn as_value(&self) -> Option<Value> {
        match self {
            Term::Value(v) => Some(*v),
            Term::Param(_) => None,
        }
    }

    /// Returns the contained parameter if this term is a parameter.
    pub fn as_param(&self) -> Option<Param> {
        match self {
            Term::Value(_) => None,
            Term::Param(p) => Some(*p),
        }
    }

    /// True if the term is a concrete value.
    pub fn is_concrete(&self) -> bool {
        matches!(self, Term::Value(_))
    }

    /// Substitutes `value` for the parameter `param`, leaving other terms
    /// untouched.
    pub fn substitute(&self, param: Param, value: Value) -> Term {
        match self {
            Term::Param(p) if *p == param => Term::Value(value),
            other => *other,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Value(v) => write!(f, "{v}"),
            Term::Param(p) => write!(f, "{p}"),
        }
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Term {
        Term::Value(v)
    }
}

impl From<Param> for Term {
    fn from(p: Param) -> Term {
        Term::Param(p)
    }
}

impl From<i64> for Term {
    fn from(i: i64) -> Term {
        Term::Value(Value::Int(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_constructors_and_display() {
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::sym("sono").to_string(), "sono");
        assert_eq!(Value::from(7), Value::Int(7));
        assert_eq!(Value::from("endo"), Value::sym("endo"));
    }

    #[test]
    fn values_and_params_are_distinct_term_kinds() {
        let v = Term::from(Value::sym("sono"));
        let p = Term::from(Param::new("sono"));
        assert_ne!(v, p, "Ω and Π must be disjoint");
        assert!(v.is_concrete());
        assert!(!p.is_concrete());
    }

    #[test]
    fn term_substitution_only_hits_the_matching_parameter() {
        let p = Param::new("p");
        let x = Param::new("x");
        let omega = Value::int(1);
        assert_eq!(Term::Param(p).substitute(p, omega), Term::Value(omega));
        assert_eq!(Term::Param(x).substitute(p, omega), Term::Param(x));
        assert_eq!(
            Term::Value(Value::sym("sono")).substitute(p, omega),
            Term::Value(Value::sym("sono"))
        );
    }

    #[test]
    fn term_accessors() {
        let p = Param::new("p");
        assert_eq!(Term::Param(p).as_param(), Some(p));
        assert_eq!(Term::Param(p).as_value(), None);
        assert_eq!(Term::Value(Value::int(3)).as_value(), Some(Value::int(3)));
        assert_eq!(Term::Value(Value::int(3)).as_param(), None);
    }

    #[test]
    fn values_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<Value> =
            [Value::int(2), Value::int(1), Value::sym("a")].into_iter().collect();
        assert_eq!(set.len(), 3);
    }
}

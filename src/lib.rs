//! Facade crate re-exporting the interaction-expressions workspace.
pub use ix_baselines as baselines;
pub use ix_core as core;
pub use ix_graph as graph;
pub use ix_manager as manager;
pub use ix_semantics as semantics;
pub use ix_state as state;
pub use ix_wfms as wfms;

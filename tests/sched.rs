//! Integration tests of worker-pool scheduling: shards decoupled from OS
//! threads behind a placement table, with load-driven hot-shard
//! rebalancing.
//!
//! The correctness contract has two halves.  First, the pool size is
//! *semantically invisible*: a runtime with one worker, a small pool, or a
//! worker per shard (the historical thread-per-shard layout) must produce
//! the same verdicts, the same merged log, and the same statistics as the
//! blocking manager on the same word — pinned here as a lockstep property
//! over random workloads.  Second, placement moves are *lossless*: while
//! the rebalancer isolates a hot shard mid-traffic, no task may be lost,
//! reordered against its session's submission order, or applied twice.

use ix_core::{parse, Action, Expr, Value};
use ix_manager::{
    ClockMode, Completion, InteractionManager, ManagerRuntime, MemVault, ProtocolVariant,
    RuntimeOptions, Ticket, Vault,
};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Three departments coupled through a cross-shard `audit` barrier: the
/// same shape the durability suite drives, chosen because a random word
/// exercises grants, denials, and the multi-owner rendezvous path.
fn coupled_constraint() -> Expr {
    parse(
        "((some p { call_a(p) - perform_a(p) })* - audit)* \
         @ ((some p { call_b(p) - perform_b(p) })* - audit)* \
         @ ((some p { call_c(p) - perform_c(p) })* - audit)*",
    )
    .unwrap()
}

fn dept(kind: &str, d: usize, p: i64) -> Action {
    let name = ["a", "b", "c"][d % 3];
    Action::concrete(&format!("{kind}_{name}"), [Value::int(p)])
}

/// `components` disjoint always-permissible work pools — offered load maps
/// 1:1 onto commits, so scheduling is the only variable.
fn pools_constraint(components: usize) -> Expr {
    let group = |k: usize| format!("(some p {{ work_{k}(p) }})*");
    let src = (0..components).map(group).collect::<Vec<_>>().join(" @ ");
    parse(&src).unwrap()
}

fn work(k: usize, p: i64) -> Action {
    Action::concrete(&format!("work_{k}"), [Value::int(p)])
}

fn pool_options(workers: usize) -> RuntimeOptions {
    RuntimeOptions {
        variant: ProtocolVariant::Combined,
        worker_threads: workers,
        ..RuntimeOptions::default()
    }
}

/// Drives `word` through a pooled runtime session and the blocking manager
/// in lockstep, asserting identical per-action verdicts, merged log,
/// finality, and statistics.
fn assert_pool_matches_blocking(
    x: &Expr,
    word: &[Action],
    workers: usize,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let blocking = InteractionManager::with_protocol(x, ProtocolVariant::Combined).unwrap();
    let runtime = ManagerRuntime::with_options(x, pool_options(workers)).unwrap();
    let session = runtime.session(1);
    for action in word {
        prop_assert_eq!(
            session.is_permitted_blocking(action),
            blocking.is_permitted(action),
            "is_permitted disagrees at pool size {} on `{}` for {}",
            workers,
            x,
            action
        );
        let r = session.execute_blocking(action).unwrap().is_some();
        let b = blocking.try_execute(1, action).unwrap().is_some();
        prop_assert_eq!(
            r,
            b,
            "execute disagrees at pool size {} on `{}` for {}",
            workers,
            x,
            action
        );
    }
    prop_assert_eq!(runtime.log(), blocking.log(), "logs diverge at pool size {}", workers);
    prop_assert_eq!(runtime.is_final(), blocking.is_final());
    let (rs, bs) = (runtime.stats(), blocking.stats());
    prop_assert_eq!(rs.asks, bs.asks);
    prop_assert_eq!(rs.grants, bs.grants);
    prop_assert_eq!(rs.denials, bs.denials);
    prop_assert_eq!(rs.confirmations, bs.confirmations);
    Ok(())
}

fn word_strategy() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..3, 1u64..4).prop_map(|(d, p)| dept("call", d, p as i64)),
            (0usize..3, 1u64..4).prop_map(|(d, p)| dept("perform", d, p as i64)),
            Just(Action::nullary("audit")),
        ],
        1..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: scheduling is invisible.  Pool size one
    /// (fully serialized workers), a two-worker pool (shards genuinely
    /// share threads), and a worker per shard (the thread-per-shard
    /// baseline — the constraint has three components) all match the
    /// blocking manager on the same word, hence match each other.
    #[test]
    fn every_pool_size_matches_the_blocking_manager_in_lockstep(
        word in word_strategy(),
    ) {
        let x = coupled_constraint();
        for workers in [1usize, 2, 3] {
            assert_pool_matches_blocking(&x, &word, workers)?;
        }
    }
}

/// Placement moves are pure table writes, visible in the scheduling stats.
#[test]
fn place_shard_updates_the_placement_table() {
    let runtime = ManagerRuntime::with_options(&pools_constraint(4), pool_options(2)).unwrap();
    let before = runtime.sched_stats();
    assert_eq!(before.workers, 2);
    assert_eq!(before.placement.len(), 4);
    // Out-of-range moves are rejected without touching the table.
    assert!(!runtime.place_shard(4, 0));
    assert!(!runtime.place_shard(0, 2));
    assert_eq!(runtime.sched_stats().placement, before.placement);
    // A valid move lands exactly where asked.
    let target = 1 - before.placement[0];
    assert!(runtime.place_shard(0, target));
    assert_eq!(runtime.sched_stats().placement[0], target);
    runtime.shutdown().unwrap();
}

/// Rebalance during traffic: two sessions flood eight shards on a
/// two-worker pool with heavy skew onto shard 0 while the main thread
/// drives rebalancer passes and manual placement moves.  The rebalancer
/// must isolate the hottest shard — shard 0, by construction — and the
/// migration must lose, reorder, or double-apply nothing: every session's
/// per-shard submission sequence reappears verbatim as a subsequence of
/// the merged log.
#[test]
fn rebalance_during_traffic_loses_and_reorders_nothing() {
    let shards = 8usize;
    let sessions = 2usize;
    let per_session = 3_000usize;
    let runtime =
        Arc::new(ManagerRuntime::with_options(&pools_constraint(shards), pool_options(2)).unwrap());
    let done = AtomicUsize::new(0);
    let mut submitted: Vec<Vec<Vec<Action>>> = vec![vec![Vec::new(); shards]; sessions];
    std::thread::scope(|scope| {
        let mut flooders = Vec::new();
        for (s, plan) in submitted.iter_mut().enumerate() {
            let runtime = Arc::clone(&runtime);
            let done = &done;
            flooders.push(scope.spawn(move || {
                let session = runtime.session(1 + s as u64);
                let mut tickets: Vec<Ticket<Completion>> = Vec::new();
                for i in 0..per_session {
                    // 80% of the traffic hammers shard 0; the rest spreads.
                    let k = if i % 10 < 8 { 0 } else { 1 + i % (shards - 1) };
                    let action = work(k, (s * per_session + i) as i64);
                    plan[k].push(action.clone());
                    tickets.push(session.submit(&action).expect("unbounded admission"));
                    if i % 256 == 0 {
                        std::thread::yield_now();
                    }
                }
                let committed = tickets
                    .into_iter()
                    .filter(|t| matches!(t.wait(), Completion::Executed { .. }))
                    .count();
                done.fetch_add(1, Ordering::Release);
                committed
            }));
        }
        // Drive the rebalancer by hand while the flood is in flight, and
        // keep nudging a cold shard between the workers so migrations race
        // live traffic in both directions.
        let mut toggle = 0usize;
        while done.load(Ordering::Acquire) < sessions {
            runtime.rebalance_now();
            runtime.place_shard(3, toggle);
            toggle = 1 - toggle;
            std::thread::sleep(std::time::Duration::from_micros(500));
        }
        let committed: usize = flooders.into_iter().map(|f| f.join().unwrap()).sum();
        assert_eq!(committed, sessions * per_session, "tasks lost during rebalancing");
    });
    let stats = runtime.sched_stats();
    assert!(
        stats.rebalances > 0,
        "sustained 80% skew onto shard 0 must trigger an isolation: {stats:?}"
    );
    assert_eq!(
        stats.last_isolated,
        Some(0),
        "the rebalancer must target the hottest shard: {stats:?}"
    );
    // Loss/reorder/duplication audit: the merged log filtered down to one
    // session's submissions on one shard must equal that submission
    // sequence exactly — same multiset (nothing lost or double-applied)
    // and same order (enqueue order is lock order, migrations included).
    let log = runtime.log();
    assert_eq!(log.len(), sessions * per_session);
    for (s, plan) in submitted.iter().enumerate() {
        for (k, sent) in plan.iter().enumerate() {
            let mine: HashSet<&Action> = sent.iter().collect();
            let got: Vec<&Action> = log.iter().filter(|a| mine.contains(a)).collect();
            let expected: Vec<&Action> = sent.iter().collect();
            assert_eq!(
                got, expected,
                "session {s} shard {k}: log order diverges from submission order"
            );
        }
    }
    Arc::try_unwrap(runtime).expect("flooders joined").shutdown().unwrap();
}

/// `checkpoint_every` arms the timer wheel: the virtual clock drives
/// periodic checkpoints, and a crash-recovery from those checkpoints
/// restores both the log and the placement table the manifest captured.
#[test]
fn periodic_checkpoints_fire_and_recovery_seeds_placement() {
    let vault: Arc<dyn Vault> = Arc::new(MemVault::new());
    let options = RuntimeOptions {
        durable: true,
        clock: ClockMode::Virtual,
        checkpoint_every: 5,
        ..pool_options(2)
    };
    let runtime =
        ManagerRuntime::with_durability(&pools_constraint(4), options, Arc::clone(&vault)).unwrap();
    let session = runtime.session(1);
    for p in 1..=20 {
        session.execute_blocking(&work(0, p)).unwrap();
    }
    assert_eq!(runtime.sched_stats().auto_checkpoints, 0, "nothing fires before the clock moves");
    for _ in 0..4 {
        runtime.advance_time(5);
    }
    let auto = runtime.sched_stats().auto_checkpoints;
    assert!(auto >= 3, "four periods elapsed but only {auto} automatic checkpoints fired");
    // Move a shard, let one more period capture the new table, then crash.
    assert!(runtime.place_shard(3, 0));
    runtime.advance_time(5);
    assert!(runtime.sched_stats().auto_checkpoints > auto);
    let placement = runtime.sched_stats().placement;
    let log = runtime.log();
    runtime.shutdown().unwrap();

    let recovered = ManagerRuntime::recover(vault, options).unwrap();
    assert_eq!(recovered.log(), log, "recovery from periodic checkpoints lost commits");
    assert_eq!(
        recovered.sched_stats().placement,
        placement,
        "recovery must seed the placement table from the checkpoint manifest"
    );
    recovered.shutdown().unwrap();
}

//! In-tree stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module surface this workspace uses is provided,
//! implemented on top of `std::sync::mpsc` with a mutex-wrapped receiver so
//! that `Receiver` is `Clone + Sync` like the real crossbeam channel.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels (crossbeam-channel surface).
pub mod channel {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        tx: mpsc::Sender<T>,
        depth: Arc<AtomicUsize>,
        closed: Arc<AtomicBool>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        rx: Arc<Mutex<mpsc::Receiver<T>>>,
        depth: Arc<AtomicUsize>,
        closed: Arc<AtomicBool>,
    }

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is disconnected and empty.
        Disconnected,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender {
                tx: self.tx.clone(),
                depth: Arc::clone(&self.depth),
                closed: Arc::clone(&self.closed),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver {
                rx: Arc::clone(&self.rx),
                depth: Arc::clone(&self.depth),
                closed: Arc::clone(&self.closed),
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver(..)")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the channel is disconnected —
        /// every receiver dropped, or the channel explicitly
        /// [`Receiver::close`]d.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.closed.load(Ordering::Acquire) {
                return Err(SendError(value));
            }
            // Count before handing the message over so a racing receiver
            // can only ever observe the depth as too high, never negative.
            self.depth.fetch_add(1, Ordering::Relaxed);
            self.tx.send(value).map_err(|mpsc::SendError(v)| {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                SendError(v)
            })
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let got =
                self.rx.lock().unwrap_or_else(|e| e.into_inner()).recv().map_err(|_| RecvError);
            if got.is_ok() {
                self.depth.fetch_sub(1, Ordering::Relaxed);
            }
            got
        }

        /// Receives a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let got =
                self.rx.lock().unwrap_or_else(|e| e.into_inner()).try_recv().map_err(|e| match e {
                    mpsc::TryRecvError::Empty => TryRecvError::Empty,
                    mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
                });
            if got.is_ok() {
                self.depth.fetch_sub(1, Ordering::Relaxed);
            }
            got
        }

        /// Drains the messages currently in the channel without blocking.
        pub fn try_iter(&self) -> std::vec::IntoIter<T> {
            let guard = self.rx.lock().unwrap_or_else(|e| e.into_inner());
            let drained: Vec<T> = guard.try_iter().collect();
            self.depth.fetch_sub(drained.len(), Ordering::Relaxed);
            drained.into_iter()
        }

        /// The number of messages currently buffered in the channel.
        ///
        /// Like the real crossbeam this is a racy snapshot — useful as a
        /// load signal, not for synchronization.
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed)
        }

        /// Whether the channel currently buffers no messages.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Closes the channel from the receiving side: every subsequent
        /// [`Sender::send`] fails with [`SendError`] as if all receivers
        /// were dropped, while messages already buffered stay drainable.
        /// (Not part of the real crossbeam surface — the runtime uses it
        /// to retire shard queues whose receiver handles outlive the
        /// workers that served them.)
        pub fn close(&self) {
            self.closed.store(true, Ordering::Release);
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        let depth = Arc::new(AtomicUsize::new(0));
        let closed = Arc::new(AtomicBool::new(false));
        (
            Sender { tx, depth: Arc::clone(&depth), closed: Arc::clone(&closed) },
            Receiver { rx: Arc::new(Mutex::new(rx)), depth, closed },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn try_iter_drains_pending() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
            assert!(rx.try_iter().next().is_none());
        }

        #[test]
        fn disconnect_is_reported() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn close_fails_new_sends_but_keeps_buffered_messages() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            rx.close();
            assert_eq!(tx.send(2), Err(SendError(2)));
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }
    }
}

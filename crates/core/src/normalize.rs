//! Simplification of interaction expressions.
//!
//! Sec. 3 notes that "numerous useful properties of interaction expressions,
//! like commutativity, associativity, or idempotence of operators … can be
//! formally proven".  This module applies a selection of those laws as
//! language-preserving rewrite rules, which keeps machine-generated
//! expressions (template expansions, graph conversions, desugarings) small
//! before they are handed to the operational engine:
//!
//! * ε is the unit of sequential and parallel composition and idempotent
//!   under both iterations and the option;
//! * disjunction and conjunction are idempotent (`y + y = y`, `y & y = y`);
//! * nested options and iterations collapse (`(y?)? = y?`, `(y*)* = y*`,
//!   `(y?)* = y*`, `(y*)? = y*`);
//! * the synchronization of an expression with ε or with itself is the
//!   expression (`y @ y = y`, `y @ empty = y`);
//! * multipliers of one instance are their body, multipliers of ε are ε.
//!
//! Every rule preserves Φ, Ψ and — where used by the synchronization
//! operator — does not enlarge the alphabet; the bounded-equivalence property
//! test in the workspace test suite checks the whole pass against the
//! denotational oracle.

use crate::expr::{Expr, ExprKind};

/// Applies the simplification rules bottom-up until a fixpoint is reached.
pub fn simplify(expr: &Expr) -> Expr {
    let mut current = expr.clone();
    loop {
        let next = simplify_once(&current);
        if next == current {
            return next;
        }
        current = next;
    }
}

fn simplify_once(expr: &Expr) -> Expr {
    // Simplify the children first, then the node itself.
    let rebuilt = match expr.kind() {
        ExprKind::Empty | ExprKind::Atom(_) | ExprKind::Hole(_) => expr.clone(),
        ExprKind::Option(y) => Expr::option(simplify_once(y)),
        ExprKind::Seq(y, z) => Expr::seq(simplify_once(y), simplify_once(z)),
        ExprKind::SeqIter(y) => Expr::seq_iter(simplify_once(y)),
        ExprKind::Par(y, z) => Expr::par(simplify_once(y), simplify_once(z)),
        ExprKind::ParIter(y) => Expr::par_iter(simplify_once(y)),
        ExprKind::Or(y, z) => Expr::or(simplify_once(y), simplify_once(z)),
        ExprKind::And(y, z) => Expr::and(simplify_once(y), simplify_once(z)),
        ExprKind::Sync(y, z) => Expr::sync(simplify_once(y), simplify_once(z)),
        ExprKind::SomeQ(p, y) => Expr::some_q(*p, simplify_once(y)),
        ExprKind::ParQ(p, y) => Expr::par_q(*p, simplify_once(y)),
        ExprKind::SyncQ(p, y) => Expr::sync_q(*p, simplify_once(y)),
        ExprKind::AllQ(p, y) => Expr::all_q(*p, simplify_once(y)),
        ExprKind::Mult(n, y) => Expr::mult(*n, simplify_once(y)),
    };
    rewrite(&rebuilt)
}

/// A single top-level rewrite step.
fn rewrite(expr: &Expr) -> Expr {
    match expr.kind() {
        // ε is the unit of sequential and parallel composition.
        ExprKind::Seq(y, z) | ExprKind::Par(y, z) => {
            if matches!(y.kind(), ExprKind::Empty) {
                return z.clone();
            }
            if matches!(z.kind(), ExprKind::Empty) {
                return y.clone();
            }
            expr.clone()
        }
        // Idempotence of disjunction and conjunction; ε-absorption for the
        // option-like disjunct.
        ExprKind::Or(y, z) => {
            if y == z {
                return y.clone();
            }
            if matches!(z.kind(), ExprKind::Empty) {
                return Expr::option(y.clone());
            }
            if matches!(y.kind(), ExprKind::Empty) {
                return Expr::option(z.clone());
            }
            expr.clone()
        }
        ExprKind::And(y, z) | ExprKind::Sync(y, z) if y == z => y.clone(),
        // Synchronizing with ε constrains nothing.
        ExprKind::Sync(y, z) => {
            if matches!(y.kind(), ExprKind::Empty) {
                return z.clone();
            }
            if matches!(z.kind(), ExprKind::Empty) {
                return y.clone();
            }
            expr.clone()
        }
        // Collapsing of nested option / iteration combinations.
        ExprKind::Option(y) => match y.kind() {
            ExprKind::Empty => Expr::empty(),
            ExprKind::Option(_) => y.clone(),
            ExprKind::SeqIter(_) | ExprKind::ParIter(_) => y.clone(),
            _ => expr.clone(),
        },
        ExprKind::SeqIter(y) => match y.kind() {
            ExprKind::Empty => Expr::empty(),
            ExprKind::SeqIter(_) => y.clone(),
            ExprKind::Option(inner) => Expr::seq_iter(inner.clone()),
            _ => expr.clone(),
        },
        ExprKind::ParIter(y) => match y.kind() {
            ExprKind::Empty => Expr::empty(),
            ExprKind::ParIter(_) => y.clone(),
            ExprKind::Option(inner) => Expr::par_iter(inner.clone()),
            _ => expr.clone(),
        },
        // Trivial multipliers.
        ExprKind::Mult(1, y) => y.clone(),
        ExprKind::Mult(_, y) if matches!(y.kind(), ExprKind::Empty) => Expr::empty(),
        _ => expr.clone(),
    }
}

impl Expr {
    /// Returns a simplified, language-equivalent expression (see
    /// [`simplify`]).
    pub fn simplified(&self) -> Expr {
        simplify(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::act0;
    use crate::parse;

    fn simp(src: &str) -> String {
        simplify(&parse(src).unwrap()).to_string()
    }

    #[test]
    fn unit_laws() {
        assert_eq!(simp("empty - a"), "a");
        assert_eq!(simp("a - empty"), "a");
        assert_eq!(simp("empty | a"), "a");
        assert_eq!(simp("a @ empty"), "a");
        assert_eq!(simp("empty @ (a - b)"), "a - b");
    }

    #[test]
    fn idempotence_laws() {
        assert_eq!(simp("a + a"), "a");
        assert_eq!(simp("(a - b) & (a - b)"), "a - b");
        assert_eq!(simp("(a - b) @ (a - b)"), "a - b");
        // Different operands stay untouched.
        assert_eq!(simp("a + b"), "a + b");
    }

    #[test]
    fn option_and_iteration_collapse() {
        assert_eq!(simp("a??"), "a?");
        assert_eq!(simp("a**"), "a*");
        assert_eq!(simp("(a?)*"), "a*");
        assert_eq!(simp("(a*)?"), "a*");
        assert_eq!(simp("(a#)?"), "a#");
        assert_eq!(simp("(a?)#"), "a#");
        assert_eq!(simp("empty?"), "empty");
        assert_eq!(simp("empty*"), "empty");
    }

    #[test]
    fn or_with_empty_becomes_option() {
        assert_eq!(simp("a + empty"), "a?");
        assert_eq!(simp("empty + a - b"), "(a - b)?");
    }

    #[test]
    fn multiplier_rules() {
        assert_eq!(simp("mult 1 { a - b }"), "a - b");
        assert_eq!(simp("mult 3 { empty }"), "empty");
        assert_eq!(simp("mult 3 { a }"), "mult 3 { a }");
    }

    #[test]
    fn simplification_reaches_a_fixpoint_through_nesting() {
        // ((a + a) - empty)?? simplifies all the way to a?.
        let e =
            Expr::option(Expr::option(Expr::seq(Expr::or(act0("a"), act0("a")), Expr::empty())));
        assert_eq!(simplify(&e).to_string(), "a?");
        // Simplification is idempotent.
        let once = simplify(&e);
        assert_eq!(simplify(&once), once);
    }

    #[test]
    fn closed_quantified_expressions_are_preserved_structurally() {
        let e = parse("all p { (some x { call(p, x) - perform(p, x) })* }").unwrap();
        assert_eq!(simplify(&e), e, "nothing to simplify");
    }
}

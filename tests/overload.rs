//! Integration tests of bounded admission and load shedding: a bounded
//! runtime with headroom is indistinguishable from an unbounded one, a
//! client that honors the retry-after hints makes progress under sustained
//! overload, and the credit gate keeps every queue inside its configured
//! limit.

use ix_core::{parse, Action, Expr, Value};
use ix_manager::{
    Completion, ManagerRuntime, ProtocolVariant, RuntimeOptions, ShedPolicy, SubmitError,
};
use proptest::prelude::*;
use std::time::Duration;

/// Three always-repeatable departments plus a cross-shard audit barrier —
/// every component decomposes to its own shard, `audit` spans all three.
fn constraint() -> Expr {
    parse(
        "((some p { work_a(p) })* - audit)* \
         @ ((some p { work_b(p) })* - audit)* \
         @ ((some p { work_c(p) })* - audit)*",
    )
    .unwrap()
}

fn work(d: usize, p: i64) -> Action {
    let name = ["a", "b", "c"][d % 3];
    Action::concrete(&format!("work_{name}"), [Value::int(p)])
}

fn audit() -> Action {
    Action::nullary("audit")
}

fn combined(queue_limit: usize) -> RuntimeOptions {
    RuntimeOptions { variant: ProtocolVariant::Combined, queue_limit, ..RuntimeOptions::default() }
}

/// One step of the randomized lockstep workload.
#[derive(Clone, Debug)]
enum Op {
    Work(usize, i64),
    Audit,
    Probe(usize, i64),
    Subscribe(u64, usize, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..3, 1u64..5).prop_map(|(d, p)| Op::Work(d, p as i64)),
        Just(Op::Audit),
        (0usize..3, 1u64..5).prop_map(|(d, p)| Op::Probe(d, p as i64)),
        (10u64..13, 0usize..3, 1u64..5).prop_map(|(c, d, p)| Op::Subscribe(c, d, p as i64)),
    ]
}

/// Replays the workload through one session with every ticket awaited and
/// returns the completions in submission order.
fn drive(runtime: &ManagerRuntime, ops: &[Op]) -> Vec<Completion> {
    let session = runtime.session(1);
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        out.push(match op {
            Op::Work(d, p) => match session.submit(&work(*d, *p)) {
                Ok(t) => t.wait(),
                Err(e) => Completion::Failed { error: e.into() },
            },
            Op::Audit => match session.submit(&audit()) {
                Ok(t) => t.wait(),
                Err(e) => Completion::Failed { error: e.into() },
            },
            Op::Probe(d, p) => session.is_permitted(&work(*d, *p)).wait(),
            Op::Subscribe(c, d, p) => runtime.session(*c).subscribe(&work(*d, *p)).wait(),
        });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A bounded runtime whose limit is never reached is *identical* to an
    /// unbounded one: same completions, same merged log, same statistics,
    /// and its gate never sheds.  Bounded admission must be invisible until
    /// the limit bites.
    #[test]
    fn bounded_with_headroom_matches_unbounded(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let x = constraint();
        let unbounded = ManagerRuntime::with_options(&x, combined(0)).unwrap();
        let bounded = ManagerRuntime::with_options(&x, combined(1 << 20)).unwrap();
        let free = drive(&unbounded, &ops);
        let gated = drive(&bounded, &ops);
        prop_assert_eq!(&gated, &free, "completions diverge under a spacious limit");
        prop_assert_eq!(bounded.log(), unbounded.log(), "merged logs diverge");
        let (bs, us) = (bounded.stats(), unbounded.stats());
        prop_assert_eq!(bs.asks, us.asks);
        prop_assert_eq!(bs.grants, us.grants);
        prop_assert_eq!(bs.denials, us.denials);
        let report = bounded.load_report();
        prop_assert_eq!(report.total_shed(), 0, "spacious gate shed traffic");
        prop_assert_eq!(report.queue_limit, 1 << 20);
        bounded.shutdown().unwrap();
        unbounded.shutdown().unwrap();
    }
}

/// Floods a bounded runtime far past its limit and asserts the two credit
/// invariants: the admitted depth never exceeds the configured limit (the
/// peak high-water mark is measured *inside* the gate, after every
/// successful reservation), and the overflow is shed with retryable
/// tickets rather than queued.
#[test]
fn credit_gate_caps_queue_depth_and_sheds_overflow() {
    let limit = 4;
    let runtime = ManagerRuntime::with_options(&constraint(), combined(limit)).unwrap();
    let session = runtime.session(7);
    let mut admitted = Vec::new();
    let mut shed = 0u64;
    // Burst rounds until the gate demonstrably shed — each round outruns
    // the three workers by submitting 16× the per-shard limit at enqueue
    // speed (an atomic and a channel send) without awaiting anything.
    for round in 0..1000 {
        for i in 0..limit * 16 {
            match session.submit(&work(i % 3, ((round * 97 + i) % 5 + 1) as i64)) {
                Ok(t) => admitted.push(t),
                Err(SubmitError::Overloaded { retry_after }) => {
                    assert!(retry_after >= Duration::from_micros(100));
                    assert!(retry_after <= Duration::from_millis(100));
                    shed += 1;
                }
            }
        }
        if shed > 0 {
            break;
        }
    }
    assert!(shed > 0, "a 16x burst never overflowed a limit-4 gate");
    for t in admitted {
        assert!(matches!(t.wait(), Completion::Executed { .. }));
    }
    let report = runtime.load_report();
    assert_eq!(report.total_shed(), shed);
    assert!(report.peak_depth() <= limit, "gate admitted past its limit");
    assert!(report.hottest().is_some());
    runtime.shutdown().unwrap();
}

/// Liveness under sustained 2× overload: every round floods twice the
/// aggregate queue capacity, and a polite client that honors the
/// retry-after hint between attempts still commits — in every round.
/// Backpressure degrades politely-used service, it never denies it.
#[test]
fn retrying_client_commits_under_sustained_overload() {
    let limit = 8;
    let options = RuntimeOptions {
        shed: ShedPolicy { probe_watermark_pct: 25, speculative_watermark_pct: 60, adaptive: true },
        ..combined(limit)
    };
    let runtime = ManagerRuntime::with_options(&constraint(), options).unwrap();
    let flood = runtime.session(1);
    let polite = runtime.session(2);
    let mut outstanding = Vec::new();
    let mut rejections = 0u64;
    for round in 0..20i64 {
        // 2× capacity across all three shards, fired without awaiting.
        for i in 0..3 * limit * 2 {
            match flood.submit(&work(i % 3, (i % 5) as i64 + 1)) {
                Ok(t) => outstanding.push(t),
                Err(_) => rejections += 1,
            }
        }
        // The polite client backs off exactly as the ticket hints and must
        // land its commit while the flood is still draining.
        let mut committed = false;
        for _attempt in 0..200 {
            match polite.submit(&work(0, round % 5 + 1)) {
                Ok(t) => {
                    assert!(matches!(t.wait(), Completion::Executed { .. }));
                    committed = true;
                    break;
                }
                Err(e) => {
                    rejections += 1;
                    std::thread::sleep(e.retry_after().min(Duration::from_millis(2)));
                }
            }
        }
        assert!(committed, "polite client starved in round {round}");
    }
    for t in outstanding {
        assert!(matches!(t.wait(), Completion::Executed { .. }));
    }
    // The overload was real — the gate shed flood traffic — and no shard
    // ever held more than its credit budget.
    let report = runtime.load_report();
    assert_eq!(report.total_shed(), rejections);
    assert!(report.peak_depth() <= limit);
    runtime.shutdown().unwrap();
}

/// The shed ladder: probes shed strictly before commits.  Each round
/// bursts six commit-class submissions — above the probe watermark
/// (50% of 8 = 4) but, with the probe's own credit, never past the commit
/// limit of 8 — then probes while the burst is still queued.  A shed
/// probe resolves *inline* (nothing was enqueued), so `wait_timeout(0)`
/// distinguishes it from an admitted probe without draining the queue.
/// Commits can never shed in this workload, and the test asserts exactly
/// that alongside the tripped probe watermark.
#[test]
fn probes_shed_before_commits() {
    // Single component → single shard → one worker to outrun.
    let x = parse("(some p { work_a(p) })*").unwrap();
    let limit = 8;
    let runtime = ManagerRuntime::with_options(&x, combined(limit)).unwrap();
    let session = runtime.session(3);
    let mut tripped = false;
    for round in 0..5000i64 {
        let mut pending = Vec::with_capacity(7);
        for i in 0..6 {
            // Depth starts at 0 every round, so all six must admit.
            pending.push(session.submit(&work(0, (round + i) % 5 + 1)).unwrap());
        }
        let probe = session.is_permitted(&work(0, 1));
        let shed_inline =
            matches!(probe.wait_timeout(Duration::ZERO), Some(Completion::Failed { .. }));
        // Drain the round completely before the next burst.
        for t in pending {
            assert!(matches!(t.wait(), Completion::Executed { .. }));
        }
        if shed_inline {
            tripped = true;
            break;
        }
        probe.wait();
    }
    assert!(tripped, "probe watermark never tripped in 5000 six-deep bursts");
    let report = runtime.load_report();
    assert!(report.shards[0].shed_probes > 0, "inline failure without a shed count");
    assert_eq!(report.shards[0].shed_commits, 0, "a commit shed below the limit");
    assert!(report.peak_depth() <= limit);
    runtime.shutdown().unwrap();
}

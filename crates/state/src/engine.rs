//! The word and action problems (Fig. 9 of the paper).
//!
//! * The **word problem** classifies a finite action sequence as a complete,
//!   partial or illegal word of an expression ([`word_problem`]).
//! * The **action problem** is the on-line variant that drives real systems:
//!   actions arrive one at a time and each must be accepted or rejected
//!   immediately ([`Engine::try_execute`]).  Acceptance is decided by a
//!   *tentative* state transition: if the successor state is valid the
//!   transition is committed, otherwise the current state is kept — exactly
//!   the `action()` loop of Fig. 9.
//!
//! The [`Engine`] is the component the interaction manager of `ix-manager`
//! wraps; it also records the per-transition state metrics used by the
//! complexity experiments.
//!
//! # The transition memo
//!
//! Every coordination protocol runs the *same* transition more than once:
//! an `ask` probes τ(s, a) and the matching `confirm` recomputes it; a
//! `permitted_after` probe replays the reservation table and the next probe
//! replays it again; a subscription refresh re-probes each watched action
//! until the state moves.  Since states are immutable behind [`Shared`]
//! handles, `(state identity, action)` is an exact memo key: the engine
//! keeps a small bounded map from that key to the successor, and the
//! entry's key handle keeps the state alive, so the pointer can never be
//! reused while the entry exists.  The memo is invisible semantically — τ̂
//! is pure — and `set_memo_capacity(0)` disables it (the equivalence
//! property tests drive memo-on and memo-off engines in lockstep).

use crate::compile::{compile_all, visit_shared, CompileBudget, CompileOutcome, CompiledTable};
use crate::compile::{TableParts, TierStats, DEAD, DEFAULT_TIER_BUDGET};
use crate::error::StateResult;
use crate::init::init;
use crate::predicates::{is_final, is_valid};
use crate::state::{null_state, Shared, State, StateMetrics};
use crate::trans::{fused, trans_with, TierLookup, TransitionOptions};
use ix_core::{Action, Expr};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Classification of a word, mirroring the integer result of the paper's
/// `word()` function (0 = illegal, 1 = partial, 2 = complete).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WordStatus {
    /// The word is not a partial word of the expression.
    Illegal,
    /// The word is a partial but not a complete word.
    Partial,
    /// The word is a complete word.
    Complete,
}

impl WordStatus {
    /// The paper's integer encoding.
    pub fn code(self) -> i32 {
        match self {
            WordStatus::Illegal => 0,
            WordStatus::Partial => 1,
            WordStatus::Complete => 2,
        }
    }
}

/// Solves the word problem for a closed expression using the operational
/// state model (the efficient counterpart of
/// `ix_semantics::classify_word`).
pub fn word_problem(expr: &Expr, word: &[Action]) -> StateResult<WordStatus> {
    let mut state = init(expr)?;
    for action in word {
        state = trans_with(&state, action, TransitionOptions::default());
        if state.is_null() {
            return Ok(WordStatus::Illegal);
        }
    }
    Ok(if is_final(&state) {
        WordStatus::Complete
    } else if is_valid(&state) {
        WordStatus::Partial
    } else {
        WordStatus::Illegal
    })
}

/// Default number of `(state, action)` entries the transition memo retains.
pub const DEFAULT_MEMO_CAPACITY: usize = 256;

/// [`Engine::reservation_fingerprint`] of an empty reservation table — the
/// hasher's initial state, a process-stable constant (the std default
/// hasher is seeded with fixed keys).
pub fn empty_reservation_fingerprint() -> u64 {
    fingerprint_hasher().finish()
}

/// The hasher every reservation fingerprint is folded with.  Must be
/// deterministic within a process so two fingerprints of the same table are
/// equal; `DefaultHasher::new()` (fixed-key SipHash) satisfies that.
fn fingerprint_hasher() -> std::collections::hash_map::DefaultHasher {
    std::collections::hash_map::DefaultHasher::new()
}

type MemoKey = (usize, Action);

/// The bounded transition memo: FIFO eviction, exact pointer-identity keys.
#[derive(Clone, Debug, Default)]
struct TransMemo {
    map: HashMap<MemoKey, (Shared<State>, Shared<State>)>,
    order: VecDeque<MemoKey>,
    capacity: usize,
}

impl TransMemo {
    fn with_capacity(capacity: usize) -> TransMemo {
        TransMemo { map: HashMap::new(), order: VecDeque::new(), capacity }
    }

    fn lookup(&self, base: &Shared<State>, action: &Action) -> Option<Shared<State>> {
        let key = (Shared::as_ptr(base) as usize, action.clone());
        match self.map.get(&key) {
            // The stored key handle keeps its allocation alive, so equal
            // addresses imply the same state; the ptr_eq check is cheap
            // insurance, not a correctness requirement.
            Some((stored, next)) if Shared::ptr_eq(stored, base) => Some(next.clone()),
            _ => None,
        }
    }

    fn insert(&mut self, base: &Shared<State>, action: &Action, next: Shared<State>) {
        if self.capacity == 0 {
            return;
        }
        while self.map.len() >= self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
        let key = (Shared::as_ptr(base) as usize, action.clone());
        if self.map.insert(key.clone(), (base.clone(), next)).is_none() {
            self.order.push_back(key);
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

/// Number of tree-computed transitions after which an auto-compiling
/// engine attempts tier compilation (the hotness threshold).
const TIER_HOT_THRESHOLD: u64 = 64;

/// Bound on cached attach *misses* (fresh spine allocations observed during
/// walks) before the miss cache is swept; pinned table-state entries are
/// never evicted.
const TIER_MISS_CACHE: usize = 4096;

/// One entry of the tier's pointer-keyed attach map.
#[derive(Clone, Debug)]
enum AttachEntry {
    /// The allocation is a known table state.  `pin` keeps it alive, so the
    /// pointer key can never be reused while the entry exists (the same
    /// argument the transition memo makes).
    Hit {
        /// Handle pinning the keyed allocation.
        pin: Shared<State>,
        /// Index into the tier's table list.
        table: u32,
        /// State id inside that table.
        state: u32,
    },
    /// The allocation was seen during a walk and is not worth value-probing
    /// again.  Misses are *not* pinned: a stale miss (pointer reuse) only
    /// degrades to a tree walk, never to a wrong answer.
    Miss,
}

/// The engine's execution tier: compiled DFA tiles for the table-resident
/// subtrees of the expression, plus the pointer-keyed attach map that links
/// live state allocations to table state ids.
///
/// All fields are interior-mutable so the tier can be consulted (and can
/// bookkeep) through the `&self` methods of the fused walk; the engine
/// still owns the tier exclusively.
#[derive(Clone, Debug)]
struct Tier {
    /// State-count budget per table (0 = tiering disabled).
    budget: Cell<usize>,
    /// Compile automatically once the engine runs hot (standalone engines;
    /// the session runtime compiles in worker idle slots instead).
    auto_compile: Cell<bool>,
    /// A compilation pass ran since the last invalidation (successful or
    /// not) — prevents recompiling a bailing expression on every step.
    attempted: Cell<bool>,
    /// Invalidation epoch; installed tables are stamped with the epoch they
    /// were compiled under, so a stale tile is structurally impossible to
    /// consult (it is dropped *and* its stamp no longer matches).
    epoch: Cell<u64>,
    tables: RefCell<Vec<Arc<CompiledTable>>>,
    attach: RefCell<HashMap<usize, AttachEntry>>,
    /// Number of pinned (table-state) attach entries.
    pinned: Cell<usize>,
    hits: Cell<u64>,
    fallbacks: Cell<u64>,
    /// Tree-computed transitions while no tables are installed — the
    /// hotness counter feeding auto-compilation.
    computed: Cell<u64>,
    compiles: Cell<u64>,
    bailouts: Cell<u64>,
    invalidations: Cell<u64>,
    compile_nanos: Cell<u64>,
}

impl Tier {
    fn new(budget: usize) -> Tier {
        Tier {
            budget: Cell::new(budget),
            auto_compile: Cell::new(true),
            attempted: Cell::new(false),
            epoch: Cell::new(0),
            tables: RefCell::new(Vec::new()),
            attach: RefCell::new(HashMap::new()),
            pinned: Cell::new(0),
            hits: Cell::new(0),
            fallbacks: Cell::new(0),
            computed: Cell::new(0),
            compiles: Cell::new(0),
            bailouts: Cell::new(0),
            invalidations: Cell::new(0),
            compile_nanos: Cell::new(0),
        }
    }

    fn has_tables(&self) -> bool {
        !self.tables.borrow().is_empty()
    }

    /// Installs a compilation outcome: epoch-stamps the tables, pins every
    /// table state in the attach map, and value-probes the live state so
    /// already-reached positions attach immediately.
    fn install(&self, outcome: CompileOutcome, state: &Shared<State>) {
        let mut nanos = 0;
        {
            let mut tables = self.tables.borrow_mut();
            tables.clear();
            for mut table in outcome.tables {
                table.epoch = self.epoch.get();
                nanos += table.compile_nanos();
                tables.push(Arc::new(table));
            }
            self.compiles.set(self.compiles.get() + tables.len() as u64);
        }
        self.bailouts.set(self.bailouts.get() + outcome.bailouts);
        self.compile_nanos.set(self.compile_nanos.get() + nanos);
        self.rebuild_attach(state);
    }

    /// Rebuilds the attach map from scratch: pins all table states, then
    /// value-probes the live state tree (including its σ spawn templates).
    /// Compile/reset-time only — the per-transition path never value-probes.
    fn rebuild_attach(&self, state: &Shared<State>) {
        let tables = self.tables.borrow();
        let mut attach = self.attach.borrow_mut();
        attach.clear();
        let mut pinned = 0usize;
        for (ti, table) in tables.iter().enumerate() {
            for (id, handle) in table.states.iter().enumerate() {
                attach.insert(
                    Shared::as_ptr(handle) as usize,
                    AttachEntry::Hit { pin: handle.clone(), table: ti as u32, state: id as u32 },
                );
                pinned += 1;
            }
        }
        if !tables.is_empty() {
            visit_shared(state, &mut |node| {
                let key = Shared::as_ptr(node) as usize;
                if attach.contains_key(&key) {
                    return;
                }
                for (ti, table) in tables.iter().enumerate() {
                    if let Some(&id) = table.index.get(node) {
                        attach.insert(
                            key,
                            AttachEntry::Hit { pin: node.clone(), table: ti as u32, state: id },
                        );
                        pinned += 1;
                        return;
                    }
                }
            });
        }
        self.pinned.set(pinned);
    }

    /// Value-probes one live state tree against the installed tables and
    /// attaches every node that is a table state.  Compile/reset-time only
    /// — the per-transition path never value-probes.
    fn attach_probe(&self, state: &Shared<State>) {
        let tables = self.tables.borrow();
        if tables.is_empty() {
            return;
        }
        let mut attach = self.attach.borrow_mut();
        let mut pinned = self.pinned.get();
        visit_shared(state, &mut |node| {
            let key = Shared::as_ptr(node) as usize;
            if matches!(attach.get(&key), Some(AttachEntry::Hit { .. })) {
                return;
            }
            for (ti, table) in tables.iter().enumerate() {
                if let Some(&id) = table.index.get(node) {
                    attach.insert(
                        key,
                        AttachEntry::Hit { pin: node.clone(), table: ti as u32, state: id },
                    );
                    pinned += 1;
                    return;
                }
            }
        });
        self.pinned.set(pinned);
    }

    /// Drops every table and attach entry and bumps the epoch: after this,
    /// no stale tile can serve a step (the tables are gone, and any clone
    /// held elsewhere carries a stale epoch stamp).
    fn invalidate(&self) {
        self.tables.borrow_mut().clear();
        self.attach.borrow_mut().clear();
        self.pinned.set(0);
        self.attempted.set(false);
        self.computed.set(0);
        self.epoch.set(self.epoch.get() + 1);
        self.invalidations.set(self.invalidations.get() + 1);
    }

    fn stats(&self) -> TierStats {
        let tables = self.tables.borrow();
        TierStats {
            tables: tables.len(),
            states: tables.iter().map(|t| t.state_count()).sum(),
            hits: self.hits.get(),
            fallbacks: self.fallbacks.get(),
            compiles: self.compiles.get(),
            bailouts: self.bailouts.get(),
            invalidations: self.invalidations.get(),
            compile_nanos: self.compile_nanos.get(),
            epoch: self.epoch.get(),
        }
    }
}

impl TierLookup for Tier {
    fn tier_step(&self, child: &Shared<State>, action: &Action) -> Option<Shared<State>> {
        if !action.is_concrete() {
            // Tables only decide concrete symbols; abstract actions fall
            // back to the tree walk (which rejects them combinator by
            // combinator).
            return None;
        }
        let key = Shared::as_ptr(child) as usize;
        let mut attach = self.attach.borrow_mut();
        match attach.get(&key) {
            Some(AttachEntry::Hit { pin, table, state }) if Shared::ptr_eq(pin, child) => {
                let tables = self.tables.borrow();
                let tile = &tables[*table as usize];
                debug_assert_eq!(tile.epoch, self.epoch.get(), "stale tile consulted");
                let next = tile.step(*state, action);
                self.hits.set(self.hits.get() + 1);
                Some(if next == DEAD { null_state() } else { tile.states[next as usize].clone() })
            }
            Some(_) => None,
            None => {
                // Unknown allocation: cache the miss *without* value-probing
                // (hashing a large state on the hot path would tax exactly
                // the expressions that gain nothing from the tier).
                if attach.len() >= self.pinned.get() + TIER_MISS_CACHE {
                    attach.retain(|_, e| matches!(e, AttachEntry::Hit { .. }));
                }
                attach.insert(key, AttachEntry::Miss);
                None
            }
        }
    }
}

/// An incremental evaluator of one interaction expression: the component
/// that answers "is this action currently permitted?" and tracks the state
/// across committed executions.
#[derive(Clone, Debug)]
pub struct Engine {
    expr: Expr,
    state: Shared<State>,
    options: TransitionOptions,
    memo: RefCell<TransMemo>,
    tier: Tier,
    accepted: u64,
    rejected: u64,
}

impl Engine {
    /// Creates an engine with the default (optimizing) transition options.
    pub fn new(expr: &Expr) -> StateResult<Engine> {
        Engine::with_options(expr, TransitionOptions::default())
    }

    /// Creates an engine with explicit transition options.
    pub fn with_options(expr: &Expr, options: TransitionOptions) -> StateResult<Engine> {
        Ok(Engine {
            expr: expr.clone(),
            state: Shared::new(init(expr)?),
            options,
            memo: RefCell::new(TransMemo::with_capacity(DEFAULT_MEMO_CAPACITY)),
            tier: Tier::new(DEFAULT_TIER_BUDGET),
            accepted: 0,
            rejected: 0,
        })
    }

    /// Reconstructs an engine from checkpointed pieces: the expression, a
    /// decoded state, and the accept/reject counters.  The expression is
    /// re-validated (σ must exist) exactly as in [`Engine::new`]; the decoded
    /// state then replaces σ.  The memo starts cold and the tier starts
    /// empty — recovery re-attaches checkpointed tables via
    /// [`Engine::adopt_tier`] instead of recompiling.
    pub fn restore(
        expr: &Expr,
        state: Shared<State>,
        accepted: u64,
        rejected: u64,
    ) -> StateResult<Engine> {
        let mut engine = Engine::new(expr)?;
        engine.state = state;
        engine.accepted = accepted;
        engine.rejected = rejected;
        Ok(engine)
    }

    /// The expression this engine enforces.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The current state.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// The current state as a shared handle (cheap to clone, stable
    /// identity for memo keys).
    pub fn state_handle(&self) -> &Shared<State> {
        &self.state
    }

    /// The transition memo's capacity (0 = disabled).
    pub fn memo_capacity(&self) -> usize {
        self.memo.borrow().capacity
    }

    /// Resizes (and clears) the transition memo; 0 disables memoization —
    /// used by the memo-on/memo-off equivalence property tests.
    pub fn set_memo_capacity(&mut self, capacity: usize) {
        let mut memo = self.memo.borrow_mut();
        memo.clear();
        memo.capacity = capacity;
    }

    /// The tiered, memoized transition τ̂ from an explicit base state.
    /// Order: compiled tier (exact by construction), then the memo (exact:
    /// the key is the base state's allocation identity plus the concrete
    /// action, and entries pin their key state alive), then the tree walk —
    /// which itself consults the tier at every shared child, so
    /// table-resident subtrees under a CoW spine still answer in O(1).
    fn transition(&self, base: &Shared<State>, action: &Action) -> Shared<State> {
        let tier_on = self.options.optimize && self.tier.has_tables();
        if tier_on {
            if let Some(next) = self.tier.tier_step(base, action) {
                return next;
            }
        }
        {
            let memo = self.memo.borrow();
            if let Some(hit) = memo.lookup(base, action) {
                return hit;
            }
        }
        let next = if tier_on {
            match fused(base, action, &self.tier) {
                State::Null => null_state(),
                other => Shared::new(other),
            }
        } else {
            match trans_with(base, action, self.options) {
                State::Null => null_state(),
                other => Shared::new(other),
            }
        };
        if tier_on {
            self.tier.fallbacks.set(self.tier.fallbacks.get() + 1);
        } else if self.options.optimize && self.tier.budget.get() > 0 {
            let computed = self.tier.computed.get() + 1;
            self.tier.computed.set(computed);
            if computed >= TIER_HOT_THRESHOLD
                && self.tier.auto_compile.get()
                && !self.tier.attempted.get()
            {
                self.tier_compile_now();
                // `next` was computed before the tables existed; attach it so
                // the step that triggered compilation lands on the tier.
                self.tier.attach_probe(&next);
            }
        }
        self.memo.borrow_mut().insert(base, action, next.clone());
        next
    }

    /// Runs a compilation pass now (idempotent until the next invalidation):
    /// compiles the maximal table-resident subtrees under the budget,
    /// installs and attaches the tiles, and clears the memo so the tier
    /// takes over from stale pointer-keyed entries.
    fn tier_compile_now(&self) {
        self.tier.attempted.set(true);
        let budget = self.tier.budget.get();
        if budget == 0 || !self.options.optimize {
            return;
        }
        let outcome = compile_all(&self.expr, CompileBudget::with_states(budget));
        self.tier.install(outcome, &self.state);
        if self.tier.has_tables() {
            self.memo.borrow_mut().clear();
        }
    }

    /// Whether a successor state counts as valid.  On the optimized path
    /// the fused τ̂ maintains "invalid ⇔ null", so ψ is a constant-time
    /// check; the unoptimized ablation path falls back to the full
    /// predicate.
    fn successor_valid(&self, next: &State) -> bool {
        if self.options.optimize {
            !next.is_null()
        } else {
            is_valid(next)
        }
    }

    /// Metrics of the current state (size, alternatives).
    pub fn metrics(&self) -> StateMetrics {
        StateMetrics::of(&self.state)
    }

    /// True if the action sequence committed so far is a partial word.
    /// (Always true unless the engine was constructed from an unsatisfiable
    /// state or fed through [`Engine::force_execute`].)
    pub fn is_valid(&self) -> bool {
        self.successor_valid(&self.state)
    }

    /// True if the action sequence committed so far is a complete word.
    pub fn is_final(&self) -> bool {
        is_final(&self.state)
    }

    /// Number of accepted (committed) actions.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of rejected action attempts.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Tentatively checks whether the action would currently be accepted,
    /// without changing the state (step 1/2 of the coordination protocol:
    /// "ask" / "reply").
    pub fn is_permitted(&self, action: &Action) -> bool {
        if !action.is_concrete() {
            return false;
        }
        let next = self.transition(&self.state, action);
        self.successor_valid(&next)
    }

    /// Filters the permitted actions out of a candidate list (used to keep
    /// worklists up to date).
    pub fn permitted<'a>(&self, candidates: &'a [Action]) -> Vec<&'a Action> {
        candidates.iter().filter(|a| self.is_permitted(a)).collect()
    }

    /// Reservation-aware permissibility probe: simulates the `reserved`
    /// actions first (in order, skipping any that are no longer executable)
    /// and then checks whether `action` is permitted in the resulting state.
    /// This is the probe a scheduler runs before granting a new reservation:
    /// a granted-but-unconfirmed action must stay executable, so the new
    /// grant is only given if the expression permits it *after* every
    /// outstanding reservation as well.
    ///
    /// The engine itself is untouched — only a speculative state walk is
    /// performed, and every transition of the walk goes through the memo, so
    /// repeated probes of a stable reservation table replay from cache.
    pub fn permitted_after<'a, I>(&self, reserved: I, action: &Action) -> bool
    where
        I: IntoIterator<Item = &'a Action>,
    {
        self.permitted_after_from(None, reserved, action)
    }

    /// [`Engine::permitted_after`] from an explicit speculative base state
    /// (`None` = the committed state).  Used by schedulers that chain
    /// several tentative actions — e.g. the coalesced cross-shard voting of
    /// the session runtime.
    pub fn permitted_after_from<'a, I>(
        &self,
        base: Option<&Shared<State>>,
        reserved: I,
        action: &Action,
    ) -> bool
    where
        I: IntoIterator<Item = &'a Action>,
    {
        let mut speculative: Option<Shared<State>> = base.cloned();
        for r in reserved {
            if !r.is_concrete() {
                continue;
            }
            let base = speculative.as_ref().unwrap_or(&self.state);
            let next = self.transition(base, r);
            if self.successor_valid(&next) {
                speculative = Some(next);
            }
        }
        if !action.is_concrete() {
            return false;
        }
        let base = speculative.as_ref().unwrap_or(&self.state);
        let next = self.transition(base, action);
        self.successor_valid(&next)
    }

    /// [`Engine::permitted_after_from`] that additionally returns the
    /// [`Engine::reservation_fingerprint`] of the `reserved` actions the
    /// probe walked — folded in the same pass, so the caller gets the
    /// verdict *and* a compact witness of exactly which reservation table it
    /// was computed against.  A speculative voter stores the fingerprint in
    /// its vote's validity tag; whoever decides the vote later compares it
    /// against the shard's currently published fingerprint to prove the
    /// probe's reservation assumptions still hold.
    pub fn permitted_after_from_fingerprinted<'a, I>(
        &self,
        base: Option<&Shared<State>>,
        reserved: I,
        action: &Action,
    ) -> (bool, u64)
    where
        I: IntoIterator<Item = &'a Action>,
    {
        let mut hasher = fingerprint_hasher();
        let mut speculative: Option<Shared<State>> = base.cloned();
        for r in reserved {
            r.hash(&mut hasher);
            if !r.is_concrete() {
                continue;
            }
            let base = speculative.as_ref().unwrap_or(&self.state);
            let next = self.transition(base, r);
            if self.successor_valid(&next) {
                speculative = Some(next);
            }
        }
        if !action.is_concrete() {
            return (false, hasher.finish());
        }
        let base = speculative.as_ref().unwrap_or(&self.state);
        let next = self.transition(base, action);
        (self.successor_valid(&next), hasher.finish())
    }

    /// Content fingerprint of a reservation table: a stable hash over the
    /// reserved actions in iteration order (callers iterate their
    /// reservation maps in key order, so equal tables produce equal
    /// fingerprints).  The empty table hashes to
    /// [`EMPTY_RESERVATION_FINGERPRINT`].
    pub fn reservation_fingerprint<'a, I>(reserved: I) -> u64
    where
        I: IntoIterator<Item = &'a Action>,
    {
        let mut hasher = fingerprint_hasher();
        for r in reserved {
            r.hash(&mut hasher);
        }
        hasher.finish()
    }

    /// The tentative half of a two-phase action step: computes the successor
    /// state without installing it, returning `Some` iff the action is
    /// currently permitted.  The caller either installs the successor with
    /// [`Engine::commit_prepared`] or aborts by dropping it — the engine's
    /// state is untouched either way.  This is the per-shard *prepare* vote
    /// of the cross-shard two-phase commit: a multi-owner action is prepared
    /// on every owning engine and committed only if all of them voted yes.
    ///
    /// An `ask` probe and its later `confirm` compute the same transition;
    /// the memo makes the second one a lookup.
    pub fn prepare(&self, action: &Action) -> Option<Shared<State>> {
        self.prepare_from(None, action)
    }

    /// [`Engine::prepare`] from an explicit speculative base state (`None` =
    /// the committed state); the chained form used when several actions are
    /// prepared as one atomic run.
    pub fn prepare_from(
        &self,
        base: Option<&Shared<State>>,
        action: &Action,
    ) -> Option<Shared<State>> {
        if !action.is_concrete() {
            return None;
        }
        let next = self.transition(base.unwrap_or(&self.state), action);
        if self.successor_valid(&next) {
            Some(next)
        } else {
            None
        }
    }

    /// The commit half of a two-phase action step: installs a successor
    /// state produced by [`Engine::prepare`] and counts the accepted action.
    /// Must only be called with a state prepared from the engine's *current*
    /// state (the caller serializes prepare and commit, e.g. under the
    /// shard's lock).
    pub fn commit_prepared(&mut self, next: Shared<State>) {
        self.state = next;
        self.accepted += 1;
    }

    /// Performs the accept/reject step of the action problem: the action is
    /// committed iff its tentative successor state is valid.  Returns true
    /// if the action was accepted.  Equivalent to [`Engine::prepare`]
    /// followed by [`Engine::commit_prepared`] (or a recorded rejection).
    pub fn try_execute(&mut self, action: &Action) -> bool {
        match self.prepare(action) {
            Some(next) => {
                self.commit_prepared(next);
                true
            }
            None => {
                self.rejected += 1;
                false
            }
        }
    }

    /// Commits the action unconditionally, even if it invalidates the state.
    /// Used by failure-injection tests to model clients that bypass the
    /// coordination protocol.
    pub fn force_execute(&mut self, action: &Action) {
        self.state = self.transition(&self.state, action);
        self.accepted += 1;
    }

    /// Feeds a whole word, stopping at the first rejected action.  Returns
    /// the number of accepted actions.
    pub fn feed(&mut self, word: &[Action]) -> usize {
        let mut n = 0;
        for action in word {
            if self.try_execute(action) {
                n += 1;
            } else {
                break;
            }
        }
        n
    }

    /// Resets the engine to the initial state of its expression.
    pub fn reset(&mut self) {
        self.state = Shared::new(init(&self.expr).expect("expression validated at construction"));
        self.memo.borrow_mut().clear();
        if self.tier.has_tables() {
            // Installed tables stay valid (the expression is unchanged);
            // re-attach them to the fresh σ allocations.
            self.tier.rebuild_attach(&self.state);
        }
        self.accepted = 0;
        self.rejected = 0;
    }

    // -- the execution tier ------------------------------------------------

    /// The tier's per-table state-count budget (0 = tiering disabled).
    pub fn tier_budget(&self) -> usize {
        self.tier.budget.get()
    }

    /// Sets the tier budget, dropping any installed tables; 0 disables
    /// tiering entirely — the lockstep equivalence property tests drive a
    /// tiered and a `tier_budget = 0` engine against each other.
    pub fn set_tier_budget(&mut self, budget: usize) {
        if self.tier.has_tables() || self.tier.attempted.get() {
            self.tier.invalidate();
        }
        self.tier.budget.set(budget);
    }

    /// Whether the engine compiles its tier automatically once hot (the
    /// default).  The session runtime switches this off and compiles in the
    /// shard worker's idle slots instead, off the submission hot path.
    pub fn set_tier_auto(&mut self, auto_compile: bool) {
        self.tier.auto_compile.set(auto_compile);
    }

    /// True once the engine has run enough tree-computed transitions to be
    /// worth compiling and no compilation pass has happened yet — the
    /// hotness signal a background compiler polls.
    pub fn tier_wants_compile(&self) -> bool {
        self.options.optimize
            && self.tier.budget.get() > 0
            && !self.tier.attempted.get()
            && self.tier.computed.get() >= TIER_HOT_THRESHOLD
    }

    /// Compiles the tier now (regardless of hotness) and returns the
    /// resulting stats.  Idempotent until the next invalidation.
    pub fn compile_tier(&mut self) -> TierStats {
        self.tier_compile_now();
        self.tier.stats()
    }

    /// Drops all compiled tables and bumps the tier epoch.  Topology
    /// migrations (`add_constraint`/`couple`) call this on every affected
    /// shard engine, so a tile compiled before the migration can never
    /// serve a post-migration step.
    pub fn invalidate_tier(&mut self) {
        self.tier.invalidate();
    }

    /// The tier's counter surface (mirrors the memo stats).
    pub fn tier_stats(&self) -> TierStats {
        self.tier.stats()
    }

    /// The currently installed tables (empty when the tier has not
    /// compiled).  Checkpoints persist these via
    /// [`CompiledTable::to_parts`] so recovery can re-attach them.
    pub fn tier_tables(&self) -> Vec<Arc<CompiledTable>> {
        self.tier.tables.borrow().clone()
    }

    /// Installs checkpointed tables without counting a compilation: each
    /// part is reassembled, stamped with the tier's current epoch, and
    /// re-attached to the live state.  Marks the tier as `attempted`, so
    /// the hotness signal does not ask for a redundant recompile; the
    /// `compiles` counter is untouched — recovery re-attaching tiles is
    /// observably not a compile.
    pub fn adopt_tier(&mut self, parts: Vec<TableParts>) {
        if parts.is_empty() {
            return;
        }
        {
            let mut tables = self.tier.tables.borrow_mut();
            tables.clear();
            for part in parts {
                let mut table = CompiledTable::from_parts(part);
                table.epoch = self.tier.epoch.get();
                tables.push(Arc::new(table));
            }
        }
        self.tier.attempted.set(true);
        self.tier.rebuild_attach(&self.state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_core::{parse, Value};

    fn a(name: &str) -> Action {
        Action::nullary(name)
    }

    #[test]
    fn word_problem_matches_fig9_codes() {
        let e = parse("a - b").unwrap();
        assert_eq!(word_problem(&e, &[]).unwrap(), WordStatus::Partial);
        assert_eq!(word_problem(&e, &[a("a")]).unwrap(), WordStatus::Partial);
        assert_eq!(word_problem(&e, &[a("a"), a("b")]).unwrap(), WordStatus::Complete);
        assert_eq!(word_problem(&e, &[a("b")]).unwrap(), WordStatus::Illegal);
        assert_eq!(WordStatus::Complete.code(), 2);
    }

    #[test]
    fn action_problem_accepts_and_rejects() {
        let e = parse("(x + y)*").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        assert!(eng.try_execute(&a("x")));
        assert!(eng.try_execute(&a("y")));
        assert!(!eng.try_execute(&a("z")));
        assert_eq!(eng.accepted(), 2);
        assert_eq!(eng.rejected(), 1);
        assert!(eng.is_final());
    }

    #[test]
    fn tentative_checks_do_not_change_state() {
        let e = parse("a - b").unwrap();
        let eng = Engine::new(&e).unwrap();
        assert!(eng.is_permitted(&a("a")));
        assert!(!eng.is_permitted(&a("b")));
        // Still at the initial state.
        assert!(eng.is_permitted(&a("a")));
        assert_eq!(eng.accepted(), 0);
    }

    #[test]
    fn reservation_aware_probe_replays_reserved_actions() {
        // Capacity one: with a reservation for `call(1)` outstanding, a
        // second call must probe as impermissible even though the engine's
        // committed state still allows it.
        let e = parse("mult 1 { (some p { call(p) - perform(p) })* }").unwrap();
        let eng = Engine::new(&e).unwrap();
        let call = |p: i64| Action::concrete("call", [Value::int(p)]);
        assert!(eng.is_permitted(&call(2)));
        let reserved = [call(1)];
        assert!(!eng.permitted_after(reserved.iter(), &call(2)), "slot is reserved");
        assert!(eng.permitted_after([].iter(), &call(2)), "no reservations, plain probe");
        // A reservation that is itself no longer executable is skipped, and
        // the engine is untouched either way.
        let stale = [a("nonsense")];
        assert!(eng.permitted_after(stale.iter(), &call(2)));
        assert_eq!(eng.accepted(), 0);
        assert_eq!(eng.rejected(), 0);
    }

    #[test]
    fn memo_hits_reuse_the_same_successor_allocation() {
        let e = parse("(a - b)*").unwrap();
        let eng = Engine::new(&e).unwrap();
        let first = eng.prepare(&a("a")).expect("permitted");
        let second = eng.prepare(&a("a")).expect("permitted");
        assert!(
            crate::state::Shared::ptr_eq(&first, &second),
            "the second prepare must be a memo hit"
        );
    }

    #[test]
    fn memo_off_engine_behaves_identically() {
        let e = parse("mult 2 { (some p { call(p) - perform(p) })* }").unwrap();
        let mut on = Engine::new(&e).unwrap();
        let mut off = Engine::new(&e).unwrap();
        off.set_memo_capacity(0);
        assert_eq!(off.memo_capacity(), 0);
        let call = |p: i64| Action::concrete("call", [Value::int(p)]);
        let perform = |p: i64| Action::concrete("perform", [Value::int(p)]);
        for action in
            [call(1), call(2), call(3), perform(1), call(3), perform(2), perform(3), call(9)]
        {
            assert_eq!(on.is_permitted(&action), off.is_permitted(&action));
            assert_eq!(on.try_execute(&action), off.try_execute(&action), "on {action}");
        }
        assert_eq!(on.state(), off.state());
        assert_eq!(on.accepted(), off.accepted());
        assert_eq!(on.rejected(), off.rejected());
    }

    #[test]
    fn memo_capacity_is_bounded() {
        let e = parse("(a + b + c)*").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        eng.set_memo_capacity(2);
        for _ in 0..8 {
            for n in ["a", "b", "c", "zzz"] {
                let _ = eng.is_permitted(&a(n));
            }
            assert!(eng.memo.borrow().map.len() <= 2, "memo exceeded its bound");
            assert!(eng.try_execute(&a("a")));
        }
    }

    #[test]
    fn permitted_filters_candidates() {
        let e = parse("(call(1, sono) - perform(1, sono)) @ (call(1, endo) - perform(1, endo))")
            .unwrap();
        let eng = Engine::new(&e).unwrap();
        let candidates = vec![
            Action::concrete("call", [Value::int(1), Value::sym("sono")]),
            Action::concrete("perform", [Value::int(1), Value::sym("sono")]),
            Action::concrete("call", [Value::int(1), Value::sym("endo")]),
        ];
        let permitted = eng.permitted(&candidates);
        assert_eq!(permitted.len(), 2, "both calls allowed, perform not yet");
    }

    #[test]
    fn mutual_exclusion_scenario_from_the_introduction() {
        // Once the patient is called to one examination, the other call is
        // disabled until the first examination is performed.
        let e = parse(
            "(call(1, sono) - perform(1, sono)) + (call(1, endo) - perform(1, endo)) \
             + (call(1, sono) - perform(1, sono) - call(1, endo) - perform(1, endo)) \
             + (call(1, endo) - perform(1, endo) - call(1, sono) - perform(1, sono))",
        )
        .unwrap();
        let call = |x: &str| Action::concrete("call", [Value::int(1), Value::sym(x)]);
        let perform = |x: &str| Action::concrete("perform", [Value::int(1), Value::sym(x)]);
        let mut eng = Engine::new(&e).unwrap();
        assert!(eng.is_permitted(&call("sono")));
        assert!(eng.is_permitted(&call("endo")));
        assert!(eng.try_execute(&call("sono")));
        assert!(!eng.is_permitted(&call("endo")), "temporarily disabled");
        assert!(eng.try_execute(&perform("sono")));
        assert!(eng.is_permitted(&call("endo")), "re-enabled after completion");
    }

    #[test]
    fn feed_and_reset() {
        let e = parse("a - b - c").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        assert_eq!(eng.feed(&[a("a"), a("b"), a("z"), a("c")]), 2);
        assert!(!eng.is_final());
        eng.reset();
        assert_eq!(eng.accepted(), 0);
        assert_eq!(eng.feed(&[a("a"), a("b"), a("c")]), 3);
        assert!(eng.is_final());
    }

    #[test]
    fn force_execute_can_invalidate_the_state() {
        let e = parse("a").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        eng.force_execute(&a("z"));
        assert!(!eng.is_valid());
        assert!(!eng.try_execute(&a("a")), "nothing is permitted in the null state");
    }

    #[test]
    fn non_concrete_actions_are_rejected() {
        let e = parse("a").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        let abstract_action = Action::new("a", [ix_core::Term::Param(ix_core::Param::new("p"))]);
        assert!(!eng.is_permitted(&abstract_action));
        assert!(!eng.try_execute(&abstract_action));
    }

    #[test]
    fn engine_metrics_reflect_state_growth() {
        let e = parse("(a - b)#").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        let m0 = eng.metrics();
        eng.try_execute(&a("a"));
        eng.try_execute(&a("a"));
        let m2 = eng.metrics();
        assert!(m2.size >= m0.size);
        assert!(!m2.is_null);
    }

    #[test]
    fn tier_auto_compiles_when_hot_and_serves_hits() {
        let e = parse("((r0 - r1) + (w0 - w1))*").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        eng.set_memo_capacity(0); // force every step through the tier path
        for _ in 0..2 * TIER_HOT_THRESHOLD {
            assert!(eng.try_execute(&a("r0")));
            assert!(eng.try_execute(&a("r1")));
        }
        let stats = eng.tier_stats();
        assert!(stats.tables >= 1, "hot mutex must compile: {stats:?}");
        assert!(stats.hits > 0, "table must serve steps: {stats:?}");
        assert_eq!(stats.compiles, 1);
    }

    #[test]
    fn tier_budget_zero_disables_compilation() {
        let e = parse("((r0 - r1) + (w0 - w1))*").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        eng.set_tier_budget(0);
        eng.set_memo_capacity(0);
        for _ in 0..2 * TIER_HOT_THRESHOLD {
            assert!(eng.try_execute(&a("r0")));
            assert!(eng.try_execute(&a("r1")));
        }
        let stats = eng.tier_stats();
        assert_eq!((stats.tables, stats.hits, stats.compiles), (0, 0, 0));
    }

    #[test]
    fn tiered_engine_agrees_with_plain_engine_on_a_mixed_expression() {
        // A table-resident mutex ⊗ a quantified (never compiled) spine: the
        // tier serves the mutex tile while the quantifier falls back.
        let e = parse("((r0 - r1) + (w0 - w1))* @ (some p { r0 - go(p) })*").unwrap();
        let mut tiered = Engine::new(&e).unwrap();
        let mut plain = Engine::new(&e).unwrap();
        tiered.set_memo_capacity(0);
        plain.set_memo_capacity(0);
        plain.set_tier_budget(0);
        let stats = tiered.compile_tier();
        assert!(stats.tables >= 1, "mutex operand must compile: {stats:?}");
        let go = |p: i64| Action::concrete("go", [Value::int(p)]);
        let script =
            [a("r0"), go(1), a("r1"), a("w0"), a("r0"), a("w1"), a("r0"), go(2), a("r1"), a("zzz")];
        for action in &script {
            assert_eq!(tiered.is_permitted(action), plain.is_permitted(action), "ψ on {action}");
            assert_eq!(
                tiered.permitted_after([a("r0")].iter(), action),
                plain.permitted_after([a("r0")].iter(), action),
                "probe on {action}"
            );
            assert_eq!(tiered.try_execute(action), plain.try_execute(action), "τ̂ on {action}");
            assert_eq!(tiered.state(), plain.state(), "state after {action}");
            assert_eq!(tiered.is_final(), plain.is_final(), "ϕ after {action}");
        }
        assert!(tiered.tier_stats().hits > 0, "the mutex tile must have served steps");
        assert_eq!(tiered.accepted(), plain.accepted());
        assert_eq!(tiered.rejected(), plain.rejected());
    }

    #[test]
    fn tier_prepare_commit_goes_through_the_table() {
        let e = parse("(a - b)*").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        eng.set_memo_capacity(0);
        let stats = eng.compile_tier();
        assert!(stats.tables >= 1);
        let prepared = eng.prepare(&a("a")).expect("permitted");
        eng.commit_prepared(prepared);
        assert!(eng.tier_stats().hits > 0, "prepare must be a table hit");
        assert!(!eng.is_permitted(&a("a")));
        assert!(eng.is_permitted(&a("b")));
    }

    #[test]
    fn budget_bailout_decomposes_into_leaf_tiles() {
        // 2^10 product states blow a budget of 8 states at the root, but each
        // parallel operand is a 3-state loop — the compiler bails on the
        // spine and tiles the leaves.
        let mut src = String::from("(a0 - b0)*");
        for k in 1..10 {
            src = format!("{src} | (a{k} - b{k})*");
        }
        let e = parse(&src).unwrap();
        let mut eng = Engine::new(&e).unwrap();
        eng.set_memo_capacity(0);
        eng.set_tier_budget(8);
        let stats = eng.compile_tier();
        assert!(stats.bailouts >= 1, "the product spine must bail: {stats:?}");
        assert_eq!(stats.tables, 10, "one tile per operand: {stats:?}");
        for k in 0..10 {
            assert!(eng.try_execute(&Action::nullary(format!("a{k}").as_str())));
        }
        assert_eq!(eng.accepted(), 10);
        assert!(eng.tier_stats().hits > 0, "leaf tiles serve under the spine");
    }

    #[test]
    fn budget_too_small_for_any_tile_falls_back_to_cow() {
        // Two states cannot even hold σ plus a loop position: every subtree
        // bails and the engine keeps answering from the tree.
        let e = parse("(a - b)* | (c - d)*").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        eng.set_memo_capacity(0);
        eng.set_tier_budget(2);
        let stats = eng.compile_tier();
        assert_eq!(stats.tables, 0, "nothing fits in 2 states: {stats:?}");
        assert!(stats.bailouts >= 1);
        for name in ["a", "c", "b", "d"] {
            assert!(eng.try_execute(&a(name)));
        }
        assert_eq!(eng.accepted(), 4);
        assert_eq!(eng.tier_stats().hits, 0);
    }

    #[test]
    fn compile_during_traffic_preserves_in_flight_state() {
        // Compile mid-protocol: the attach map must pick up the *current*
        // interior state, not just σ, and a reset must re-attach.
        let e = parse("(s0 - s1 - s2 - s3)*").unwrap();
        let mut tiered = Engine::new(&e).unwrap();
        let mut plain = Engine::new(&e).unwrap();
        tiered.set_memo_capacity(0);
        plain.set_memo_capacity(0);
        plain.set_tier_budget(0);
        let script = ["s0", "s1", "s2", "s3", "s0", "s1"];
        for (k, step) in script.iter().enumerate() {
            if k == 2 {
                assert!(tiered.compile_tier().tables >= 1);
            }
            assert_eq!(tiered.try_execute(&a(step)), plain.try_execute(&a(step)));
            assert_eq!(tiered.state(), plain.state(), "state after {step}");
        }
        assert!(tiered.tier_stats().hits > 0);
        let hits = tiered.tier_stats().hits;
        tiered.reset();
        plain.reset();
        assert!(tiered.try_execute(&a("s0")) && plain.try_execute(&a("s0")));
        assert_eq!(tiered.state(), plain.state());
        assert!(tiered.tier_stats().hits > hits, "tables survive a reset");
    }

    #[test]
    fn invalidation_drops_tables_and_allows_recompilation() {
        let e = parse("(a - b)*").unwrap();
        let mut eng = Engine::new(&e).unwrap();
        eng.set_memo_capacity(0);
        assert!(eng.compile_tier().tables >= 1);
        assert!(eng.try_execute(&a("a")));
        assert!(eng.tier_stats().hits > 0);
        let epoch_before = eng.tier_stats().epoch;
        eng.invalidate_tier();
        let stats = eng.tier_stats();
        assert_eq!(stats.tables, 0, "invalidation must drop every tile");
        assert_eq!(stats.invalidations, 1);
        assert!(stats.epoch > epoch_before);
        assert!(eng.try_execute(&a("b")), "correct from the tree after invalidation");
        assert!(eng.compile_tier().tables >= 1, "recompilation restores the tier");
        assert!(eng.try_execute(&a("a")));
    }
}

//! The state objects of the operational semantics (Sec. 4).
//!
//! Every interaction expression x is assigned an initial state σ(x); a state
//! transition function τ maps a state and an action to a successor state;
//! the predicates ψ ("valid") and ϕ ("final") correspond to the partial- and
//! complete-word sets of the formal semantics; and the optimization function
//! ρ replaces states by equivalent but smaller ones.  The construction of
//! σ, τ, ψ, ϕ and ρ lives in the sibling modules `init`, `trans`,
//! `predicates` and `optimize`; this module defines the state *data* and the
//! generic helpers they share (size metrics and parameter substitution, which
//! is what turns a quantifier's template state into the state of a concrete
//! branch).
//!
//! States are hierarchically structured values mirroring the expression tree,
//! with sets of *alternatives* wherever the walker metaphor of the paper
//! allows several positions at once (sequences, iterations, parallel
//! compositions, quantifiers).
//!
//! # Copy-on-write structural sharing
//!
//! Child states are held behind [`Shared`], a cheap `Arc` handle whose
//! equality and ordering short-circuit on pointer identity.  A τ step
//! rebuilds only the *spine* from the root to the operands the action
//! touches and shares every untouched subtree; equality comparisons during
//! alternative deduplication then cost O(1) on the shared parts.  Spawning
//! points of the expression (the right operand of a sequence, iteration and
//! multiplier bodies, quantifier branches) carry their *precomputed* initial
//! state σ, so a transition never re-derives alphabets or initial states
//! from expressions — states are self-contained and τ is a pure function of
//! the state value.

use ix_core::{Action, Alphabet, Param, Term, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

/// A shared, immutable handle on a value with pointer-shortcut comparisons.
///
/// Semantically this is "a `T` by value": equality, ordering and hashing are
/// those of `T`.  Representationally it is an `Arc<T>`, and comparisons
/// short-circuit when both handles point at the same allocation — which is
/// the common case after a copy-on-write transition, where alternatives
/// share all untouched sub-states.
pub struct Shared<T>(Arc<T>);

impl<T> Shared<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Shared<T> {
        Shared(Arc::new(value))
    }

    /// True if both handles point at the same allocation.
    pub fn ptr_eq(a: &Shared<T>, b: &Shared<T>) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// The address of the shared allocation — a cheap identity key (unique
    /// while the handle is alive).
    pub fn as_ptr(this: &Shared<T>) -> *const T {
        Arc::as_ptr(&this.0)
    }
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Shared<T> {
        Shared(Arc::clone(&self.0))
    }
}

impl<T> Deref for Shared<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> AsRef<T> for Shared<T> {
    fn as_ref(&self) -> &T {
        &self.0
    }
}

impl<T: PartialEq> PartialEq for Shared<T> {
    fn eq(&self, other: &Shared<T>) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}

impl<T: Eq> Eq for Shared<T> {}

impl<T: PartialOrd> PartialOrd for Shared<T> {
    fn partial_cmp(&self, other: &Shared<T>) -> Option<std::cmp::Ordering> {
        if Arc::ptr_eq(&self.0, &other.0) {
            return Some(std::cmp::Ordering::Equal);
        }
        self.0.partial_cmp(&other.0)
    }
}

impl<T: Ord> Ord for Shared<T> {
    fn cmp(&self, other: &Shared<T>) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return std::cmp::Ordering::Equal;
        }
        self.0.cmp(&other.0)
    }
}

impl<T: std::hash::Hash> std::hash::Hash for Shared<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl<T: fmt::Debug> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T> From<T> for Shared<T> {
    fn from(value: T) -> Shared<T> {
        Shared::new(value)
    }
}

/// The process-wide shared null state — τ produces it constantly, so the
/// allocation is shared instead of repeated.
pub fn null_state() -> Shared<State> {
    static NULL: OnceLock<Shared<State>> = OnceLock::new();
    NULL.get_or_init(|| Shared::new(State::Null)).clone()
}

/// Size bound of a [`ScopedAlphabet`]'s coverage memo; reaching it clears
/// the memo (coverage working sets are tiny — the bound only guards against
/// adversarial churn).
const COVERAGE_CACHE_LIMIT: usize = 256;

/// Alphabets below this size answer coverage queries faster by matching the
/// symbol-indexed candidates directly than through the memo.
const COVERAGE_CACHE_MIN_ALPHABET: usize = 4;

/// Coverage memo key: the probed concrete action, plus the substituted
/// parameter binding for branch coverage ([`ScopedAlphabet::covers_with`]).
type CoverageKey = (Action, Option<(Param, Value)>);

/// An alphabet together with the set of parameters that are bound by
/// quantifiers *outside* the expression the alphabet belongs to.
///
/// The synchronization operator and quantifier route an action to an operand
/// only if the operand's alphabet covers it.  Parameters bound by quantifiers
/// *inside* the operand act as wildcards (the operand's own quantifier will
/// dispatch on the value), whereas parameters bound *outside* stand for a
/// specific-but-not-yet-observed value ("fresh") and therefore never match a
/// concrete action; they become concrete when the enclosing quantifier
/// instantiates the state by substitution.
///
/// Coverage queries are *symbol-indexed*: the alphabet's `BTreeSet` orders
/// abstract actions by name first, so the candidates for a concrete action
/// are a contiguous range instead of a full scan, and composite states
/// sharing this scope (behind one [`Shared`] handle) additionally memoize
/// per-action verdicts for repeated probes of the same action.
#[derive(Debug)]
pub struct ScopedAlphabet {
    /// The abstract actions of the operand.
    pub alphabet: Alphabet,
    /// Parameters treated as "fresh, never matching" (bound outside).
    pub blocked: BTreeSet<Param>,
    /// Memoized coverage verdicts, keyed by the concrete action and (for
    /// branch coverage) the substituted parameter binding.  Interior
    /// mutability keeps the scope logically immutable; the memo is excluded
    /// from equality, ordering and hashing (every verdict is a pure function
    /// of the alphabet and the key, so states containing a scope still
    /// compare, hash and sort like plain values).
    cache: Mutex<HashMap<CoverageKey, bool>>,
}

impl Clone for ScopedAlphabet {
    fn clone(&self) -> ScopedAlphabet {
        ScopedAlphabet::new(self.alphabet.clone(), self.blocked.clone())
    }
}

impl PartialEq for ScopedAlphabet {
    fn eq(&self, other: &ScopedAlphabet) -> bool {
        self.alphabet == other.alphabet && self.blocked == other.blocked
    }
}

impl Eq for ScopedAlphabet {}

impl PartialOrd for ScopedAlphabet {
    fn partial_cmp(&self, other: &ScopedAlphabet) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScopedAlphabet {
    fn cmp(&self, other: &ScopedAlphabet) -> std::cmp::Ordering {
        (&self.alphabet, &self.blocked).cmp(&(&other.alphabet, &other.blocked))
    }
}

impl std::hash::Hash for ScopedAlphabet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.alphabet.hash(state);
        self.blocked.hash(state);
    }
}

impl ScopedAlphabet {
    /// Builds a scoped alphabet from its parts.
    pub fn new(alphabet: Alphabet, blocked: BTreeSet<Param>) -> ScopedAlphabet {
        ScopedAlphabet { alphabet, blocked, cache: Mutex::new(HashMap::new()) }
    }

    /// Builds the scoped alphabet of an operand expression: its alphabet plus
    /// its free parameters as blocked parameters.
    pub fn of(operand: &ix_core::Expr) -> ScopedAlphabet {
        ScopedAlphabet::new(operand.alphabet(), operand.free_params())
    }

    /// The symbol-indexed candidate atoms for a concrete action: same name,
    /// same arity.
    fn candidates<'a>(&'a self, concrete: &'a Action) -> impl Iterator<Item = &'a Action> + 'a {
        self.alphabet.candidates(concrete.name()).filter(move |a| a.arity() == concrete.arity())
    }

    /// True if the atom mentions a parameter of `blocked` (treating `skip`
    /// as substituted away).
    fn mentions_blocked(&self, atom: &Action, skip: Option<Param>) -> bool {
        atom.args().iter().any(|t| match t {
            Term::Param(p) => Some(*p) != skip && self.blocked.contains(p),
            Term::Value(_) => false,
        })
    }

    fn cached(&self, key: CoverageKey, compute: impl Fn() -> bool) -> bool {
        if self.alphabet.len() < COVERAGE_CACHE_MIN_ALPHABET {
            return compute();
        }
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&hit) = cache.get(&key) {
            return hit;
        }
        let verdict = compute();
        if cache.len() >= COVERAGE_CACHE_LIMIT {
            cache.clear();
        }
        cache.insert(key, verdict);
        verdict
    }

    /// True if the concrete action is covered by the alphabet, treating
    /// blocked parameters as never matching and all other parameters as
    /// wildcards.
    pub fn covers(&self, concrete: &Action) -> bool {
        self.cached((concrete.clone(), None), || {
            self.candidates(concrete)
                .any(|a| !self.mentions_blocked(a, None) && a.matches_concrete(concrete))
        })
    }

    /// Like [`ScopedAlphabet::covers`] but with additional temporarily
    /// blocked parameters (used for quantifier templates, where the
    /// quantifier's own parameter is also fresh).  Not memoized — the extra
    /// blocking is caller-supplied state.
    pub fn covers_blocking(&self, concrete: &Action, extra_blocked: &[Param]) -> bool {
        if extra_blocked.is_empty() {
            return self.covers(concrete);
        }
        self.candidates(concrete).any(|a| {
            let mentions = a.args().iter().any(|t| match t {
                Term::Param(p) => self.blocked.contains(p) || extra_blocked.contains(p),
                Term::Value(_) => false,
            });
            !mentions && a.matches_concrete(concrete)
        })
    }

    /// Coverage for a specific instantiation of a parameter (used for
    /// quantifier branches): the parameter is substituted before matching.
    pub fn covers_with(&self, concrete: &Action, param: Param, value: Value) -> bool {
        self.cached((concrete.clone(), Some((param, value))), || {
            self.candidates(concrete).any(|a| {
                !self.mentions_blocked(a, Some(param))
                    && a.substitute(param, value).matches_concrete(concrete)
            })
        })
    }

    /// Substitutes a value for a parameter (when an enclosing quantifier
    /// instantiates a branch); the parameter stops being blocked.
    pub fn substitute(&self, param: Param, value: Value) -> ScopedAlphabet {
        let mut blocked = self.blocked.clone();
        blocked.remove(&param);
        ScopedAlphabet::new(
            self.alphabet.actions().map(|a| a.substitute(param, value)).collect(),
            blocked,
        )
    }
}

/// A state of the operational semantics.
///
/// `State` values are immutable; transitions build new states.  Children are
/// [`Shared`] handles, so an untouched subtree costs one reference-count
/// bump to keep — the tentative-transition pattern of the action problem
/// (compute the successor, commit or drop it) never copies state that did
/// not move.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum State {
    /// The null (invalid) state: no walker position is consistent with the
    /// actions processed so far.
    Null,
    /// State of the empty expression ε: valid and final until any action is
    /// processed.
    Epsilon,
    /// State of an atomic expression whose action has not been traversed yet.
    AtomFresh {
        /// The expected action (may be non-concrete, in which case it can
        /// never be traversed).
        action: Action,
    },
    /// State of an atomic expression whose action has been traversed.
    AtomDone,
    /// State of an option.
    Option {
        /// True while no action has been processed (ε is still a complete
        /// word of the option).
        at_start: bool,
        /// State of the body.
        body: Shared<State>,
    },
    /// State of a sequential composition y − z.
    Seq {
        /// State of the left operand.
        left: Shared<State>,
        /// States of right-operand runs, one per completion point of the
        /// left operand (deduplicated, sorted).
        rights: Vec<Shared<State>>,
        /// σ(z), precomputed once at construction: spawned (shared, not
        /// rebuilt) whenever the left operand completes.
        right_init: Shared<State>,
    },
    /// State of a sequential iteration y*.
    SeqIter {
        /// True if the consumed word is a complete concatenation of body
        /// words (the walker stands at an iteration boundary).
        boundary: bool,
        /// States of in-progress body runs (deduplicated, sorted).
        runs: Vec<Shared<State>>,
        /// σ(y), precomputed: spawned at every iteration boundary.
        body_init: Shared<State>,
    },
    /// State of a parallel composition y ‖ z: the set of alternatives of the
    /// paper's running example, each a pair of operand states.
    Par {
        /// The alternatives [l, r].
        alts: Vec<(Shared<State>, Shared<State>)>,
    },
    /// State of a parallel iteration y#.
    ParIter {
        /// Alternatives; each alternative is the multiset (sorted vector) of
        /// states of body instances that have consumed at least one action.
        alts: Vec<Vec<Shared<State>>>,
        /// σ(y), precomputed: the starting point of new concurrent
        /// instances.
        body_init: Shared<State>,
    },
    /// State of a disjunction y ∨ z.
    Or {
        /// State of the left operand.
        left: Shared<State>,
        /// State of the right operand.
        right: Shared<State>,
    },
    /// State of a conjunction y ∧ z.
    And {
        /// State of the left operand.
        left: Shared<State>,
        /// State of the right operand.
        right: Shared<State>,
    },
    /// State of a synchronization y ⊗ z (coupling operator).
    Sync {
        /// State of the left operand.
        left: Shared<State>,
        /// State of the right operand.
        right: Shared<State>,
        /// Scoped alphabet of the left operand (the actions it constrains).
        left_alpha: Shared<ScopedAlphabet>,
        /// Scoped alphabet of the right operand.
        right_alpha: Shared<ScopedAlphabet>,
    },
    /// State of a disjunction quantifier (for some p).
    SomeQ(QuantState),
    /// State of a conjunction quantifier (for every p).
    AllQ(QuantState),
    /// State of a synchronization quantifier.
    SyncQ(QuantState),
    /// State of a parallel quantifier (for all p, concurrently).
    ParQ {
        /// The quantified parameter.
        param: Param,
        /// Whether ε is a complete word of the body — required for the
        /// quantifier to have any complete word at all (the infinite shuffle
        /// is empty otherwise).
        body_accepts_epsilon: bool,
        /// Alternatives; each alternative maps the values whose branch has
        /// consumed at least one action to that branch's state.
        alts: Vec<BTreeMap<Value, Shared<State>>>,
        /// σ(y) with the parameter unbound; a new branch for value ω starts
        /// from `body_init[param := ω]`.
        body_init: Shared<State>,
    },
    /// State of a multiplier (n concurrent instances of the body).
    Mult {
        /// Total number of instances n.
        capacity: u32,
        /// Whether ε is a complete word of the body (idle instances must be
        /// able to contribute the empty word for the whole state to be
        /// final).
        body_accepts_epsilon: bool,
        /// Alternatives; each alternative is the multiset (sorted vector) of
        /// states of instances that have consumed at least one action.
        alts: Vec<Vec<Shared<State>>>,
        /// σ(y), precomputed: the starting point of lazily started
        /// instances.
        body_init: Shared<State>,
    },
}

/// Shared representation of the three "whole word per branch" quantifiers
/// (disjunction, conjunction, synchronization): a *template* state standing
/// for every value that has not occurred yet, plus one instantiated branch
/// per observed value.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct QuantState {
    /// The quantified parameter.
    pub param: Param,
    /// State of the body with the parameter left unbound; it represents all
    /// branches whose value has not yet occurred in any processed action.
    /// This doubles as the precomputed σ of the body: a branch for a new
    /// value is the template with the value substituted.
    pub template: Shared<State>,
    /// Branch states for values that have occurred, keyed by value.
    pub branches: BTreeMap<Value, Shared<State>>,
    /// Scoped alphabet of the body, used by the synchronization quantifier to
    /// route actions.  The blocked set contains every parameter free in the
    /// body (including the quantifier's own parameter); branch coverage
    /// substitutes the quantifier parameter before matching, template
    /// coverage leaves it blocked.
    pub scope: Shared<ScopedAlphabet>,
}

impl State {
    /// True if this is the null (invalid) state.
    pub fn is_null(&self) -> bool {
        matches!(self, State::Null)
    }

    /// The *size* of a state: the number of nodes of the hierarchical state
    /// object, counted with multiplicity (shared subtrees count every time
    /// they are reachable — the logical size the Sec. 6 analysis talks
    /// about, not the allocated size).  Precomputed σ templates
    /// (`right_init`/`body_init`) are static spawning data, not walker
    /// positions, and are not counted.
    pub fn size(&self) -> usize {
        match self {
            State::Null | State::Epsilon | State::AtomFresh { .. } | State::AtomDone => 1,
            State::Option { body, .. } => 1 + body.size(),
            State::Seq { left, rights, .. } => {
                1 + left.size() + rights.iter().map(|r| r.size()).sum::<usize>()
            }
            State::SeqIter { runs, .. } => 1 + runs.iter().map(|r| r.size()).sum::<usize>(),
            State::Par { alts } => 1 + alts.iter().map(|(l, r)| l.size() + r.size()).sum::<usize>(),
            State::ParIter { alts, .. } | State::Mult { alts, .. } => {
                1 + alts
                    .iter()
                    .map(|threads| 1 + threads.iter().map(|t| t.size()).sum::<usize>())
                    .sum::<usize>()
            }
            State::Or { left, right } | State::And { left, right } => {
                1 + left.size() + right.size()
            }
            State::Sync { left, right, .. } => 1 + left.size() + right.size(),
            State::SomeQ(q) | State::AllQ(q) | State::SyncQ(q) => {
                1 + q.template.size() + q.branches.values().map(|s| s.size()).sum::<usize>()
            }
            State::ParQ { alts, .. } => {
                1 + alts
                    .iter()
                    .map(|branches| 1 + branches.values().map(|s| s.size()).sum::<usize>())
                    .sum::<usize>()
            }
        }
    }

    /// The total number of alternatives held anywhere in the state — the
    /// quantity the optimization function ρ keeps small in practice (Sec. 6).
    pub fn alternative_count(&self) -> usize {
        match self {
            State::Null | State::Epsilon | State::AtomFresh { .. } | State::AtomDone => 0,
            State::Option { body, .. } => body.alternative_count(),
            State::Seq { left, rights, .. } => {
                rights.len()
                    + left.alternative_count()
                    + rights.iter().map(|r| r.alternative_count()).sum::<usize>()
            }
            State::SeqIter { runs, .. } => {
                runs.len() + runs.iter().map(|r| r.alternative_count()).sum::<usize>()
            }
            State::Par { alts } => {
                alts.len()
                    + alts
                        .iter()
                        .map(|(l, r)| l.alternative_count() + r.alternative_count())
                        .sum::<usize>()
            }
            State::ParIter { alts, .. } | State::Mult { alts, .. } => {
                alts.len()
                    + alts
                        .iter()
                        .flat_map(|t| t.iter())
                        .map(|s| s.alternative_count())
                        .sum::<usize>()
            }
            State::Or { left, right } | State::And { left, right } => {
                left.alternative_count() + right.alternative_count()
            }
            State::Sync { left, right, .. } => left.alternative_count() + right.alternative_count(),
            State::SomeQ(q) | State::AllQ(q) | State::SyncQ(q) => {
                q.template.alternative_count()
                    + q.branches.values().map(|s| s.alternative_count()).sum::<usize>()
            }
            State::ParQ { alts, .. } => {
                alts.len()
                    + alts
                        .iter()
                        .flat_map(|b| b.values())
                        .map(|s| s.alternative_count())
                        .sum::<usize>()
            }
        }
    }

    /// Substitutes a value for a parameter throughout the state, respecting
    /// quantifier shadowing.  This is how a quantifier's template state is
    /// turned into the state of the branch for a newly observed value: by the
    /// substitution property, the branch for an unseen value ω behaves
    /// exactly like the template until ω first occurs, so substituting at
    /// that moment reconstructs the branch's true state.
    pub fn substitute(&self, param: Param, value: Value) -> State {
        let sub = |s: &Shared<State>| Shared::new(s.substitute(param, value));
        match self {
            State::Null => State::Null,
            State::Epsilon => State::Epsilon,
            State::AtomDone => State::AtomDone,
            State::AtomFresh { action } => {
                State::AtomFresh { action: action.substitute(param, value) }
            }
            State::Option { at_start, body } => {
                State::Option { at_start: *at_start, body: sub(body) }
            }
            State::Seq { left, rights, right_init } => State::Seq {
                left: sub(left),
                rights: rights.iter().map(sub).collect(),
                right_init: sub(right_init),
            },
            State::SeqIter { boundary, runs, body_init } => State::SeqIter {
                boundary: *boundary,
                runs: runs.iter().map(sub).collect(),
                body_init: sub(body_init),
            },
            State::Par { alts } => {
                State::Par { alts: alts.iter().map(|(l, r)| (sub(l), sub(r))).collect() }
            }
            State::ParIter { alts, body_init } => State::ParIter {
                alts: alts.iter().map(|threads| threads.iter().map(sub).collect()).collect(),
                body_init: sub(body_init),
            },
            State::Or { left, right } => State::Or { left: sub(left), right: sub(right) },
            State::And { left, right } => State::And { left: sub(left), right: sub(right) },
            State::Sync { left, right, left_alpha, right_alpha } => State::Sync {
                left: sub(left),
                right: sub(right),
                left_alpha: Shared::new(left_alpha.substitute(param, value)),
                right_alpha: Shared::new(right_alpha.substitute(param, value)),
            },
            State::SomeQ(q) => State::SomeQ(q.substitute(param, value)),
            State::AllQ(q) => State::AllQ(q.substitute(param, value)),
            State::SyncQ(q) => State::SyncQ(q.substitute(param, value)),
            State::ParQ { param: own, body_accepts_epsilon, alts, body_init } => {
                if *own == param {
                    // Shadowed: the inner quantifier rebinds the parameter.
                    self.clone()
                } else {
                    State::ParQ {
                        param: *own,
                        body_accepts_epsilon: *body_accepts_epsilon,
                        alts: alts
                            .iter()
                            .map(|branches| branches.iter().map(|(v, s)| (*v, sub(s))).collect())
                            .collect(),
                        body_init: sub(body_init),
                    }
                }
            }
            State::Mult { capacity, body_accepts_epsilon, alts, body_init } => State::Mult {
                capacity: *capacity,
                body_accepts_epsilon: *body_accepts_epsilon,
                alts: alts.iter().map(|threads| threads.iter().map(sub).collect()).collect(),
                body_init: sub(body_init),
            },
        }
    }
}

impl QuantState {
    pub(crate) fn substitute(&self, param: Param, value: Value) -> QuantState {
        if self.param == param {
            // Shadowed by this quantifier's own binding.
            return self.clone();
        }
        QuantState {
            param: self.param,
            template: Shared::new(self.template.substitute(param, value)),
            branches: self
                .branches
                .iter()
                .map(|(v, s)| (*v, Shared::new(s.substitute(param, value))))
                .collect(),
            scope: Shared::new(self.scope.substitute(param, value)),
        }
    }
}

/// Summary metrics of a state, used by the complexity experiments of Sec. 6.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StateMetrics {
    /// Total node count of the state object.
    pub size: usize,
    /// Total number of alternatives across all alternative sets.
    pub alternatives: usize,
    /// Whether the state is the null state.
    pub is_null: bool,
}

impl StateMetrics {
    /// Captures the metrics of a state.
    pub fn of(state: &State) -> StateMetrics {
        StateMetrics {
            size: state.size(),
            alternatives: state.alternative_count(),
            is_null: state.is_null(),
        }
    }

    /// Folds another state's metrics into this one (sizes and alternative
    /// counts add up; a compound state is null iff some part is null).  Used
    /// to aggregate per-shard metrics.
    pub fn accumulate(&mut self, other: StateMetrics) {
        self.size += other.size;
        self.alternatives += other.alternatives;
        self.is_null |= other.is_null;
    }
}

/// Counts the nodes of `next` that are *not* shared (by allocation) with
/// `prev` — the number of state nodes a transition had to build, i.e. an
/// allocation proxy for the copy-on-write rebuild.  Both states are walked
/// through their `Shared` handles; the precomputed σ templates are skipped,
/// matching [`State::size`].
pub fn fresh_nodes(prev: &State, next: &State) -> usize {
    let mut seen: std::collections::HashSet<*const State> = std::collections::HashSet::new();
    fn collect(s: &State, seen: &mut std::collections::HashSet<*const State>) {
        s.for_each_child(&mut |c| {
            if seen.insert(Shared::as_ptr(c)) {
                collect(c, seen);
            }
        });
    }
    collect(prev, &mut seen);
    fn count(s: &State, seen: &std::collections::HashSet<*const State>) -> usize {
        let mut fresh = 1;
        s.for_each_child(&mut |c| {
            if !seen.contains(&Shared::as_ptr(c)) {
                fresh += count(c, seen);
            }
        });
        fresh
    }
    count(next, &seen)
}

impl State {
    /// Visits every direct child handle (walker positions only — the
    /// precomputed σ templates are spawning data, not children).
    fn for_each_child<'a>(&'a self, f: &mut impl FnMut(&'a Shared<State>)) {
        match self {
            State::Null | State::Epsilon | State::AtomFresh { .. } | State::AtomDone => {}
            State::Option { body, .. } => f(body),
            State::Seq { left, rights, .. } => {
                f(left);
                rights.iter().for_each(f);
            }
            State::SeqIter { runs, .. } => runs.iter().for_each(f),
            State::Par { alts } => {
                for (l, r) in alts {
                    f(l);
                    f(r);
                }
            }
            State::ParIter { alts, .. } | State::Mult { alts, .. } => {
                alts.iter().flatten().for_each(f)
            }
            State::Or { left, right }
            | State::And { left, right }
            | State::Sync { left, right, .. } => {
                f(left);
                f(right);
            }
            State::SomeQ(q) | State::AllQ(q) | State::SyncQ(q) => {
                f(&q.template);
                q.branches.values().for_each(f);
            }
            State::ParQ { alts, .. } => alts.iter().flat_map(|b| b.values()).for_each(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_core::builder::{act0, actp};
    use ix_core::Value;

    #[test]
    fn null_and_leaf_states() {
        assert!(State::Null.is_null());
        assert!(!State::Epsilon.is_null());
        assert_eq!(State::Null.size(), 1);
        assert_eq!(State::Epsilon.alternative_count(), 0);
    }

    #[test]
    fn size_counts_nested_structure() {
        let s = State::Par {
            alts: vec![
                (Shared::new(State::AtomDone), Shared::new(State::Epsilon)),
                (Shared::new(State::Null), Shared::new(State::AtomDone)),
            ],
        };
        assert_eq!(s.size(), 5);
        assert_eq!(s.alternative_count(), 2);
    }

    #[test]
    fn substitution_reaches_atoms_and_spawn_templates() {
        let p = ix_core::Param::new("p");
        let right = crate::init::initial_state(&actp("b", &["p"]));
        let s = State::Seq {
            left: Shared::new(State::AtomFresh {
                action: ix_core::Action::new("a", [ix_core::Term::Param(p)]),
            }),
            rights: vec![],
            right_init: Shared::new(right),
        };
        let s2 = s.substitute(p, Value::int(3));
        match &s2 {
            State::Seq { left, right_init, .. } => {
                match left.as_ref() {
                    State::AtomFresh { action } => assert!(action.is_concrete()),
                    other => panic!("unexpected {other:?}"),
                }
                match right_init.as_ref() {
                    State::AtomFresh { action } => assert!(action.is_concrete()),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn substitution_respects_quantifier_shadowing() {
        let p = ix_core::Param::new("p");
        let body = actp("a", &["p"]);
        let inner = QuantState {
            param: p,
            template: Shared::new(State::AtomFresh {
                action: ix_core::Action::new("a", [ix_core::Term::Param(p)]),
            }),
            branches: BTreeMap::new(),
            scope: Shared::new(ScopedAlphabet::of(&body)),
        };
        let s = State::SomeQ(inner.clone());
        let s2 = s.substitute(p, Value::int(1));
        assert_eq!(s, s2, "the inner binding shadows the substitution");
    }

    #[test]
    fn scoped_alphabet_blocks_outer_parameters() {
        let body = ix_core::Expr::seq(actp("a", &["p"]), act0("c"));
        let scope = ScopedAlphabet::of(&body);
        let a1 = ix_core::Action::concrete("a", [Value::int(1)]);
        let c = ix_core::Action::nullary("c");
        // p is free in the body, hence blocked: a(1) is not covered...
        assert!(!scope.covers(&a1));
        // ...but c (no parameters) is, and so is a(1) once p is instantiated.
        assert!(scope.covers(&c));
        assert!(scope.covers_with(&a1, ix_core::Param::new("p"), Value::int(1)));
        assert!(!scope.covers_with(&a1, ix_core::Param::new("p"), Value::int(2)));
        // Substituting p concretizes the alphabet.
        let inst = scope.substitute(ix_core::Param::new("p"), Value::int(1));
        assert!(inst.covers(&a1));
        assert!(!inst.covers(&ix_core::Action::concrete("a", [Value::int(2)])));
    }

    #[test]
    fn scoped_alphabet_inner_parameters_are_wildcards() {
        // A body whose parameter is bound by an inner quantifier: the
        // parameter is not free, hence not blocked, hence a wildcard.
        let body = ix_core::parse("some q { a(q) }").unwrap();
        let scope = ScopedAlphabet::of(&body);
        assert!(scope.covers(&ix_core::Action::concrete("a", [Value::int(7)])));
        assert!(!scope.covers(&ix_core::Action::nullary("b")));
        // Extra blocking (template use) can still disable matching.
        assert!(scope.covers_blocking(
            &ix_core::Action::concrete("a", [Value::int(7)]),
            &[ix_core::Param::new("r")]
        ));
    }

    #[test]
    fn coverage_memo_agrees_with_direct_matching_on_large_alphabets() {
        // Enough distinct atoms to enable the memo.
        let src = "a(p) - b(p) - c(p) - d(p) - e(p)";
        let body = ix_core::parse(&format!("some p {{ {src} }}")).unwrap();
        let inner = match body.kind() {
            ix_core::ExprKind::SomeQ(_, b) => b.clone(),
            _ => unreachable!(),
        };
        let scope = ScopedAlphabet::of(&inner);
        let a1 = ix_core::Action::concrete("a", [Value::int(1)]);
        // Repeated queries hit the memo and must stay stable.
        for _ in 0..3 {
            assert!(!scope.covers(&a1), "p is blocked");
            assert!(scope.covers_with(&a1, ix_core::Param::new("p"), Value::int(1)));
            assert!(!scope.covers_with(&a1, ix_core::Param::new("p"), Value::int(2)));
        }
    }

    #[test]
    fn shared_comparisons_shortcut_on_pointer_identity() {
        let a = Shared::new(State::AtomDone);
        let b = a.clone();
        assert!(Shared::ptr_eq(&a, &b));
        assert_eq!(a, b);
        let c = Shared::new(State::AtomDone);
        assert!(!Shared::ptr_eq(&a, &c));
        assert_eq!(a, c, "value equality without pointer identity");
        assert_eq!(a.cmp(&c), std::cmp::Ordering::Equal);
    }

    #[test]
    fn metrics_capture_size_and_alternatives() {
        let s = State::SeqIter {
            boundary: true,
            runs: vec![
                Shared::new(State::AtomDone),
                Shared::new(State::AtomFresh { action: ix_core::Action::nullary("a") }),
            ],
            body_init: Shared::new(State::AtomFresh { action: ix_core::Action::nullary("a") }),
        };
        let m = StateMetrics::of(&s);
        assert_eq!(m.size, 3);
        assert_eq!(m.alternatives, 2);
        assert!(!m.is_null);
    }

    #[test]
    fn fresh_nodes_counts_only_the_rebuilt_spine() {
        let shared_child = Shared::new(State::AtomDone);
        let prev = State::Or { left: shared_child.clone(), right: Shared::new(State::Epsilon) };
        let next = State::Or { left: shared_child, right: Shared::new(State::AtomDone) };
        // The root and the new right child are fresh; the left child is
        // shared.
        assert_eq!(fresh_nodes(&prev, &next), 2);
    }

    #[test]
    fn states_order_and_hash() {
        use std::collections::BTreeSet;
        // The coverage memo inside ScopedAlphabet is interior-mutable but
        // excluded from Eq/Ord/Hash, so states are sound set keys.
        #[allow(clippy::mutable_key_type)]
        let set: BTreeSet<State> =
            [State::Null, State::Epsilon, State::AtomDone, State::Null].into_iter().collect();
        assert_eq!(set.len(), 3);
    }
}

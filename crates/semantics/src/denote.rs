//! The formal (denotational) semantics of Table 8, computed as
//! length-bounded languages.
//!
//! [`denote`] evaluates an interaction expression to its pair of bounded
//! complete-word and partial-word languages (Φ, Ψ).  This is an executable
//! transcription of the definitions in Table 8 and serves two purposes:
//!
//! 1. It is the *oracle* against which the operational semantics of
//!    `ix-state` is validated (the correctness theorem of Sec. 4:
//!    `w ∈ Ψ(x) ⇔ ψ(σ_w(x))` and `w ∈ Φ(x) ⇔ ϕ(σ_w(x))`).
//! 2. It is the naive, exponentially expensive decision procedure for the
//!    word problem that Sec. 4 contrasts with the state model; the benchmark
//!    `word_problem_naive_vs_operational` measures exactly this gap.
//!
//! Quantifiers are grounded over a finite [`Universe`]; results are exact for
//! words whose values are drawn from the universe, provided the universe
//! contains at least one fresh value (see `universe.rs`).

use crate::lang::Lang;
use crate::universe::Universe;
use ix_core::{Action, Expr, ExprKind};
use std::fmt;

/// The bounded Φ/Ψ pair of an expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Denotation {
    /// Bounded set of complete words, Φ(x) ∩ Σ^{≤ bound}.
    pub phi: Lang,
    /// Bounded set of partial words, Ψ(x) ∩ Σ^{≤ bound}.
    pub psi: Lang,
}

/// Errors of the denotational evaluator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SemanticsError {
    /// The expression contains an unexpanded template hole.
    TemplateHole {
        /// Name of the offending hole.
        name: String,
    },
}

impl fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticsError::TemplateHole { name } => {
                write!(f, "expression contains unexpanded template hole `${name}`")
            }
        }
    }
}

impl std::error::Error for SemanticsError {}

/// Computes the bounded denotation (Φ, Ψ) of `expr`.
///
/// `bound` is the maximum word length considered; `universe` grounds the
/// quantifiers.
pub fn denote(
    expr: &Expr,
    universe: &Universe,
    bound: usize,
) -> Result<Denotation, SemanticsError> {
    match expr.kind() {
        ExprKind::Hole(name) => Err(SemanticsError::TemplateHole { name: name.to_string() }),
        ExprKind::Empty => Ok(Denotation { phi: Lang::epsilon(bound), psi: Lang::epsilon(bound) }),
        ExprKind::Atom(a) => Ok(denote_atom(a, bound)),
        ExprKind::Option(y) => {
            let dy = denote(y, universe, bound)?;
            Ok(Denotation { phi: dy.phi.union(&Lang::epsilon(bound)), psi: dy.psi })
        }
        ExprKind::Seq(y, z) => {
            let dy = denote(y, universe, bound)?;
            let dz = denote(z, universe, bound)?;
            Ok(Denotation {
                phi: dy.phi.concat(&dz.phi),
                psi: dy.psi.union(&dy.phi.concat(&dz.psi)),
            })
        }
        ExprKind::SeqIter(y) => {
            let dy = denote(y, universe, bound)?;
            let closure = dy.phi.kleene();
            Ok(Denotation { phi: closure.clone(), psi: closure.concat(&dy.psi) })
        }
        ExprKind::Par(y, z) => {
            let dy = denote(y, universe, bound)?;
            let dz = denote(z, universe, bound)?;
            Ok(Denotation { phi: dy.phi.shuffle(&dz.phi), psi: dy.psi.shuffle(&dz.psi) })
        }
        ExprKind::ParIter(y) => {
            let dy = denote(y, universe, bound)?;
            Ok(Denotation { phi: dy.phi.shuffle_closure(), psi: dy.psi.shuffle_closure() })
        }
        ExprKind::Or(y, z) => {
            let dy = denote(y, universe, bound)?;
            let dz = denote(z, universe, bound)?;
            Ok(Denotation { phi: dy.phi.union(&dz.phi), psi: dy.psi.union(&dz.psi) })
        }
        ExprKind::And(y, z) => {
            let dy = denote(y, universe, bound)?;
            let dz = denote(z, universe, bound)?;
            Ok(Denotation { phi: dy.phi.intersection(&dz.phi), psi: dy.psi.intersection(&dz.psi) })
        }
        ExprKind::Sync(y, z) => {
            let dy = denote(y, universe, bound)?;
            let dz = denote(z, universe, bound)?;
            let left = relax(&dy, expr, y, universe, bound);
            let right = relax(&dz, expr, z, universe, bound);
            Ok(Denotation {
                phi: left.phi.intersection(&right.phi),
                psi: left.psi.intersection(&right.psi),
            })
        }
        ExprKind::Mult(n, y) => {
            let dy = denote(y, universe, bound)?;
            Ok(Denotation { phi: dy.phi.shuffle_power(*n), psi: dy.psi.shuffle_power(*n) })
        }
        ExprKind::SomeQ(p, y) => {
            let mut phi = Lang::empty(bound);
            let mut psi = Lang::empty(bound);
            for omega in universe.values() {
                let inst = y.substitute(*p, *omega);
                let d = denote(&inst, universe, bound)?;
                phi = phi.union(&d.phi);
                psi = psi.union(&d.psi);
            }
            Ok(Denotation { phi, psi })
        }
        ExprKind::ParQ(p, y) => {
            // Infinite shuffle: empty unless every instantiation accepts ε;
            // otherwise the union of finite shuffles, which the bounded
            // shuffle of all grounded branches realizes (every branch
            // contains ε, so subsets are covered automatically).
            let mut phi = Lang::epsilon(bound);
            let mut psi = Lang::epsilon(bound);
            let mut all_have_epsilon = true;
            for omega in universe.values() {
                let inst = y.substitute(*p, *omega);
                let d = denote(&inst, universe, bound)?;
                if !d.phi.contains_epsilon() {
                    all_have_epsilon = false;
                }
                phi = phi.shuffle(&d.phi);
                psi = psi.shuffle(&d.psi);
            }
            if !all_have_epsilon {
                phi = Lang::empty(bound);
            }
            Ok(Denotation { phi, psi })
        }
        ExprKind::SyncQ(p, y) => {
            let mut phi: Option<Lang> = None;
            let mut psi: Option<Lang> = None;
            for omega in universe.values() {
                let inst = y.substitute(*p, *omega);
                let d = denote(&inst, universe, bound)?;
                let relaxed = relax(&d, expr, &inst, universe, bound);
                phi = Some(match phi {
                    None => relaxed.phi,
                    Some(acc) => acc.intersection(&relaxed.phi),
                });
                psi = Some(match psi {
                    None => relaxed.psi,
                    Some(acc) => acc.intersection(&relaxed.psi),
                });
            }
            Ok(Denotation {
                phi: phi.unwrap_or_else(|| Lang::epsilon(bound)),
                psi: psi.unwrap_or_else(|| Lang::epsilon(bound)),
            })
        }
        ExprKind::AllQ(p, y) => {
            let mut phi: Option<Lang> = None;
            let mut psi: Option<Lang> = None;
            for omega in universe.values() {
                let inst = y.substitute(*p, *omega);
                let d = denote(&inst, universe, bound)?;
                phi = Some(match phi {
                    None => d.phi,
                    Some(acc) => acc.intersection(&d.phi),
                });
                psi = Some(match psi {
                    None => d.psi,
                    Some(acc) => acc.intersection(&d.psi),
                });
            }
            Ok(Denotation {
                phi: phi.unwrap_or_else(|| Lang::epsilon(bound)),
                psi: psi.unwrap_or_else(|| Lang::epsilon(bound)),
            })
        }
    }
}

/// Shuffles an operand's languages with the Kleene closure of its alphabet
/// complement κ_x(y)* — the "relaxation" applied by the synchronization
/// operator and quantifier so that an operand only constrains the actions it
/// knows about.
fn relax(
    d: &Denotation,
    whole: &Expr,
    operand: &Expr,
    universe: &Universe,
    bound: usize,
) -> Denotation {
    let whole_alpha = whole.alphabet();
    let operand_alpha = operand.alphabet();
    // Concrete actions covered by α(x) but not by α(operand).
    let complement: Vec<Action> = universe
        .ground_alphabet(&whole_alpha)
        .into_iter()
        .filter(|c| !operand_alpha.covers(c))
        .collect();
    let complement_star = Lang::all_words_over(&complement, bound);
    Denotation { phi: d.phi.shuffle(&complement_star), psi: d.psi.shuffle(&complement_star) }
}

fn denote_atom(a: &Action, bound: usize) -> Denotation {
    if a.is_concrete() {
        Denotation {
            phi: Lang::single(a.clone(), bound),
            psi: Lang::single(a.clone(), bound).union(&Lang::epsilon(bound)),
        }
    } else {
        // {⟨a⟩} ∩ Σ* = ∅ for a non-concrete action: only the empty word is a
        // partial word.
        Denotation { phi: Lang::empty(bound), psi: Lang::epsilon(bound) }
    }
}

/// Convenience wrapper: the bounded complete-word language Φ(x).
pub fn phi(expr: &Expr, universe: &Universe, bound: usize) -> Result<Lang, SemanticsError> {
    Ok(denote(expr, universe, bound)?.phi)
}

/// Convenience wrapper: the bounded partial-word language Ψ(x).
pub fn psi(expr: &Expr, universe: &Universe, bound: usize) -> Result<Lang, SemanticsError> {
    Ok(denote(expr, universe, bound)?.psi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_core::builder::{act0, actp, actv};
    use ix_core::{parse, Param, Value, Word};

    fn u() -> Universe {
        Universe::new([Value::int(1), Value::int(2)]).with_fresh(1)
    }

    fn w(names: &[&str]) -> Word {
        names.iter().map(|n| Action::nullary(*n)).collect()
    }

    #[test]
    fn atom_semantics() {
        let d = denote(&act0("a"), &u(), 3).unwrap();
        assert_eq!(d.phi.len(), 1);
        assert!(d.psi.contains_epsilon());
        assert_eq!(d.psi.len(), 2);
        // A parameterized atom accepts nothing but the empty partial word.
        let d = denote(&actp("a", &["p"]), &u(), 3).unwrap();
        assert!(d.phi.is_empty());
        assert_eq!(d.psi.len(), 1);
    }

    #[test]
    fn sequence_and_option() {
        let e = parse("a - b?").unwrap();
        let d = denote(&e, &u(), 3).unwrap();
        assert!(d.phi.contains(&w(&["a"])));
        assert!(d.phi.contains(&w(&["a", "b"])));
        assert!(!d.phi.contains(&w(&["b"])));
        assert!(d.psi.contains_epsilon());
        assert!(d.psi.contains(&w(&["a"])));
    }

    #[test]
    fn partial_words_of_sequence_include_prefixes_through_completion() {
        let e = parse("a - b - c").unwrap();
        let d = denote(&e, &u(), 4).unwrap();
        for p in [&[][..], &w(&["a"])[..], &w(&["a", "b"])[..], &w(&["a", "b", "c"])[..]] {
            assert!(d.psi.contains(p), "missing partial word {p:?}");
        }
        assert!(!d.psi.contains(&w(&["b"])));
        assert_eq!(d.phi.len(), 1);
    }

    #[test]
    fn iteration_and_parallel_composition() {
        let e = parse("(a - b)*").unwrap();
        let d = denote(&e, &u(), 4).unwrap();
        assert!(d.phi.contains_epsilon());
        assert!(d.phi.contains(&w(&["a", "b", "a", "b"])));
        assert!(d.psi.contains(&w(&["a", "b", "a"])));
        assert!(!d.psi.contains(&w(&["b"])));

        let e = parse("a | b").unwrap();
        let d = denote(&e, &u(), 2).unwrap();
        assert!(d.phi.contains(&w(&["a", "b"])));
        assert!(d.phi.contains(&w(&["b", "a"])));
        assert_eq!(d.phi.len(), 2);
    }

    #[test]
    fn parallel_iteration_allows_overlapping_instances() {
        let e = parse("(a - b)#").unwrap();
        let d = denote(&e, &u(), 4).unwrap();
        assert!(d.phi.contains(&w(&["a", "a", "b", "b"])));
        assert!(d.phi.contains_epsilon());
        assert!(d.psi.contains(&w(&["a", "a"])));
        assert!(!d.phi.contains(&w(&["b", "a"])));
    }

    #[test]
    fn conjunction_vs_synchronization() {
        // Strict conjunction over different alphabets accepts only words
        // both operands accept completely — here nothing but nothing.
        let strict = parse("a & b").unwrap();
        let d = denote(&strict, &u(), 2).unwrap();
        assert!(d.phi.is_empty());
        // The coupling operator lets each operand ignore foreign actions.
        let sync = parse("a @ b").unwrap();
        let d = denote(&sync, &u(), 2).unwrap();
        assert!(d.phi.contains(&w(&["a", "b"])));
        assert!(d.phi.contains(&w(&["b", "a"])));
        assert!(!d.phi.contains(&w(&["a"])), "a alone leaves operand b incomplete");
    }

    #[test]
    fn synchronization_shares_common_actions() {
        // Both operands know `b`; it must be allowed by both.
        let e = parse("(a - b) @ (b - c)").unwrap();
        let d = denote(&e, &u(), 3).unwrap();
        assert!(d.phi.contains(&w(&["a", "b", "c"])));
        assert!(!d.phi.contains(&w(&["b", "a", "c"])), "left operand requires a before b");
        assert!(!d.phi.contains(&w(&["a", "c", "b"])), "right operand requires b before c");
    }

    #[test]
    fn beyond_context_free_languages() {
        // Sec. 3: the conjunction of the shuffle closure of a-b-c with
        // a*-b*-c* accepts exactly the words a^n b^n c^n, a language that is
        // not context-free — interaction expressions exceed regular (and
        // even context-free) expressiveness.
        let e = parse("(a - b - c)# & (a* - b* - c*)").unwrap();
        let d = denote(&e, &u(), 6).unwrap();
        assert!(d.phi.contains_epsilon());
        assert!(d.phi.contains(&w(&["a", "b", "c"])));
        assert!(d.phi.contains(&w(&["a", "a", "b", "b", "c", "c"])));
        assert!(!d.phi.contains(&w(&["a", "b", "c", "a", "b", "c"])));
        assert!(!d.phi.contains(&w(&["a", "a", "b", "c", "c"])));
        assert!(!d.phi.contains(&w(&["a", "b"])));
    }

    #[test]
    fn disjunction_quantifier_chooses_one_value() {
        let p = Param::new("p");
        let e = Expr::some_q(p, Expr::seq(actp("a", &["p"]), actp("b", &["p"])));
        let d = denote(&e, &u(), 2).unwrap();
        let a1b1 =
            vec![Action::concrete("a", [Value::int(1)]), Action::concrete("b", [Value::int(1)])];
        let a1b2 =
            vec![Action::concrete("a", [Value::int(1)]), Action::concrete("b", [Value::int(2)])];
        assert!(d.phi.contains(&a1b1));
        assert!(!d.phi.contains(&a1b2), "a single value must be used consistently");
    }

    #[test]
    fn parallel_quantifier_interleaves_values_independently() {
        let p = Param::new("p");
        let e = Expr::par_q(p, Expr::option(Expr::seq(actp("a", &["p"]), actp("b", &["p"]))));
        let d = denote(&e, &u(), 4).unwrap();
        let interleaved = vec![
            Action::concrete("a", [Value::int(1)]),
            Action::concrete("a", [Value::int(2)]),
            Action::concrete("b", [Value::int(2)]),
            Action::concrete("b", [Value::int(1)]),
        ];
        assert!(d.phi.contains(&interleaved));
        assert!(d.phi.contains_epsilon());
        // Without the option the body cannot accept ε, so Φ must be empty.
        let e = Expr::par_q(p, Expr::seq(actp("a", &["p"]), actp("b", &["p"])));
        let d = denote(&e, &u(), 4).unwrap();
        assert!(d.phi.is_empty());
        assert!(d.psi.contains_epsilon());
    }

    #[test]
    fn conjunction_quantifier_requires_every_value() {
        let p = Param::new("p");
        // each p { a(p)? }: every instantiation must accept the whole word.
        let e = Expr::all_q(p, Expr::option(actp("a", &["p"])));
        let d = denote(&e, &u(), 2).unwrap();
        assert!(d.phi.contains_epsilon());
        // a(1) is not accepted by the instantiation with value 2.
        assert!(!d.phi.contains(&[Action::concrete("a", [Value::int(1)])]));
    }

    #[test]
    fn sync_quantifier_constrains_only_matching_values() {
        let p = Param::new("p");
        // sync p { (a(p) - b(p))* }: per value, a(p) must precede b(p);
        // other values' actions are not constrained by that branch.  The
        // body must accept ε, otherwise the infinite intersection over all
        // (unseen) values is empty.
        let e = Expr::sync_q(p, Expr::seq_iter(Expr::seq(actp("a", &["p"]), actp("b", &["p"]))));
        let d = denote(&e, &u(), 4).unwrap();
        let ok = vec![
            Action::concrete("a", [Value::int(1)]),
            Action::concrete("a", [Value::int(2)]),
            Action::concrete("b", [Value::int(1)]),
            Action::concrete("b", [Value::int(2)]),
        ];
        let bad =
            vec![Action::concrete("b", [Value::int(1)]), Action::concrete("a", [Value::int(1)])];
        assert!(d.phi.contains(&ok));
        assert!(!d.psi.contains(&bad));
    }

    #[test]
    fn multiplier_caps_concurrent_instances() {
        let e = parse("mult 2 { a - b }").unwrap();
        let d = denote(&e, &u(), 4).unwrap();
        assert!(d.phi.contains(&w(&["a", "a", "b", "b"])));
        assert!(d.psi.contains(&w(&["a", "a"])));
        assert!(!d.psi.contains(&w(&["a", "a", "a"])), "only two instances exist");
    }

    #[test]
    fn empty_expression_and_errors() {
        let d = denote(&Expr::empty(), &u(), 2).unwrap();
        assert_eq!(d.phi.len(), 1);
        assert!(d.phi.contains_epsilon());
        let err = denote(&Expr::hole("x"), &u(), 2).unwrap_err();
        assert!(err.to_string().contains("$x"));
    }

    #[test]
    fn phi_and_psi_wrappers() {
        let e = actv("a", []);
        assert_eq!(phi(&e, &u(), 2).unwrap().len(), 1);
        assert_eq!(psi(&e, &u(), 2).unwrap().len(), 2);
    }

    #[test]
    fn every_psi_contains_epsilon() {
        let sources = [
            "a",
            "a - b",
            "a*",
            "a#",
            "a | b",
            "a + b",
            "a & b",
            "a @ b",
            "some p { a(p) }",
            "all p { a(p)? }",
            "each p { a(p)? }",
            "sync p { a(p) }",
            "mult 3 { a }",
            "empty",
            "a?",
        ];
        for src in sources {
            let e = parse(src).unwrap();
            let d = denote(&e, &u(), 2).unwrap();
            assert!(d.psi.contains_epsilon(), "Ψ({src}) must contain ⟨⟩");
        }
    }
}

//! The state transition function τ and its optimized variant τ̂ = ρ ∘ τ
//! (Secs. 4–5).
//!
//! Two implementations live here:
//!
//! * [`trans`] — the **fused copy-on-write** τ̂: one pass that advances every
//!   walker position, prunes invalid alternatives, deduplicates, and
//!   collapses invalid states to [`State::Null`] *while rebuilding*.  Only
//!   the spine from the root to the touched operands is allocated; every
//!   untouched subtree (the idle side of a ⊗, unstepped quantifier branches,
//!   the n−1 unchanged threads of each parallel alternative) is shared by
//!   reference.  The fusion removes ρ's separate rebuild pass and its
//!   repeated ψ walks (the old pipeline recomputed `is_valid` at every node,
//!   an O(n²) habit on deep states); the fused output satisfies the
//!   invariant **invalid ⇔ `Null`**, which in turn makes ψ a constant-time
//!   null check on the optimized path.
//! * [`step`] + [`crate::optimize::optimize`] — the textbook two-pass
//!   pipeline (pure τ, then ρ).  [`trans_reference`] composes them; it is
//!   the reference implementation the property suites compare the fused
//!   function against, and [`trans_with`] with `optimize: false` exposes the
//!   raw τ for the state-growth ablation of Sec. 6.
//!
//! Both produce identical state *values*: `trans(s, a) == trans_reference(s, a)`
//! for every reachable state (exercised by the workspace property tests).

use crate::optimize::optimize;
use crate::predicates::is_final;
use crate::state::{null_state, QuantState, Shared, State};
use ix_core::{Action, Value};

/// Options controlling the transition function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransitionOptions {
    /// Apply the optimization function ρ after every transition (the
    /// default).  Switching this off reproduces the unbounded state growth
    /// analysed in Sec. 6.
    pub optimize: bool,
}

impl Default for TransitionOptions {
    fn default() -> Self {
        TransitionOptions { optimize: true }
    }
}

/// The optimized state transition function τ̂(s, a) = ρ(τ(s, a)), computed in
/// one fused copy-on-write pass.
pub fn trans(state: &State, action: &Action) -> State {
    fused(state, action, &NoTier)
}

/// State transition with explicit options.
pub fn trans_with(state: &State, action: &Action, opts: TransitionOptions) -> State {
    if opts.optimize {
        fused(state, action, &NoTier)
    } else {
        step(state, action)
    }
}

/// A hook the fused walk consults at every shared child: a tiered engine
/// answers table-resident subtrees from a compiled DFA tile in O(1) while
/// the surrounding copy-on-write spine keeps handling composition.
/// Implementations must be *value-transparent*: a `Some` answer must equal
/// (by state value) what the fused walk itself would have computed.
pub(crate) trait TierLookup {
    /// Table-resident successor of `child` under `action`, if the child's
    /// allocation is attached to a compiled tile; `None` falls back to the
    /// tree walk.
    fn tier_step(&self, child: &Shared<State>, action: &Action) -> Option<Shared<State>>;
}

/// The zero-cost no-tier hook: the plain `trans` path monomorphizes to
/// exactly the pre-tier code.
pub(crate) struct NoTier;

impl TierLookup for NoTier {
    #[inline(always)]
    fn tier_step(&self, _child: &Shared<State>, _action: &Action) -> Option<Shared<State>> {
        None
    }
}

/// The reference implementation of τ̂: the pure transition followed by a
/// separate ρ pass.  Kept for the equivalence property suites and the
/// old-vs-new benchmark; the engine uses the fused [`trans`].
pub fn trans_reference(state: &State, action: &Action) -> State {
    optimize(&step(state, action))
}

// ---------------------------------------------------------------------------
// The fused copy-on-write τ̂.
// ---------------------------------------------------------------------------

/// Steps a shared child, wrapping the fused result.  `Null` results share
/// the process-wide null singleton.  The tier hook is consulted first: a
/// table-attached child is answered by array lookup without walking it.
fn fstep<T: TierLookup>(child: &Shared<State>, action: &Action, tier: &T) -> Shared<State> {
    if let Some(next) = tier.tier_step(child, action) {
        return next;
    }
    match fused(child, action, tier) {
        State::Null => null_state(),
        other => Shared::new(other),
    }
}

/// The fused ρ∘τ on a state value.  Invariants (inductively maintained, and
/// trivially true of initial states): the input's live alternatives contain
/// no `Null` components except where ρ deliberately keeps them (`Or`/`And`
/// children, `Seq` left operands, disjunction-quantifier branches); the
/// output is `Null` iff it is invalid.
pub(crate) fn fused<T: TierLookup>(state: &State, action: &Action, tier: &T) -> State {
    match state {
        State::Null => State::Null,
        // ε accepts no action at all.
        State::Epsilon => State::Null,
        State::AtomFresh { action: expected } => {
            if expected == action {
                State::AtomDone
            } else {
                State::Null
            }
        }
        State::AtomDone => State::Null,
        State::Option { body, .. } => {
            let body = fstep(body, action, tier);
            if body.is_null() {
                State::Null
            } else {
                State::Option { at_start: false, body }
            }
        }
        State::Seq { left, rights, right_init } => {
            let new_left = fstep(left, action, tier);
            let mut new_rights: Vec<Shared<State>> =
                rights.iter().map(|r| fstep(r, action, tier)).filter(|r| !r.is_null()).collect();
            if is_final(&new_left) {
                // Spawn a fresh right-hand run: the precomputed σ(z) is
                // shared, not rebuilt.
                new_rights.push(right_init.clone());
            }
            new_rights.sort();
            new_rights.dedup();
            if new_left.is_null() && new_rights.is_empty() {
                State::Null
            } else {
                State::Seq { left: new_left, rights: new_rights, right_init: right_init.clone() }
            }
        }
        State::SeqIter { runs, body_init, .. } => {
            let mut boundary = false;
            let mut new_runs: Vec<Shared<State>> = Vec::with_capacity(runs.len() + 1);
            for run in runs {
                let next = fstep(run, action, tier);
                if next.is_null() {
                    continue;
                }
                boundary |= is_final(&next);
                new_runs.push(next);
            }
            if boundary {
                new_runs.push(body_init.clone());
            }
            new_runs.sort();
            new_runs.dedup();
            if new_runs.is_empty() {
                State::Null
            } else {
                State::SeqIter { boundary, runs: new_runs, body_init: body_init.clone() }
            }
        }
        State::Par { alts } => {
            // The paper's construction: every alternative [l, r] is replaced
            // by the two alternatives [τ(l), r] and [l, τ(r)]; invalid
            // variants are pruned on the spot and the untouched component is
            // shared.
            let mut new_alts: Vec<(Shared<State>, Shared<State>)> =
                Vec::with_capacity(alts.len() * 2);
            for (l, r) in alts {
                let stepped_l = fstep(l, action, tier);
                if !stepped_l.is_null() && !r.is_null() {
                    new_alts.push((stepped_l, r.clone()));
                }
                let stepped_r = fstep(r, action, tier);
                if !l.is_null() && !stepped_r.is_null() {
                    new_alts.push((l.clone(), stepped_r));
                }
            }
            new_alts.sort();
            new_alts.dedup();
            if new_alts.is_empty() {
                State::Null
            } else {
                State::Par { alts: new_alts }
            }
        }
        State::ParIter { alts, body_init } => {
            match fused_thread_alts(alts, body_init, action, None, tier) {
                None => State::Null,
                Some(new_alts) => State::ParIter { alts: new_alts, body_init: body_init.clone() },
            }
        }
        State::Or { left, right } => {
            let left = fstep(left, action, tier);
            let right = fstep(right, action, tier);
            if left.is_null() && right.is_null() {
                State::Null
            } else {
                State::Or { left, right }
            }
        }
        State::And { left, right } => {
            let left = fstep(left, action, tier);
            if left.is_null() {
                return State::Null;
            }
            let right = fstep(right, action, tier);
            if right.is_null() {
                return State::Null;
            }
            State::And { left, right }
        }
        State::Sync { left, right, left_alpha, right_alpha } => {
            let in_left = left_alpha.covers(action);
            let in_right = right_alpha.covers(action);
            if !in_left && !in_right {
                // Actions outside α(x) are not part of the synchronization's
                // language at all.
                return State::Null;
            }
            // The operand the action bypasses is shared untouched — the
            // copy-on-write payoff for coupled ensembles.
            let new_left = if in_left { fstep(left, action, tier) } else { left.clone() };
            if new_left.is_null() {
                return State::Null;
            }
            let new_right = if in_right { fstep(right, action, tier) } else { right.clone() };
            if new_right.is_null() {
                return State::Null;
            }
            State::Sync {
                left: new_left,
                right: new_right,
                left_alpha: left_alpha.clone(),
                right_alpha: right_alpha.clone(),
            }
        }
        State::SomeQ(q) => {
            let (template, branches) = fused_broadcast_quant(q, action, tier);
            // ρ keeps dead branches of a disjunction quantifier (as Null):
            // removing them could let a later re-instantiation from the
            // still-valid template resurrect a branch that is already dead.
            if template.is_null() && branches.values().all(|b| b.is_null()) {
                State::Null
            } else {
                State::SomeQ(QuantState {
                    param: q.param,
                    template,
                    branches,
                    scope: q.scope.clone(),
                })
            }
        }
        State::AllQ(q) => {
            let (template, branches) = fused_broadcast_quant(q, action, tier);
            if template.is_null() || branches.values().any(|b| b.is_null()) {
                State::Null
            } else {
                State::AllQ(QuantState {
                    param: q.param,
                    template,
                    branches,
                    scope: q.scope.clone(),
                })
            }
        }
        State::SyncQ(q) => fused_sync_quant(q, action, tier),
        State::ParQ { param, body_accepts_epsilon, alts, body_init } => {
            let values = action.values();
            if values.is_empty() {
                // With a completely quantified body no branch can consume an
                // action that mentions no value at all.
                return State::Null;
            }
            // A new branch's state depends only on the value, not on the
            // alternative: the precomputed σ(y) template with the value
            // substituted (σ commutes with substitution), stepped by the
            // action — computed once per value, shared across alternatives.
            let fresh_branches: Vec<(Value, Shared<State>)> = values
                .iter()
                .map(|v| {
                    let fresh = body_init.substitute(*param, *v);
                    let stepped = match fused(&fresh, action, tier) {
                        State::Null => null_state(),
                        other => Shared::new(other),
                    };
                    (*v, stepped)
                })
                .collect();
            let mut new_alts = Vec::new();
            for branches in alts {
                if branches.values().any(|b| b.is_null()) {
                    continue;
                }
                for (v, fresh) in &fresh_branches {
                    let branch_state = match branches.get(v) {
                        Some(existing) => fstep(existing, action, tier),
                        None => fresh.clone(),
                    };
                    if branch_state.is_null() {
                        continue;
                    }
                    let mut next = branches.clone();
                    next.insert(*v, branch_state);
                    new_alts.push(next);
                }
            }
            new_alts.sort();
            new_alts.dedup();
            if new_alts.is_empty() {
                State::Null
            } else {
                State::ParQ {
                    param: *param,
                    body_accepts_epsilon: *body_accepts_epsilon,
                    alts: new_alts,
                    body_init: body_init.clone(),
                }
            }
        }
        State::Mult { capacity, body_accepts_epsilon, alts, body_init } => {
            match fused_thread_alts(alts, body_init, action, Some(*capacity), tier) {
                None => State::Null,
                Some(new_alts) => State::Mult {
                    capacity: *capacity,
                    body_accepts_epsilon: *body_accepts_epsilon,
                    alts: new_alts,
                    body_init: body_init.clone(),
                },
            }
        }
    }
}

/// Fused transition of the alternatives of a parallel iteration or
/// multiplier: every alternative forks into "an existing instance consumes
/// the action" (one variant per instance, sharing the other instances) and,
/// capacity permitting, "a new instance is started with this action".
/// Variants with an invalid component are pruned before they are ever
/// sorted; `None` means no alternative survived (the state is invalid).
fn fused_thread_alts<T: TierLookup>(
    alts: &[Vec<Shared<State>>],
    body_init: &Shared<State>,
    action: &Action,
    capacity: Option<u32>,
    tier: &T,
) -> Option<Vec<Vec<Shared<State>>>> {
    let mut new_alts = Vec::new();
    // The freshly started instance is the same for every alternative —
    // compute it once per transition, not once per alternative.
    let started = fstep(body_init, action, tier);
    let started = (!started.is_null()).then_some(started);
    for threads in alts {
        if threads.iter().any(|t| t.is_null()) {
            continue;
        }
        for (i, thread) in threads.iter().enumerate() {
            let stepped = fstep(thread, action, tier);
            if stepped.is_null() {
                continue;
            }
            let mut next = threads.clone();
            next[i] = stepped;
            next.sort();
            new_alts.push(next);
        }
        let may_start = match capacity {
            Some(cap) => (threads.len() as u32) < cap,
            None => true,
        };
        if may_start {
            if let Some(started) = &started {
                let mut next = threads.clone();
                next.push(started.clone());
                next.sort();
                new_alts.push(next);
            }
        }
    }
    new_alts.sort();
    new_alts.dedup();
    if new_alts.is_empty() {
        None
    } else {
        Some(new_alts)
    }
}

/// Fused transition of the disjunction and conjunction quantifiers: every
/// branch — instantiated or represented by the template — processes every
/// action.  Branches for values that occur in the action for the first time
/// are instantiated from the template *before* the transition (the
/// template's state is exactly the state such a branch would have reached,
/// because the branch's value has not occurred so far).
fn fused_broadcast_quant<T: TierLookup>(
    q: &QuantState,
    action: &Action,
    tier: &T,
) -> (Shared<State>, std::collections::BTreeMap<Value, Shared<State>>) {
    let mut branches = q.branches.clone();
    for v in new_values(q, action) {
        branches.insert(v, Shared::new(q.template.substitute(q.param, v)));
    }
    let branches = branches.iter().map(|(v, s)| (*v, fstep(s, action, tier))).collect();
    (fstep(&q.template, action, tier), branches)
}

/// Fused transition of the synchronization quantifier: like the broadcast
/// quantifiers, but every branch only sees the actions covered by its own
/// (instantiated) alphabet; all other actions pass it by *shared*, not
/// copied.  Actions covered by no instantiation at all are outside the
/// quantifier's language.
fn fused_sync_quant<T: TierLookup>(q: &QuantState, action: &Action, tier: &T) -> State {
    let in_template = q.scope.covers(action);
    let covered_somewhere =
        in_template || action.values().iter().any(|v| q.scope.covers_with(action, q.param, *v));
    if !covered_somewhere {
        return State::Null;
    }
    let mut branches = q.branches.clone();
    for v in new_values(q, action) {
        branches.insert(v, Shared::new(q.template.substitute(q.param, v)));
    }
    let mut new_branches = std::collections::BTreeMap::new();
    for (v, s) in &branches {
        let next = if q.scope.covers_with(action, q.param, *v) {
            fstep(s, action, tier)
        } else {
            s.clone()
        };
        if next.is_null() {
            // The synchronization quantifier is conjunctive: one dead branch
            // kills the whole state.
            return State::Null;
        }
        new_branches.insert(*v, next);
    }
    let template = if in_template { fstep(&q.template, action, tier) } else { q.template.clone() };
    if template.is_null() {
        return State::Null;
    }
    State::SyncQ(QuantState {
        param: q.param,
        template,
        branches: new_branches,
        scope: q.scope.clone(),
    })
}

// ---------------------------------------------------------------------------
// The pure transition function τ (reference / ablation path).
// ---------------------------------------------------------------------------

/// The pure transition function τ(s, a), without ρ.  Untouched subtrees are
/// still shared by reference (sharing does not change state *values*), but
/// nothing is pruned: alternatives accumulate exactly as the worst-case
/// analysis of Sec. 6 describes.
pub fn step(state: &State, action: &Action) -> State {
    let sh = |s: State| Shared::new(s);
    match state {
        State::Null => State::Null,
        State::Epsilon => State::Null,
        State::AtomFresh { action: expected } => {
            if expected == action {
                State::AtomDone
            } else {
                State::Null
            }
        }
        State::AtomDone => State::Null,
        State::Option { body, .. } => {
            State::Option { at_start: false, body: sh(step(body, action)) }
        }
        State::Seq { left, rights, right_init } => {
            let new_left = step(left, action);
            let mut new_rights: Vec<Shared<State>> =
                rights.iter().map(|r| sh(step(r, action))).collect();
            if is_final(&new_left) {
                new_rights.push(right_init.clone());
            }
            new_rights.sort();
            new_rights.dedup();
            State::Seq { left: sh(new_left), rights: new_rights, right_init: right_init.clone() }
        }
        State::SeqIter { runs, body_init, .. } => {
            let mut new_runs: Vec<Shared<State>> =
                runs.iter().map(|r| sh(step(r, action))).collect();
            let boundary = new_runs.iter().any(|r| is_final(r));
            if boundary {
                new_runs.push(body_init.clone());
            }
            new_runs.sort();
            new_runs.dedup();
            State::SeqIter { boundary, runs: new_runs, body_init: body_init.clone() }
        }
        State::Par { alts } => {
            let mut new_alts = Vec::with_capacity(alts.len() * 2);
            for (l, r) in alts {
                new_alts.push((sh(step(l, action)), r.clone()));
                new_alts.push((l.clone(), sh(step(r, action))));
            }
            State::Par { alts: new_alts }
        }
        State::ParIter { alts, body_init } => State::ParIter {
            alts: step_thread_alts(alts, body_init, action, None),
            body_init: body_init.clone(),
        },
        State::Or { left, right } => {
            State::Or { left: sh(step(left, action)), right: sh(step(right, action)) }
        }
        State::And { left, right } => {
            State::And { left: sh(step(left, action)), right: sh(step(right, action)) }
        }
        State::Sync { left, right, left_alpha, right_alpha } => {
            let in_left = left_alpha.covers(action);
            let in_right = right_alpha.covers(action);
            if !in_left && !in_right {
                return State::Null;
            }
            State::Sync {
                left: if in_left { sh(step(left, action)) } else { left.clone() },
                right: if in_right { sh(step(right, action)) } else { right.clone() },
                left_alpha: left_alpha.clone(),
                right_alpha: right_alpha.clone(),
            }
        }
        State::SomeQ(q) => State::SomeQ(step_broadcast_quant(q, action)),
        State::AllQ(q) => State::AllQ(step_broadcast_quant(q, action)),
        State::SyncQ(q) => step_sync_quant(q, action),
        State::ParQ { param, body_accepts_epsilon, alts, body_init } => {
            let values = action.values();
            if values.is_empty() {
                return State::Null;
            }
            let mut new_alts = Vec::new();
            for branches in alts {
                for v in &values {
                    let mut next = branches.clone();
                    let branch_state = match branches.get(v) {
                        Some(existing) => step(existing, action),
                        None => {
                            let fresh = body_init.substitute(*param, *v);
                            step(&fresh, action)
                        }
                    };
                    next.insert(*v, sh(branch_state));
                    new_alts.push(next);
                }
            }
            State::ParQ {
                param: *param,
                body_accepts_epsilon: *body_accepts_epsilon,
                alts: new_alts,
                body_init: body_init.clone(),
            }
        }
        State::Mult { capacity, body_accepts_epsilon, alts, body_init } => State::Mult {
            capacity: *capacity,
            body_accepts_epsilon: *body_accepts_epsilon,
            alts: step_thread_alts(alts, body_init, action, Some(*capacity)),
            body_init: body_init.clone(),
        },
    }
}

/// Pure-τ transition of thread alternatives (parallel iteration and
/// multiplier), without pruning.
fn step_thread_alts(
    alts: &[Vec<Shared<State>>],
    body_init: &Shared<State>,
    action: &Action,
    capacity: Option<u32>,
) -> Vec<Vec<Shared<State>>> {
    let mut new_alts = Vec::new();
    for threads in alts {
        for i in 0..threads.len() {
            let mut next = threads.clone();
            next[i] = Shared::new(step(&threads[i], action));
            next.sort();
            new_alts.push(next);
        }
        let may_start = match capacity {
            Some(cap) => (threads.len() as u32) < cap,
            None => true,
        };
        if may_start {
            let mut next = threads.clone();
            next.push(Shared::new(step(body_init, action)));
            next.sort();
            new_alts.push(next);
        }
    }
    new_alts
}

/// Pure-τ transition of the broadcast quantifiers.
fn step_broadcast_quant(q: &QuantState, action: &Action) -> QuantState {
    let mut branches = q.branches.clone();
    for v in new_values(q, action) {
        branches.insert(v, Shared::new(q.template.substitute(q.param, v)));
    }
    let branches = branches.iter().map(|(v, s)| (*v, Shared::new(step(s, action)))).collect();
    QuantState {
        param: q.param,
        template: Shared::new(step(&q.template, action)),
        branches,
        scope: q.scope.clone(),
    }
}

/// Pure-τ transition of the synchronization quantifier.
fn step_sync_quant(q: &QuantState, action: &Action) -> State {
    let covered_somewhere = q.scope.covers_blocking(action, &[])
        || action.values().iter().any(|v| q.scope.covers_with(action, q.param, *v));
    if !covered_somewhere {
        return State::Null;
    }
    let mut branches = q.branches.clone();
    for v in new_values(q, action) {
        branches.insert(v, Shared::new(q.template.substitute(q.param, v)));
    }
    let branches = branches
        .iter()
        .map(|(v, s)| {
            if q.scope.covers_with(action, q.param, *v) {
                (*v, Shared::new(step(s, action)))
            } else {
                (*v, s.clone())
            }
        })
        .collect();
    let template = if q.scope.covers_blocking(action, &[]) {
        Shared::new(step(&q.template, action))
    } else {
        q.template.clone()
    };
    State::SyncQ(QuantState { param: q.param, template, branches, scope: q.scope.clone() })
}

/// Values occurring in the action that have no instantiated branch yet.
fn new_values(q: &QuantState, action: &Action) -> Vec<Value> {
    action.values().into_iter().filter(|v| !q.branches.contains_key(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::init;
    use crate::predicates::{is_final, is_valid};
    use ix_core::{parse, Value};

    fn a(name: &str) -> Action {
        Action::nullary(name)
    }

    fn run(src: &str, names: &[&str]) -> State {
        let e = parse(src).unwrap();
        let mut s = init(&e).unwrap();
        for n in names {
            s = trans(&s, &a(n));
        }
        s
    }

    fn run_actions(src: &str, actions: &[Action]) -> State {
        let e = parse(src).unwrap();
        let mut s = init(&e).unwrap();
        for act in actions {
            s = trans(&s, act);
        }
        s
    }

    #[test]
    fn atoms_and_sequences() {
        assert!(is_final(&run("a", &["a"])));
        assert!(run("a", &["b"]).is_null());
        assert!(run("a", &["a", "a"]).is_null());
        let s = run("a - b - c", &["a", "b"]);
        assert!(is_valid(&s) && !is_final(&s));
        assert!(is_final(&run("a - b - c", &["a", "b", "c"])));
        assert!(run("a - b - c", &["a", "c"]).is_null());
    }

    #[test]
    fn option_and_iterations() {
        assert!(is_final(&run("a?", &[])));
        assert!(is_final(&run("a?", &["a"])));
        assert!(run("a?", &["a", "a"]).is_null());
        assert!(is_final(&run("(a - b)*", &[])));
        assert!(is_final(&run("(a - b)*", &["a", "b", "a", "b"])));
        assert!(!is_final(&run("(a - b)*", &["a", "b", "a"])));
        assert!(run("(a - b)*", &["a", "a"]).is_null());
        // Parallel iteration allows overlapping instances.
        assert!(is_valid(&run("(a - b)#", &["a", "a"])));
        assert!(is_final(&run("(a - b)#", &["a", "a", "b", "b"])));
        assert!(run("(a - b)#", &["b"]).is_null());
    }

    #[test]
    fn parallel_composition_is_an_arbitrary_interleaving() {
        for word in [&["a", "b"][..], &["b", "a"][..]] {
            assert!(is_final(&run("a | b", word)), "{word:?}");
        }
        assert!(!is_final(&run("a | b", &["a"])));
        assert!(run("a | b", &["a", "a"]).is_null());
    }

    #[test]
    fn disjunction_conjunction_and_synchronization() {
        assert!(is_final(&run("a + b", &["a"])));
        assert!(is_final(&run("a + b", &["b"])));
        assert!(run("a + b", &["a", "b"]).is_null());
        // Strict conjunction over different alphabets is unsatisfiable.
        assert!(!is_final(&run("a & b", &["a"])));
        // Coupling: each operand constrains only its own actions.
        assert!(is_final(&run("a @ b", &["a", "b"])));
        assert!(is_final(&run("a @ b", &["b", "a"])));
        assert!(!is_final(&run("a @ b", &["a"])));
        assert!(run("(a - b) @ (b - c)", &["b"]).is_null());
        assert!(is_final(&run("(a - b) @ (b - c)", &["a", "b", "c"])));
        assert!(run("(a - b) @ (b - c)", &["a", "c"]).is_null());
        // Actions unknown to either operand are rejected.
        assert!(run("a @ b", &["z"]).is_null());
    }

    #[test]
    fn mutual_exclusion_flash_operator() {
        // Fig. 5: (x + y + z)* — branches exclude each other over time.
        let e = "(x + y + z)*";
        assert!(is_final(&run(e, &["x", "y", "z", "x"])));
        assert!(is_valid(&run(e, &["x"])));
    }

    #[test]
    fn multiplier_enforces_capacity() {
        let e = "mult 2 { a - b }";
        assert!(is_valid(&run(e, &["a", "a"])));
        assert!(run(e, &["a", "a", "a"]).is_null(), "only two concurrent instances");
        assert!(is_final(&run(e, &["a", "b", "a", "b"])));
        assert!(is_final(&run(e, &["a", "a", "b", "b"])));
    }

    #[test]
    fn disjunction_quantifier_commits_to_one_value() {
        let e = "some p { a(p) - b(p) }";
        let a1 = Action::concrete("a", [Value::int(1)]);
        let b1 = Action::concrete("b", [Value::int(1)]);
        let b2 = Action::concrete("b", [Value::int(2)]);
        assert!(is_final(&run_actions(e, &[a1.clone(), b1])));
        assert!(run_actions(e, &[a1, b2]).is_null());
    }

    #[test]
    fn parallel_quantifier_runs_values_independently() {
        let e = "all p { (a(p) - b(p))? }";
        let a1 = Action::concrete("a", [Value::int(1)]);
        let a2 = Action::concrete("a", [Value::int(2)]);
        let b1 = Action::concrete("b", [Value::int(1)]);
        let b2 = Action::concrete("b", [Value::int(2)]);
        assert!(is_final(&run_actions(e, &[a1.clone(), a2.clone(), b2, b1.clone()])));
        assert!(run_actions(e, &[a1.clone(), a1.clone()]).is_null());
        assert!(run_actions(e, std::slice::from_ref(&b1)).is_null());
        // An action without any value cannot belong to any branch.
        assert!(run_actions(e, &[a("c")]).is_null());
        let _ = b1;
    }

    #[test]
    fn conjunction_quantifier_requires_all_values() {
        let e = "each p { a(p)? }";
        let a1 = Action::concrete("a", [Value::int(1)]);
        // a(1) is rejected because the branch for any other value cannot
        // accept it.
        assert!(run_actions(e, &[a1]).is_null());
        assert!(is_final(&run_actions(e, &[])));
    }

    #[test]
    fn sync_quantifier_orders_actions_per_value_only() {
        let e = "sync p { (a(p) - b(p))* }";
        let a1 = Action::concrete("a", [Value::int(1)]);
        let a2 = Action::concrete("a", [Value::int(2)]);
        let b1 = Action::concrete("b", [Value::int(1)]);
        let b2 = Action::concrete("b", [Value::int(2)]);
        assert!(is_final(&run_actions(e, &[a1.clone(), a2.clone(), b1.clone(), b2.clone()])));
        assert!(run_actions(e, std::slice::from_ref(&b1)).is_null(), "b(1) before a(1)");
        assert!(is_final(&run_actions(e, &[a2.clone(), b2.clone()])));
        // Unknown action names are outside the quantifier's language.
        assert!(run_actions(e, &[Action::concrete("z", [Value::int(1)])]).is_null());
    }

    #[test]
    fn capacity_constraint_of_fig6() {
        // all x { mult 3 { (some p { call(p, x) - perform(p, x) })* } }
        let e = "all x { mult 3 { (some p { call(p, x) - perform(p, x) })* } }";
        let call = |p: i64| Action::concrete("call", [Value::int(p), Value::sym("sono")]);
        let perform = |p: i64| Action::concrete("perform", [Value::int(p), Value::sym("sono")]);
        // Three patients may be in progress concurrently…
        let s = run_actions(e, &[call(1), call(2), call(3)]);
        assert!(is_valid(&s));
        // …but a fourth call is rejected until someone finishes.
        assert!(run_actions(e, &[call(1), call(2), call(3), call(4)]).is_null());
        let s = run_actions(e, &[call(1), call(2), call(3), perform(2), call(4)]);
        assert!(is_valid(&s));
    }

    #[test]
    fn fused_transition_matches_the_two_pass_reference() {
        let words: &[&[&str]] = &[
            &["a"],
            &["a", "b"],
            &["a", "b", "a"],
            &["b"],
            &["a", "a"],
            &["a", "b", "a", "b", "a"],
        ];
        for src in [
            "(a - b)* | (a + b)",
            "(a | b) - a",
            "a# & (a - a)",
            "(a - b)* @ (b - a)*",
            "mult 2 { a - b }",
            "(a? - b)#",
        ] {
            let e = parse(src).unwrap();
            for word in words {
                let mut cow = init(&e).unwrap();
                let mut reference = init(&e).unwrap();
                for n in *word {
                    cow = trans(&cow, &a(n));
                    reference = trans_reference(&reference, &a(n));
                    assert_eq!(cow, reference, "fused τ̂ diverged on {src} after {n} of {word:?}");
                }
            }
        }
    }

    #[test]
    fn fused_transition_keeps_the_invalid_means_null_invariant() {
        for (src, word) in [
            ("a - b", &["b"][..]),
            ("(a - b)*", &["a", "a"][..]),
            ("a @ b", &["z"][..]),
            ("each p { a(p)? }", &[][..]),
        ] {
            let e = parse(src).unwrap();
            let mut s = init(&e).unwrap();
            let mut actions: Vec<Action> = word.iter().map(|n| a(n)).collect();
            actions.push(a("zzz"));
            for act in &actions {
                s = trans(&s, act);
                assert_eq!(is_valid(&s), !s.is_null(), "invariant broken on {src} at {act}");
            }
        }
    }

    #[test]
    fn optimization_keeps_transition_results_equivalent() {
        let words: &[&[&str]] = &[&["a"], &["a", "b"], &["a", "b", "a"], &["b"]];
        for src in ["(a - b)* | (a + b)", "(a | b) - a", "a# & (a - a)"] {
            let e = parse(src).unwrap();
            for word in words {
                let mut opt = init(&e).unwrap();
                let mut raw = init(&e).unwrap();
                for n in *word {
                    opt = trans(&opt, &a(n));
                    raw = trans_with(&raw, &a(n), TransitionOptions { optimize: false });
                }
                assert_eq!(is_valid(&opt), is_valid(&raw), "ψ for {src} on {word:?}");
                assert_eq!(is_final(&opt), is_final(&raw), "ϕ for {src} on {word:?}");
                assert!(opt.size() <= raw.size());
            }
        }
    }

    #[test]
    fn transitions_share_untouched_subtrees() {
        // A coupling whose right operand never sees `a`: the whole right
        // subtree must be shared by pointer across the transition.
        let e = parse("(a - b)* @ (c - d)*").unwrap();
        let s0 = init(&e).unwrap();
        let s1 = trans(&s0, &a("a"));
        match (&s0, &s1) {
            (State::Sync { right: r0, .. }, State::Sync { right: r1, .. }) => {
                assert!(crate::state::Shared::ptr_eq(r0, r1), "untouched ⊗ operand not shared");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The rebuild allocates only the spine.
        assert!(
            crate::state::fresh_nodes(&s0, &s1) < s1.size(),
            "no structural sharing in the rebuilt state"
        );
    }

    #[test]
    fn null_absorbs_everything() {
        let s = trans(&State::Null, &a("a"));
        assert!(s.is_null());
    }
}

//! Message-based coordination protocol between clients and a manager server.
//!
//! [`ManagerServer`] runs an [`InteractionManager`] on its own thread and
//! serves requests arriving on a channel; [`ClientHandle`] is the
//! client-side endpoint used by adapted worklist handlers or workflow
//! engines (Fig. 11).  The message vocabulary follows Fig. 10: ask, confirm,
//! combined execute, subscribe and unsubscribe; subscribers receive
//! asynchronous status-change messages on their own notification channel.

use crate::error::{ManagerError, ManagerResult};
use crate::manager::{InteractionManager, ProtocolVariant};
use crate::subscription::{ClientId, Notification};
use crossbeam::channel::{unbounded, Receiver, Sender};
use ix_core::{Action, Expr};
use std::collections::HashMap;
use std::thread::JoinHandle;

/// A request from a client to the manager (steps 1 and 4 of Fig. 10).
#[derive(Clone, Debug)]
pub enum Request {
    /// Attach the channel on which a client wants to receive asynchronous
    /// status-change notifications.
    RegisterChannel {
        /// The client the channel belongs to.
        client: ClientId,
        /// The sending half of the client's notification channel.
        sender: Sender<Notification>,
    },
    /// Ask for permission to execute an action.
    Ask {
        /// Requesting client.
        client: ClientId,
        /// The action in question.
        action: Action,
    },
    /// Confirm the execution of a granted action.
    Confirm {
        /// The reservation returned by the grant.
        reservation: u64,
    },
    /// Combined ask-and-execute round trip.
    Execute {
        /// Requesting client.
        client: ClientId,
        /// The action to execute.
        action: Action,
    },
    /// Subscribe to permissibility changes of an action.
    Subscribe {
        /// Subscribing client.
        client: ClientId,
        /// The action of interest.
        action: Action,
    },
    /// Cancel a subscription.
    Unsubscribe {
        /// Subscribing client.
        client: ClientId,
        /// The action of interest.
        action: Action,
    },
    /// Advance the manager's logical clock (lease expiry).
    Tick {
        /// Time units to advance.
        delta: u64,
    },
    /// Shut the server down.
    Shutdown,
}

/// A reply from the manager to a client (step 2 of Fig. 10).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// The ask was granted; the client must confirm with the reservation id.
    Granted {
        /// Reservation to confirm later.
        reservation: u64,
    },
    /// The ask or execute was denied.
    Denied,
    /// A combined execute succeeded.
    Executed,
    /// Subscription acknowledged; contains the current status.
    Subscribed {
        /// Whether the action is currently permitted.
        permitted: bool,
    },
    /// Unsubscription acknowledged.
    Unsubscribed,
    /// A confirm was accepted.
    Confirmed,
    /// The request failed.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

struct Envelope {
    request: Request,
    reply_to: Option<Sender<Reply>>,
}

/// The server side: owns the manager and the notification channels.
pub struct ManagerServer {
    requests: Sender<Envelope>,
    handle: Option<JoinHandle<InteractionManager>>,
}

impl ManagerServer {
    /// Spawns a manager server for the given expression and protocol.
    pub fn spawn(expr: &Expr, variant: ProtocolVariant) -> ManagerResult<ManagerServer> {
        let manager = InteractionManager::with_protocol(expr, variant)?;
        let (tx, rx): (Sender<Envelope>, Receiver<Envelope>) = unbounded();
        let handle = std::thread::spawn(move || serve(manager, rx));
        Ok(ManagerServer { requests: tx, handle: Some(handle) })
    }

    /// Creates a client endpoint with its own notification channel.
    pub fn client(&self, id: ClientId) -> ClientHandle {
        let (note_tx, note_rx) = unbounded();
        let _ = self.requests.send(Envelope {
            request: Request::RegisterChannel { client: id, sender: note_tx },
            reply_to: None,
        });
        ClientHandle { id, requests: self.requests.clone(), notifications: note_rx }
    }

    /// Stops the server and returns the final manager (with its state, log
    /// and statistics).
    pub fn shutdown(mut self) -> ManagerResult<InteractionManager> {
        let _ = self.requests.send(Envelope { request: Request::Shutdown, reply_to: None });
        match self.handle.take() {
            Some(h) => h.join().map_err(|_| ManagerError::Disconnected),
            None => Err(ManagerError::Disconnected),
        }
    }
}

/// The client-side endpoint of the coordination protocol.
pub struct ClientHandle {
    id: ClientId,
    requests: Sender<Envelope>,
    notifications: Receiver<Notification>,
}

impl ClientHandle {
    /// This client's identifier.
    pub fn id(&self) -> ClientId {
        self.id
    }

    fn call(&self, request: Request) -> ManagerResult<Reply> {
        let (tx, rx) = unbounded();
        self.requests
            .send(Envelope { request, reply_to: Some(tx) })
            .map_err(|_| ManagerError::Disconnected)?;
        rx.recv().map_err(|_| ManagerError::Disconnected)
    }

    /// Step 1/2: ask for permission.  Returns the reservation id on grant.
    pub fn ask(&self, action: &Action) -> ManagerResult<Option<u64>> {
        match self.call(Request::Ask { client: self.id, action: action.clone() })? {
            Reply::Granted { reservation } => Ok(Some(reservation)),
            Reply::Denied => Ok(None),
            Reply::Error { message } => Err(ManagerError::RejectedConfirmation { action: message }),
            other => Err(ManagerError::RejectedConfirmation { action: format!("{other:?}") }),
        }
    }

    /// Step 4: confirm the execution of a granted action.
    pub fn confirm(&self, reservation: u64) -> ManagerResult<()> {
        match self.call(Request::Confirm { reservation })? {
            Reply::Confirmed => Ok(()),
            Reply::Error { message } => Err(ManagerError::RejectedConfirmation { action: message }),
            other => Err(ManagerError::RejectedConfirmation { action: format!("{other:?}") }),
        }
    }

    /// Combined ask-and-execute round trip.  Returns false on denial.
    pub fn execute(&self, action: &Action) -> ManagerResult<bool> {
        match self.call(Request::Execute { client: self.id, action: action.clone() })? {
            Reply::Executed => Ok(true),
            Reply::Denied => Ok(false),
            Reply::Error { message } => Err(ManagerError::RejectedConfirmation { action: message }),
            other => Err(ManagerError::RejectedConfirmation { action: format!("{other:?}") }),
        }
    }

    /// Subscribes to status changes of an action; returns its current
    /// status.  Notifications arrive via [`ClientHandle::poll_notifications`].
    pub fn subscribe(&self, action: &Action) -> ManagerResult<bool> {
        match self.call(Request::Subscribe { client: self.id, action: action.clone() })? {
            Reply::Subscribed { permitted } => Ok(permitted),
            other => Err(ManagerError::RejectedConfirmation { action: format!("{other:?}") }),
        }
    }

    /// Cancels a subscription.
    pub fn unsubscribe(&self, action: &Action) -> ManagerResult<()> {
        match self.call(Request::Unsubscribe { client: self.id, action: action.clone() })? {
            Reply::Unsubscribed => Ok(()),
            other => Err(ManagerError::RejectedConfirmation { action: format!("{other:?}") }),
        }
    }

    /// Drains the notifications received so far.
    pub fn poll_notifications(&self) -> Vec<Notification> {
        self.notifications.try_iter().collect()
    }

    /// Advances the manager's logical clock.
    pub fn tick(&self, delta: u64) -> ManagerResult<()> {
        self.requests
            .send(Envelope { request: Request::Tick { delta }, reply_to: None })
            .map_err(|_| ManagerError::Disconnected)
    }
}

fn serve(manager: InteractionManager, rx: Receiver<Envelope>) -> InteractionManager {
    let mut notification_channels: HashMap<ClientId, Sender<Notification>> = HashMap::new();
    let deliver = |manager_notes: Vec<Notification>,
                   channels: &HashMap<ClientId, Sender<Notification>>| {
        for note in manager_notes {
            if let Some(ch) = channels.get(&note.client) {
                let _ = ch.send(note);
            }
        }
    };
    while let Ok(envelope) = rx.recv() {
        let reply = match envelope.request {
            Request::Shutdown => break,
            Request::Tick { delta } => {
                manager.advance_time(delta);
                None
            }
            Request::Ask { client, action } => Some(match manager.ask(client, &action) {
                Ok(Some(reservation)) => Reply::Granted { reservation },
                Ok(None) => Reply::Denied,
                Err(e) => Reply::Error { message: e.to_string() },
            }),
            Request::Confirm { reservation } => Some(match manager.confirm(reservation) {
                Ok(notes) => {
                    deliver(notes, &notification_channels);
                    Reply::Confirmed
                }
                Err(e) => Reply::Error { message: e.to_string() },
            }),
            Request::Execute { client, action } => {
                Some(match manager.try_execute(client, &action) {
                    Ok(Some(notes)) => {
                        deliver(notes, &notification_channels);
                        Reply::Executed
                    }
                    Ok(None) => Reply::Denied,
                    Err(e) => Reply::Error { message: e.to_string() },
                })
            }
            Request::RegisterChannel { client, sender } => {
                notification_channels.insert(client, sender);
                None
            }
            Request::Subscribe { client, action } => {
                let permitted = manager.subscribe(client, &action);
                Some(Reply::Subscribed { permitted })
            }
            Request::Unsubscribe { client, action } => {
                manager.unsubscribe(client, &action);
                Some(Reply::Unsubscribed)
            }
        };
        if let (Some(reply), Some(reply_to)) = (reply, envelope.reply_to.as_ref()) {
            let _ = reply_to.send(reply);
        }
    }
    manager
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_core::{parse, Value};

    fn call(p: i64, x: &str) -> Action {
        Action::concrete("call", [Value::int(p), Value::sym(x)])
    }

    fn perform(p: i64, x: &str) -> Action {
        Action::concrete("perform", [Value::int(p), Value::sym(x)])
    }

    fn constraint() -> Expr {
        parse("all p { (some x { call(p, x) - perform(p, x) })* }").unwrap()
    }

    #[test]
    fn ask_execute_confirm_over_the_channel_protocol() {
        let server = ManagerServer::spawn(&constraint(), ProtocolVariant::Simple).unwrap();
        let client = server.client(1);
        let r = client.ask(&call(1, "sono")).unwrap().expect("granted");
        client.confirm(r).unwrap();
        assert_eq!(client.ask(&call(1, "endo")).unwrap(), None, "denied while mid-examination");
        let r = client.ask(&perform(1, "sono")).unwrap().unwrap();
        client.confirm(r).unwrap();
        let manager = server.shutdown().unwrap();
        assert_eq!(manager.log().len(), 2);
        assert_eq!(manager.stats().denials, 1);
    }

    #[test]
    fn subscriptions_deliver_asynchronous_notifications() {
        let server = ManagerServer::spawn(&constraint(), ProtocolVariant::Combined).unwrap();
        let worklist_a = server.client(10);
        let worklist_b = server.client(20);
        assert!(worklist_b.subscribe(&call(1, "endo")).unwrap());
        // Client A executes call(1, sono); B's subscribed action becomes
        // impermissible and B is informed without polling the manager.
        assert!(worklist_a.execute(&call(1, "sono")).unwrap());
        let notes = wait_for_notes(&worklist_b, 1);
        assert_eq!(notes.len(), 1);
        assert!(!notes[0].permitted);
        assert_eq!(notes[0].action, call(1, "endo"));
        // Completing the examination flips it back.
        assert!(worklist_a.execute(&perform(1, "sono")).unwrap());
        let notes = wait_for_notes(&worklist_b, 1);
        assert!(notes.iter().any(|n| n.permitted));
        worklist_b.unsubscribe(&call(1, "endo")).unwrap();
        server.shutdown().unwrap();
    }

    #[test]
    fn concurrent_clients_race_for_a_single_slot() {
        // Capacity one: of two concurrent clients exactly one wins.
        let expr = parse("mult 1 { (some p { call(p, sono) - perform(p, sono) })* }").unwrap();
        let server = ManagerServer::spawn(&expr, ProtocolVariant::Combined).unwrap();
        let mut handles = Vec::new();
        for client_id in 0..4u64 {
            let client = server.client(client_id);
            handles.push(std::thread::spawn(move || {
                client.execute(&call(client_id as i64, "sono")).unwrap()
            }));
        }
        let wins: usize =
            handles.into_iter().filter(|_| true).map(|h| h.join().unwrap() as usize).sum();
        assert_eq!(wins, 1, "exactly one client gets the slot");
        server.shutdown().unwrap();
    }

    #[test]
    fn leases_expire_via_tick() {
        let expr = parse("mult 1 { (some p { call(p, sono) - perform(p, sono) })* }").unwrap();
        let server = ManagerServer::spawn(&expr, ProtocolVariant::Leased { lease: 3 }).unwrap();
        let crashing = server.client(1);
        let healthy = server.client(2);
        let _reservation = crashing.ask(&call(1, "sono")).unwrap().unwrap();
        assert_eq!(healthy.ask(&call(2, "sono")).unwrap(), None, "slot reserved");
        // The crashing client never confirms; advancing time frees the slot.
        healthy.tick(5).unwrap();
        assert!(healthy.ask(&call(2, "sono")).unwrap().is_some());
        server.shutdown().unwrap();
    }

    fn wait_for_notes(client: &ClientHandle, at_least: usize) -> Vec<Notification> {
        let mut notes = Vec::new();
        for _ in 0..200 {
            notes.extend(client.poll_notifications());
            if notes.len() >= at_least {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        notes
    }
}

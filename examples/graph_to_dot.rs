//! Exports the paper's interaction graphs (Figs. 3–7) as Graphviz DOT files
//! into `target/figures/` and prints their denoted expressions.
//!
//! Run with `cargo run --example graph_to_dot`, then e.g.
//! `dot -Tsvg target/figures/fig3.dot -o fig3.svg`.

use ix_graph::{figures, graph_to_expr, to_dot};
use std::fs;
use std::path::Path;

fn main() -> std::io::Result<()> {
    let out_dir = Path::new("target/figures");
    fs::create_dir_all(out_dir)?;
    let registry = figures::paper_registry();
    let graphs = [
        ("fig3", figures::fig3_patient_constraint()),
        ("fig4_either_or", figures::fig4_either_or()),
        ("fig4_as_well_as", figures::fig4_as_well_as()),
        ("fig5", figures::fig5_mutex_definition()),
        ("fig6", figures::fig6_capacity_constraint()),
        ("fig7", figures::fig7_coupled_constraints()),
    ];
    for (name, graph) in graphs {
        let dot = to_dot(&graph);
        let path = out_dir.join(format!("{name}.dot"));
        fs::write(&path, &dot)?;
        match graph_to_expr(&graph, &registry) {
            Ok(expr) => println!("{name}: {} nodes -> {expr}", graph.size()),
            Err(e) => println!("{name}: {} nodes (template-only graph: {e})", graph.size()),
        }
        println!("    wrote {}", path.display());
    }
    Ok(())
}

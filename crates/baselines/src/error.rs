//! Errors raised when a baseline formalism's restrictions are violated.

use std::fmt;

/// Restriction violations of the baseline formalisms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BaselineError {
    /// Path expressions do not allow nested bursts (parallel regions inside
    /// parallel regions) [Campbell & Habermann 1974].
    NestedBurst,
    /// Synchronization expressions require the operands of a parallel
    /// composition to have disjoint alphabets [Guo, Salomaa & Yu 1996].
    OverlappingParallelAlphabets {
        /// Display form of an action occurring on both sides.
        witness: String,
    },
    /// The formalism has no operator able to express the requested construct.
    Unsupported {
        /// The construct that cannot be expressed.
        construct: String,
        /// The formalism that lacks it.
        formalism: String,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::NestedBurst => {
                write!(f, "path expressions do not allow nested parallel bursts")
            }
            BaselineError::OverlappingParallelAlphabets { witness } => write!(
                f,
                "synchronization expressions require disjoint alphabets for parallel \
                 composition; `{witness}` occurs on both sides"
            ),
            BaselineError::Unsupported { construct, formalism } => {
                write!(f, "{formalism} cannot express {construct}")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_restriction() {
        assert!(BaselineError::NestedBurst.to_string().contains("nested"));
        let e = BaselineError::OverlappingParallelAlphabets { witness: "a".into() };
        assert!(e.to_string().contains("disjoint"));
        let e = BaselineError::Unsupported {
            construct: "conjunction".into(),
            formalism: "flow expressions".into(),
        };
        assert!(e.to_string().contains("flow expressions"));
    }
}
